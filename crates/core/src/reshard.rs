//! Shard reconfiguration performance (paper §5.3 + Figure 12).
//!
//! Transitioning nodes stop processing their old committee's requests
//! while they fetch the new shard's state. We model a transitioning node
//! as network-isolated for its state-fetch window (it neither votes nor
//! proposes — exactly the observable behaviour), using the real AHL+
//! committee underneath:
//!
//! * **Swap all** — every member transitions at once: the committee loses
//!   its quorum for the whole fetch period; throughput drops to zero, then
//!   spikes while the backlog drains (the paper's Figure 12 right).
//! * **Swap log(n)** — B = log(n) members at a time (B ≤ f): the committee
//!   keeps a quorum and throughput tracks the no-resharding baseline.

use ahl_consensus::clients::OpenLoopClient;
use ahl_consensus::common::stat;
use ahl_consensus::pbft::{build_group, BftVariant, PbftConfig};
use ahl_net::{ClusterNetwork, Partition, PartitionedNetwork};
use ahl_shard::paper_batch_size;
use ahl_simkit::{QueueConfig, SimDuration, SimTime};
use ahl_workload::SmallBankWorkload;

/// Reconfiguration strategy under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReshardStrategy {
    /// No resharding (baseline).
    None,
    /// All nodes transition simultaneously (the naive approach).
    SwapAll,
    /// B = log(n) nodes at a time (the paper's approach).
    SwapLog,
}

/// Configuration of a Figure 12 run.
#[derive(Clone, Debug)]
pub struct ReshardConfig {
    /// Committee size.
    pub committee_size: usize,
    /// Strategy.
    pub strategy: ReshardStrategy,
    /// Times at which resharding events start (the paper reshards twice).
    pub reshard_at: Vec<SimDuration>,
    /// State-fetch time for a full resynchronization (paper: up to 80 s;
    /// the naive swap pays it all at once).
    pub full_fetch: SimDuration,
    /// Run length.
    pub duration: SimDuration,
    /// Offered load per client (open loop), requests/s.
    pub client_rate: f64,
    /// Number of clients.
    pub clients: usize,
    /// Seed.
    pub seed: u64,
}

impl ReshardConfig {
    /// Paper-style defaults for committee size `n`.
    pub fn new(n: usize, strategy: ReshardStrategy) -> Self {
        ReshardConfig {
            committee_size: n,
            strategy,
            reshard_at: vec![SimDuration::from_secs(150), SimDuration::from_secs(300)],
            full_fetch: SimDuration::from_secs(60),
            duration: SimDuration::from_secs(450),
            client_rate: 150.0,
            clients: 4,
            seed: 42,
        }
    }
}

/// Result: average tps plus the throughput-over-time series.
#[derive(Clone, Debug)]
pub struct ReshardMetrics {
    /// Mean committed tps over the whole run.
    pub avg_tps: f64,
    /// (time, tps) series in 5-second buckets.
    pub series: Vec<(SimTime, f64)>,
    /// View changes observed.
    pub view_changes: u64,
    /// View changes initiated (including failed attempts).
    pub vc_initiated: u64,
    /// State-transfer syncs performed by rejoining nodes.
    pub state_syncs: u64,
}

/// Build the partition schedule implementing the strategy.
fn partitions(cfg: &ReshardConfig) -> Vec<Partition> {
    let n = cfg.committee_size;
    let mut parts = Vec::new();
    for &at in &cfg.reshard_at {
        let start = SimTime::ZERO + at;
        match cfg.strategy {
            ReshardStrategy::None => {}
            ReshardStrategy::SwapAll => {
                // Everyone re-syncs at once for the full fetch time.
                parts.push(Partition {
                    start,
                    end: start + cfg.full_fetch,
                    isolated: (0..n).collect(),
                });
            }
            ReshardStrategy::SwapLog => {
                // In expectation half the members transition (k = 2 shards
                // in the paper's Figure 12 setup), B at a time. Each batch
                // fetches only its share of the state, so a batch's fetch
                // time is proportionally shorter.
                let b = paper_batch_size(n);
                let transitioning = n / 2;
                let batches = transitioning.div_ceil(b).max(1);
                let per_batch = SimDuration::from_secs_f64(
                    cfg.full_fetch.as_secs_f64() / batches as f64,
                );
                let mut t = start;
                // Skip the initial leader (0) and the metrics reporter (1):
                // which nodes transition is arbitrary, and keeping the
                // vantage point online keeps the measurement continuous.
                let mut next = 2;
                // §5.3: a batch officially joins only after its state fetch
                // completes; the next batch leaves afterwards. The slack
                // between batches is the rejoin/state-transfer time.
                let slack = SimDuration::from_secs(5);
                for _ in 0..batches {
                    let mut group = Vec::with_capacity(b);
                    for _ in 0..b {
                        group.push(next % n);
                        next += 1;
                        if next % n < 2 {
                            next += 2 - next % n;
                        }
                    }
                    parts.push(Partition { start: t, end: t + per_batch, isolated: group });
                    t = t + per_batch + slack;
                }
            }
        }
    }
    parts
}

/// Run a Figure 12 experiment.
pub fn run_reshard(cfg: &ReshardConfig) -> ReshardMetrics {
    let mut pbft = PbftConfig::new(BftVariant::AhlPlus, cfg.committee_size);
    pbft.batch_timeout = SimDuration::from_millis(20);
    let net = PartitionedNetwork::new(ClusterNetwork::new(), partitions(cfg));
    let genesis = SmallBankWorkload::paper(10_000, 0.0).genesis();
    let (mut sim, group) = build_group(&pbft, Box::new(net), Some(1e9), &genesis, cfg.seed);

    let stop = SimTime::ZERO + cfg.duration;
    // Clients attach to the two stable members (a transitioning node closes
    // its client connections and the driver reconnects elsewhere; routing
    // straight to stable peers models that without a reconnect protocol).
    let stable: Vec<_> = group.iter().copied().take(2).collect();
    for c in 0..cfg.clients {
        let interval = SimDuration::from_secs_f64(1.0 / cfg.client_rate.max(1e-9));
        let client = OpenLoopClient::new(
            stable.clone(),
            interval,
            stop,
            SmallBankWorkload::paper(10_000, 0.0).factory(c),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
    }
    sim.run_until(stop + SimDuration::from_secs(10));

    let stats = sim.stats();
    let avg = stats.rate_in_window(stat::COMMIT_SERIES, SimTime::ZERO, stop);
    ReshardMetrics {
        avg_tps: avg,
        series: stats.rate_series(stat::COMMIT_SERIES, SimDuration::from_secs(5), stop),
        view_changes: stats.counter(stat::VIEW_CHANGES),
        vc_initiated: stats.counter("consensus.vc_initiated"),
        state_syncs: stats.counter("consensus.state_syncs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(strategy: ReshardStrategy) -> ReshardMetrics {
        let mut cfg = ReshardConfig::new(9, strategy);
        cfg.reshard_at = vec![SimDuration::from_secs(30)];
        cfg.full_fetch = SimDuration::from_secs(20);
        cfg.duration = SimDuration::from_secs(90);
        cfg.client_rate = 100.0;
        cfg.clients = 2;
        run_reshard(&cfg)
    }

    #[test]
    fn swap_all_creates_throughput_hole() {
        let m = quick(ReshardStrategy::SwapAll);
        // During [30 s, 50 s) the committee has no quorum: find a 5 s
        // bucket with (near-)zero throughput.
        let hole = m
            .series
            .iter()
            .filter(|(t, _)| t.as_secs_f64() >= 30.0 && t.as_secs_f64() < 50.0)
            .any(|(_, tps)| *tps < 10.0);
        assert!(hole, "expected a throughput hole: {:?}", m.series);
    }

    #[test]
    fn swap_log_tracks_baseline() {
        let base = quick(ReshardStrategy::None);
        let swap = quick(ReshardStrategy::SwapLog);
        assert!(
            swap.avg_tps > 0.85 * base.avg_tps,
            "baseline {} vs swap-log {}",
            base.avg_tps,
            swap.avg_tps
        );
        // And no bucket collapses to zero after warmup.
        let collapsed = swap
            .series
            .iter()
            .filter(|(t, _)| t.as_secs_f64() >= 10.0 && t.as_secs_f64() < 85.0)
            .any(|(_, tps)| *tps < 5.0);
        assert!(!collapsed, "swap-log should keep quorum: {:?}", swap.series);
    }

    #[test]
    fn swap_all_worse_than_swap_log() {
        let all = quick(ReshardStrategy::SwapAll);
        let log = quick(ReshardStrategy::SwapLog);
        assert!(log.avg_tps > all.avg_tps, "log {} all {}", log.avg_tps, all.avg_tps);
    }
}
