//! Table 1: methodology comparison against prior sharded blockchains.

/// One row of Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemRow {
    /// System name.
    pub system: &'static str,
    /// Machines used in the evaluation.
    pub machines: u32,
    /// Process-per-machine over-subscription factor.
    pub oversubscription: u32,
    /// Transaction model.
    pub txn_model: &'static str,
    /// Whether distributed (cross-shard) transactions are supported.
    pub distributed_txns: bool,
}

/// The rows of Table 1 as printed in the paper.
pub fn table1() -> Vec<SystemRow> {
    vec![
        SystemRow {
            system: "Elastico",
            machines: 800,
            oversubscription: 2,
            txn_model: "UTXO",
            distributed_txns: false,
        },
        SystemRow {
            system: "OmniLedger",
            machines: 60,
            oversubscription: 67,
            txn_model: "UTXO",
            distributed_txns: false,
        },
        SystemRow {
            system: "RapidChain",
            machines: 32,
            oversubscription: 125,
            txn_model: "UTXO",
            distributed_txns: true,
        },
        SystemRow {
            system: "Ours",
            machines: 1400,
            oversubscription: 1,
            txn_model: "General workload",
            distributed_txns: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_is_the_only_general_one_to_one() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        let ours = rows.iter().find(|r| r.system == "Ours").expect("ours row");
        assert_eq!(ours.oversubscription, 1);
        assert!(ours.distributed_txns);
        assert_eq!(ours.txn_model, "General workload");
        // Everyone else is UTXO.
        assert!(rows
            .iter()
            .filter(|r| r.system != "Ours")
            .all(|r| r.txn_model == "UTXO"));
    }
}
