//! The complete sharded blockchain (paper Figure 1b): shard formation,
//! one AHL+ committee per shard, an optional reference committee for
//! cross-shard transactions, and closed-loop cross-shard clients.

use ahl_consensus::adversary::{Attack, SafetyChecker};
use ahl_consensus::harness::NetChoice;
use ahl_consensus::pbft::{add_committee, BftVariant, PbftConfig, PbftMsg, ReplyPolicy};
use ahl_ledger::Value;
use ahl_mempool::MempoolConfig;
use ahl_simkit::adversary::{FaultRule, ScriptedFaults};
use ahl_simkit::{MsgClass, NodeId, QueueConfig, Sim, SimConfig, SimDuration, SimTime};
use ahl_telemetry::{LivenessChecker, ProfileReport, Profiler};
use ahl_txn::ShardMap;
use ahl_workload::{KvStoreWorkload, SmallBankWorkload, Zipf};
use rand::rngs::SmallRng;

use crate::xclient::{sysstat, CrossShardClient, StateOpFactory};

/// Workload selection for system-level experiments.
#[derive(Clone, Debug)]
pub enum SystemWorkload {
    /// SmallBank sendPayment over `accounts` accounts with Zipf `theta`.
    SmallBank {
        /// Account population.
        accounts: usize,
        /// Zipf skew.
        theta: f64,
    },
    /// KVStore with `ops_per_txn` updates over `keys` keys.
    KvStore {
        /// Key population.
        keys: u64,
        /// Updates per transaction (3 in the paper's cross-shard runs).
        ops_per_txn: usize,
    },
}

impl SystemWorkload {
    fn genesis(&self) -> Vec<(String, Value)> {
        match self {
            SystemWorkload::SmallBank { accounts, .. } => {
                SmallBankWorkload::paper(*accounts, 0.0).genesis()
            }
            SystemWorkload::KvStore { .. } => Vec::new(),
        }
    }

    fn factory(&self) -> StateOpFactory {
        match self.clone() {
            SystemWorkload::SmallBank { accounts, theta } => {
                let w = SmallBankWorkload::paper(accounts, theta);
                let zipf = Zipf::new(accounts, theta);
                Box::new(move |rng: &mut SmallRng| w.next_op(&zipf, rng))
            }
            SystemWorkload::KvStore { keys, ops_per_txn } => {
                let w = KvStoreWorkload {
                    keys,
                    ops_per_txn,
                    value_size: 64,
                    theta: 0.0,
                };
                let zipf = Zipf::new(keys as usize, 0.0);
                Box::new(move |rng: &mut SmallRng| w.next_op(&zipf, rng))
            }
        }
    }
}

/// Configuration of a full-system run.
pub struct SystemConfig {
    /// Number of shards.
    pub shards: usize,
    /// Committee size per shard.
    pub committee_size: usize,
    /// Include the reference committee (cross-shard transactions enabled).
    pub with_reference: bool,
    /// Consensus variant inside committees.
    pub variant: BftVariant,
    /// Testbed network.
    pub net: NetChoice,
    /// Number of cross-shard client drivers (the paper: 4 per shard).
    pub clients: usize,
    /// Outstanding transactions per client (the paper: 128).
    pub outstanding: usize,
    /// Workload.
    pub workload: SystemWorkload,
    /// Measured duration (after warmup).
    pub duration: SimDuration,
    /// Warmup.
    pub warmup: SimDuration,
    /// Batch size within committees.
    pub batch_size: usize,
    /// Per-replica transaction pool (capacity + admission policy). Sized
    /// well above the offered load by default; shrink it (or raise
    /// `clients` × `outstanding`) to push the system into overload and
    /// exercise backpressure.
    pub mempool: MempoolConfig,
    /// Client reaction to pool backpressure: fixed backoff, or
    /// pool-aware AIMD window control (see [`crate::xclient::RateControl`]).
    pub rate_control: crate::xclient::RateControl,
    /// Real on-disk persistence root: every replica journals batches and
    /// checkpoints under `dir/node-<actor id>` and restarts recover from
    /// disk. `None` = in-memory simulation (the default; sweeps stay
    /// filesystem-free).
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL tuning when `data_dir` is set (fsync policy, segment size,
    /// crash injection).
    pub wal: ahl_wal::WalConfig,
    /// Byzantine replicas per committee (highest group indices of every
    /// shard committee *and* the reference committee).
    pub byzantine: usize,
    /// What the Byzantine replicas do (see [`Attack`]).
    pub attack: Attack,
    /// Number of clients (of [`SystemConfig::clients`]) replaced by
    /// Byzantine 2PC drivers: they replay every protocol step and
    /// deliver decisions selectively/duplicated/reordered. The on-chain
    /// Figure 6 guards and replica-side dedup must mask all of it.
    pub malicious_clients: usize,
    /// Global safety oracle wired into every honest replica (`None` = no
    /// observation overhead; see [`SafetyChecker`]).
    pub safety: Option<SafetyChecker>,
    /// Liveness oracle fed from the flight-recorder stream (`None` = no
    /// observation overhead; see [`LivenessChecker`]). The run installs
    /// the committee topology, tees every trace stamp into it, and runs
    /// its final sweep at end of run.
    pub liveness: Option<LivenessChecker>,
    /// Scripted network faults (partitions, drops, delays, duplication)
    /// installed as the simulator's message interposer — the handle
    /// liveness canaries use to stall a committee from the outside.
    pub faults: Vec<FaultRule<PbftMsg>>,
    /// Enable the wall-clock [`Profiler`] for this run: hot paths record
    /// hierarchical spans, harvested into [`SystemReport::profile`].
    pub profile: bool,
    /// Worker threads for in-shard block execution on every replica.
    /// `1` (the default) is the classic sequential loop; above that, each
    /// block's batch runs through the deterministic conflict-aware engine
    /// (`ahl_ledger::parexec`) — receipts, state roots, and checkpoint
    /// certificates are byte-identical at any worker count, so this knob
    /// changes wall-clock only, never results. Defaults from the
    /// `AHL_EXEC_WORKERS` environment variable when set (CI's parallel
    /// cells flip the whole suite without new binaries).
    pub exec_workers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SystemConfig {
    /// Paper-style defaults for `shards` shards of `committee_size` nodes.
    pub fn new(shards: usize, committee_size: usize) -> Self {
        SystemConfig {
            shards,
            committee_size,
            with_reference: true,
            variant: BftVariant::AhlPlus,
            net: NetChoice::Cluster,
            clients: 4 * shards,
            outstanding: 128,
            workload: SystemWorkload::SmallBank { accounts: 100_000, theta: 0.0 },
            duration: SimDuration::from_secs(15),
            warmup: SimDuration::from_secs(5),
            batch_size: 100,
            mempool: MempoolConfig::default(),
            rate_control: crate::xclient::RateControl::Fixed,
            data_dir: None,
            wal: ahl_wal::WalConfig::default(),
            byzantine: 0,
            attack: Attack::default(),
            malicious_clients: 0,
            safety: None,
            liveness: None,
            faults: Vec::new(),
            profile: false,
            exec_workers: exec_workers_from_env(),
            seed: 42,
        }
    }
}

/// Default worker count for block execution: the `AHL_EXEC_WORKERS`
/// environment variable when set to a positive integer, else `1`
/// (sequential). Because parallel execution is observably identical to
/// sequential, flipping this for an entire test or experiment run is
/// always safe — it is how CI runs its `exec_workers = 4` cell.
pub fn exec_workers_from_env() -> usize {
    std::env::var("AHL_EXEC_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|w| *w >= 1)
        .unwrap_or(1)
}

/// Metrics of a full-system run.
#[derive(Clone, Debug, Default)]
pub struct SystemMetrics {
    /// Logical transactions committed per second (measured window).
    pub tps: f64,
    /// Total logical commits.
    pub committed: u64,
    /// Total logical aborts (lock conflicts, guards).
    pub aborted: u64,
    /// Abort rate among finished transactions.
    pub abort_rate: f64,
    /// Mean logical transaction latency.
    pub latency_mean: SimDuration,
    /// Median logical transaction latency.
    pub latency_p50: SimDuration,
    /// 99th-percentile logical transaction latency.
    pub latency_p99: SimDuration,
    /// 99.9th-percentile logical transaction latency.
    pub latency_p999: SimDuration,
    /// Fraction of transactions that were cross-shard.
    pub cross_shard_fraction: f64,
    /// Transactions abandoned after stalls.
    pub stalled: u64,
    /// Protocol steps bounced by pool admission control (client-observed;
    /// each was retried after a backoff).
    pub rejected: u64,
    /// Transactions dropped replica-side by pool admission control.
    pub pool_rejections: u64,
    /// View changes across all committees.
    pub view_changes: u64,
    /// State-sync chunks served to lagging/restarted replicas.
    pub chunks_served: u64,
    /// Bytes of state verified and applied by syncing replicas.
    pub bytes_synced: u64,
    /// Sync chunks rejected by proof verification (0 in honest runs).
    pub proof_failures: u64,
    /// Sum of all integer balances across shard ledgers at the end of the
    /// run (conservation audit; `None` for non-monetary workloads).
    pub final_balance: Option<i64>,
    /// Safety violations recorded by the run's [`SafetyChecker`]
    /// (0 when none was configured — and 0 in every run with the
    /// Byzantine count within bound, or the run is broken).
    pub safety_violations: u64,
    /// Liveness violations recorded by the run's [`LivenessChecker`]
    /// (0 when none was configured — and 0 in every clean run).
    pub liveness_violations: u64,
}

/// A full-system run's metrics plus the raw simulator statistics that
/// produced them: labeled per-committee counters, phase-latency
/// histograms, and the transaction flight recorder. Everything a
/// machine-readable report needs without re-running the simulation.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Aggregate logical-transaction metrics (what [`run_system`] returns).
    pub metrics: SystemMetrics,
    /// The simulator's statistics sink at the end of the run.
    pub stats: ahl_simkit::Stats,
    /// Wall-clock span attribution, when [`SystemConfig::profile`] was set.
    pub profile: Option<ProfileReport>,
}

/// Run the full sharded system and report logical-transaction metrics.
pub fn run_system(cfg: SystemConfig) -> SystemMetrics {
    run_system_report(cfg).metrics
}

/// Per-replica PBFT configuration derived from a [`SystemConfig`].
///
/// The single source of replica settings shared by the simulator
/// ([`run_system`] builds every committee from it) and the real-node
/// path (the `node` binary and the localhost-cluster experiment derive
/// their replicas from the same function), so a TCP cluster provably
/// runs the configuration the simulator predicts.
pub fn committee_config(cfg: &SystemConfig) -> PbftConfig {
    let mut pbft = PbftConfig::new(cfg.variant, cfg.committee_size);
    pbft.reply_policy = ReplyPolicy::IngestReplica;
    pbft.batch_size = cfg.batch_size;
    pbft.batch_timeout = SimDuration::from_millis(10);
    pbft.mempool = cfg.mempool.clone();
    pbft.cpu_scale = cfg.net.cpu_scale();
    pbft.data_dir = cfg.data_dir.clone();
    pbft.wal = cfg.wal.clone();
    pbft.byzantine = cfg.byzantine;
    pbft.attack = cfg.attack;
    pbft.safety = cfg.safety.clone();
    pbft.exec_workers = cfg.exec_workers;
    pbft
}

/// How many trailing flight-recorder events to print per node when a
/// safety violation triggers a dump.
const DUMP_TAIL: usize = 24;

/// Like [`run_system`], but also returns the simulator's raw statistics
/// (labeled counters, phase histograms, flight recorder) for reporting.
pub fn run_system_report(mut cfg: SystemConfig) -> SystemReport {
    let committees = cfg.shards + usize::from(cfg.with_reference);
    let total_nodes = committees * cfg.committee_size + cfg.clients;
    let faults = std::mem::take(&mut cfg.faults);
    let cfg = cfg;

    fn classify(m: &PbftMsg) -> MsgClass {
        m.class()
    }
    fn size_of(m: &PbftMsg) -> usize {
        m.wire_size()
    }
    let mut sim_cfg = SimConfig::new(cfg.seed);
    sim_cfg.network = match cfg.net {
        NetChoice::Cluster => Box::new(ahl_net::ClusterNetwork::new()),
        NetChoice::Gcp { regions } => Box::new(ahl_net::GcpNetwork::new(total_nodes, regions)),
    };
    sim_cfg.classify = classify;
    sim_cfg.size_of = size_of;
    sim_cfg.uplink_bps = Some(match cfg.net {
        NetChoice::Cluster => 1e9,
        NetChoice::Gcp { .. } => 300e6,
    });
    let mut sim: Sim<PbftMsg> = Sim::new(sim_cfg);
    sim.stats_mut().set_topology(committees, cfg.committee_size);
    if let Some(liveness) = &cfg.liveness {
        liveness.install_topology(committees, cfg.committee_size);
        let sink = std::sync::Arc::new(std::sync::Mutex::new(liveness.clone()));
        sim.stats_mut().set_trace_sink(sink);
    }
    if !faults.is_empty() {
        sim.set_interposer(Box::new(ScriptedFaults::new(faults)));
    }
    if cfg.profile {
        Profiler::enable();
    }

    let pbft = committee_config(&cfg);

    let map = ShardMap::new(cfg.shards);
    let genesis = cfg.workload.genesis();

    // Shard committees own their slice of the genesis state.
    let mut shard_entry: Vec<NodeId> = Vec::with_capacity(cfg.shards);
    for shard in 0..cfg.shards {
        let local: Vec<(String, Value)> = genesis
            .iter()
            .filter(|(k, _)| map.shard_of(k) == shard)
            .cloned()
            .collect();
        let mut ccfg = pbft.clone();
        ccfg.committee_id = shard;
        let group = add_committee(&mut sim, &ccfg, &local, cfg.seed ^ (shard as u64 + 1) << 20);
        shard_entry.push(group[0]);
    }
    // The reference committee starts with an empty ledger.
    const REF_SEED_SALT: u64 = 0x5EF5_EF5E;
    let ref_entry: NodeId = if cfg.with_reference {
        let mut ccfg = pbft.clone();
        ccfg.committee_id = cfg.shards;
        let group = add_committee(&mut sim, &ccfg, &[], cfg.seed ^ REF_SEED_SALT);
        group[0]
    } else {
        shard_entry[0]
    };

    let stop = SimTime::ZERO + cfg.warmup + cfg.duration;
    for c in 0..cfg.clients {
        // Spread client entry points across committee members.
        let targets: Vec<NodeId> = (0..cfg.shards)
            .map(|s| {
                let base = s * cfg.committee_size;
                base + (c % cfg.committee_size)
            })
            .collect();
        let ref_target = if cfg.with_reference {
            cfg.shards * cfg.committee_size + (c % cfg.committee_size)
        } else {
            ref_entry
        };
        let client = CrossShardClient::new(
            c,
            targets,
            ref_target,
            map,
            cfg.outstanding,
            stop,
            SimDuration::from_secs(8),
            cfg.workload.factory(),
        )
        .with_rate_control(cfg.rate_control)
        .with_sabotage(c < cfg.malicious_clients);
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
    }

    let end = stop + SimDuration::from_secs(10);
    sim.run_until(end);
    let profile = if cfg.profile { Some(Profiler::take()) } else { None };
    if let Some(liveness) = &cfg.liveness {
        // Final sweep: demand still waiting at end of run is a stall even
        // if no late event triggered a periodic check.
        liveness.finish(end);
    }

    // Conservation audit: read each shard's most-advanced replica.
    let final_balance = match &cfg.workload {
        SystemWorkload::SmallBank { .. } => {
            use ahl_consensus::pbft::Replica;
            let mut total = 0i64;
            for shard in 0..cfg.shards {
                let base = shard * cfg.committee_size;
                let best = (base..base + cfg.committee_size)
                    .filter_map(|id| {
                        sim.actor(id)
                            .as_any()
                            .and_then(|a| a.downcast_ref::<Replica>())
                    })
                    .max_by_key(|r| r.exec_seq())
                    .expect("committee has replicas");
                total += best
                    .state()
                    .iter()
                    .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
                    .filter_map(|(_, v)| v.as_int())
                    .sum::<i64>();
            }
            Some(total)
        }
        SystemWorkload::KvStore { .. } => None,
    };

    let stats = sim.stats();
    let from = SimTime::ZERO + cfg.warmup;
    let committed = stats.counter(sysstat::SYS_COMMITTED);
    let aborted = stats.counter(sysstat::SYS_ABORTED);
    let finished = committed + aborted;
    let latency = stats.histogram(sysstat::SYS_LATENCY);
    let metrics = SystemMetrics {
        tps: stats.rate_in_window(sysstat::SYS_COMMIT_SERIES, from, stop),
        committed,
        aborted,
        abort_rate: if finished == 0 { 0.0 } else { aborted as f64 / finished as f64 },
        latency_mean: latency.map(|h| h.mean()).unwrap_or_default(),
        latency_p50: latency.map(|h| h.quantile(0.50)).unwrap_or_default(),
        latency_p99: latency.map(|h| h.quantile(0.99)).unwrap_or_default(),
        latency_p999: latency.map(|h| h.quantile(0.999)).unwrap_or_default(),
        cross_shard_fraction: if finished == 0 {
            0.0
        } else {
            stats.counter(sysstat::SYS_CROSS_SHARD) as f64 / finished as f64
        },
        stalled: stats.counter(sysstat::SYS_STALLED),
        rejected: stats.counter(sysstat::SYS_REJECTED),
        pool_rejections: stats.counter(ahl_mempool::stat::REJECTED_FULL),
        view_changes: stats.counter(ahl_consensus::stat::VIEW_CHANGES),
        chunks_served: stats.counter(ahl_consensus::stat::SYNC_CHUNKS_SERVED),
        bytes_synced: stats.counter(ahl_consensus::stat::SYNC_BYTES),
        proof_failures: stats.counter(ahl_consensus::stat::SYNC_PROOF_FAILURES),
        final_balance,
        safety_violations: cfg
            .safety
            .as_ref()
            .map(|s| s.violations().len() as u64)
            .unwrap_or(0),
        liveness_violations: cfg
            .liveness
            .as_ref()
            .map(|l| l.violations().len() as u64)
            .unwrap_or(0),
    };

    // Dump-on-anomaly: a safety violation prints a bounded causal trace
    // from the flight recorder — the implicated committee's replicas (or
    // every committee when the violation doesn't localise), plus the full
    // cross-node lifecycle of the implicated transaction when known.
    if metrics.safety_violations > 0 {
        if let Some(checker) = &cfg.safety {
            let violations = checker.violations();
            eprintln!("=== SAFETY VIOLATIONS: {} ===", violations.len());
            for v in violations.iter().take(8) {
                eprintln!("  {}", v.summary());
            }
            if violations.len() > 8 {
                eprintln!("  ... and {} more", violations.len() - 8);
            }
            let mut nodes: Vec<usize> = Vec::new();
            for v in &violations {
                if let Some(c) = v.committee() {
                    let base = c * cfg.committee_size;
                    nodes.extend(base..base + cfg.committee_size);
                }
            }
            nodes.sort_unstable();
            nodes.dedup();
            if nodes.is_empty() {
                nodes = (0..committees * cfg.committee_size).collect();
            }
            eprint!("{}", stats.recorder().dump(nodes.iter().copied(), DUMP_TAIL));
            for v in &violations {
                if let Some(id) = v.trace_id() {
                    eprintln!("--- lifecycle of id={id} ---");
                    for ev in stats.recorder().lifecycle(id) {
                        eprintln!("{ev}");
                    }
                }
            }
        }
    }

    // Same dump path for liveness: print each violation's summary plus the
    // implicated committee's bounded causal trace and the lifecycle of the
    // stuck probe transaction.
    if metrics.liveness_violations > 0 {
        if let Some(checker) = &cfg.liveness {
            let violations = checker.violations();
            eprintln!("=== LIVENESS VIOLATIONS: {} ===", violations.len());
            for v in violations.iter().take(8) {
                eprintln!("  {}", v.summary());
            }
            if violations.len() > 8 {
                eprintln!("  ... and {} more", violations.len() - 8);
            }
            let mut nodes: Vec<usize> = Vec::new();
            for v in &violations {
                if let Some(c) = v.committee() {
                    let base = c * cfg.committee_size;
                    nodes.extend(base..base + cfg.committee_size);
                }
            }
            nodes.sort_unstable();
            nodes.dedup();
            if nodes.is_empty() {
                nodes = (0..committees * cfg.committee_size).collect();
            }
            eprint!("{}", stats.recorder().dump(nodes.iter().copied(), DUMP_TAIL));
            for v in &violations {
                if let Some(id) = v.trace_id() {
                    eprintln!("--- lifecycle of id={id} ---");
                    for ev in stats.recorder().lifecycle(id) {
                        eprintln!("{ev}");
                    }
                }
            }
        }
    }

    SystemReport { metrics, stats: stats.clone(), profile }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system(with_reference: bool, theta: f64) -> SystemMetrics {
        let mut cfg = SystemConfig::new(4, 3);
        cfg.with_reference = with_reference;
        cfg.clients = 8;
        cfg.outstanding = 16;
        cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta };
        cfg.duration = SimDuration::from_secs(8);
        cfg.warmup = SimDuration::from_secs(2);
        cfg.batch_size = 20;
        run_system(cfg)
    }

    #[test]
    fn cross_shard_transactions_commit() {
        let m = small_system(true, 0.0);
        assert!(m.committed > 500, "committed {}", m.committed);
        assert!(m.cross_shard_fraction > 0.5, "xs {}", m.cross_shard_fraction);
        assert!(m.abort_rate < 0.2, "abort rate {}", m.abort_rate);
    }

    /// Acceptance: offered load above pool capacity must not deadlock the
    /// system. Rejections are counted, and committed throughput stays
    /// within 10% of the non-overloaded run.
    #[test]
    fn overload_backpressure_sustains_throughput() {
        let run = |pool_capacity: usize| {
            let mut cfg = SystemConfig::new(2, 3);
            cfg.clients = 8;
            cfg.outstanding = 64; // 512 concurrently open transactions
            cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta: 0.0 };
            cfg.duration = SimDuration::from_secs(8);
            cfg.warmup = SimDuration::from_secs(2);
            cfg.batch_size = 20;
            cfg.mempool = MempoolConfig::new(pool_capacity);
            run_system(cfg)
        };
        // Baseline: pool far above the offered load — no rejections.
        let base = run(100_000);
        assert_eq!(base.rejected, 0, "baseline must not reject");
        assert!(base.committed > 500, "baseline committed {}", base.committed);
        // Overload: the pool is smaller than the concurrently offered
        // steps, so admission control engages (the bench's overload sweep
        // pushes much deeper, trading throughput for bounded memory).
        let over = run(256);
        assert!(over.rejected > 0, "overload must reject");
        assert!(over.pool_rejections > 0);
        assert!(over.committed > 0, "overload must keep committing (no deadlock)");
        let ratio = over.committed as f64 / base.committed as f64;
        assert!(
            ratio > 0.9,
            "overloaded throughput degraded beyond 10%: {} vs {} (ratio {ratio:.3})",
            over.committed,
            base.committed
        );
        // Conservation still holds under eviction/rejection pressure.
        assert_eq!(base.final_balance, over.final_balance);
    }

    #[test]
    fn skew_increases_abort_rate() {
        let uniform = small_system(true, 0.0);
        let skewed = small_system(true, 1.5);
        assert!(
            skewed.abort_rate > uniform.abort_rate,
            "uniform {} skewed {}",
            uniform.abort_rate,
            skewed.abort_rate
        );
    }
}
