//! The shard-formation pipeline: beacon → committee sizing → assignment.

use ahl_shard::{min_committee_size, Assignment, LnFact, Resilience};

/// A fully formed network layout for one epoch.
#[derive(Clone, Debug)]
pub struct Formation {
    /// Committee size n.
    pub committee_size: usize,
    /// Number of shards k (committees excluding the reference committee).
    pub shards: usize,
    /// The node-to-committee assignment (k + 1 committees; the last one is
    /// the reference committee when present).
    pub assignment: Assignment,
    /// Whether the last committee is the reference committee.
    pub has_reference: bool,
}

/// Derive a formation for `total` nodes under adversary fraction `s`.
///
/// Committee size comes from Equation 1 at `security_bits` (paper: 2^-20);
/// the number of shards is `total / n` (minus one committee when a
/// reference committee is requested). Returns `None` when `total` cannot
/// host even one safe committee.
pub fn form(
    total: usize,
    s: f64,
    rule: Resilience,
    security_bits: f64,
    with_reference: bool,
    rnd: u64,
) -> Option<Formation> {
    let lf = LnFact::new(total.max(64) + 1);
    let n = min_committee_size(&lf, total, s, rule, security_bits)?;
    let committees = total / n;
    let needed = if with_reference { 2 } else { 1 };
    if committees < needed {
        return None;
    }
    let k = committees - usize::from(with_reference);
    let assignment = Assignment::derive(committees * n, committees, rnd);
    Some(Formation {
        committee_size: n,
        shards: k,
        assignment,
        has_reference: with_reference,
    })
}

impl Formation {
    /// Members of shard committee `c` (0-based, c < shards).
    pub fn shard_members(&self, c: usize) -> &[usize] {
        assert!(c < self.shards, "shard out of range");
        &self.assignment.committees[c]
    }

    /// Members of the reference committee (panics if absent).
    pub fn reference_members(&self) -> &[usize] {
        assert!(self.has_reference, "no reference committee");
        &self.assignment.committees[self.shards]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gcp_formation_25_percent() {
        // §7.3: 972 nodes at 25% → 79-node committees → 12 committees.
        let f = form(972, 0.25, Resilience::OneHalf, 20.0, false, 7).expect("formable");
        assert!((70..=82).contains(&f.committee_size), "n = {}", f.committee_size);
        assert_eq!(f.shards, 972 / f.committee_size);
    }

    #[test]
    fn paper_gcp_formation_12_5_percent() {
        // §7.3: 12.5% → 27-node committees → 36 shards at 972 nodes.
        let f = form(972, 0.125, Resilience::OneHalf, 20.0, false, 7).expect("formable");
        assert!((25..=29).contains(&f.committee_size), "n = {}", f.committee_size);
        assert!(f.shards >= 33, "k = {}", f.shards);
    }

    #[test]
    fn reference_committee_consumes_one() {
        let with = form(972, 0.125, Resilience::OneHalf, 20.0, true, 7).expect("formable");
        let without = form(972, 0.125, Resilience::OneHalf, 20.0, false, 7).expect("formable");
        assert_eq!(with.shards + 1, without.shards);
        assert_eq!(with.reference_members().len(), with.committee_size);
    }

    /// The sizes this pipeline actually deploys satisfy Equation 1 by an
    /// *independent* computation: the committee-compromise probability at
    /// the chosen size meets the 2^-20 budget per the direct-product
    /// reference, and one node fewer would not.
    #[test]
    fn formed_committee_sizes_meet_reference_budget() {
        use ahl_shard::{reference_tail, Resilience};
        let target = 2f64.powf(-20.0);
        for (total, s) in [(972, 0.25), (972, 0.125), (1000, 0.2)] {
            let f = form(total, s, Resilience::OneHalf, 20.0, true, 7).expect("formable");
            let n = f.committee_size;
            let byz = (total as f64 * s).floor() as usize;
            let threshold = Resilience::OneHalf.failure_threshold(n);
            assert!(
                reference_tail(total, byz, n, threshold) <= target,
                "deployed n = {n} violates the budget at total {total}, s {s}"
            );
            let smaller = Resilience::OneHalf.failure_threshold(n - 1);
            assert!(
                reference_tail(total, byz, n - 1, smaller) > target,
                "deployed n = {n} is not minimal at total {total}, s {s}"
            );
        }
    }

    #[test]
    fn too_small_network_unformable() {
        // At a 50% adversary no committee size is safe under the one-half
        // rule, so formation must fail.
        assert!(form(10, 0.5, Resilience::OneHalf, 20.0, false, 7).is_none());
    }

    #[test]
    fn members_disjoint() {
        let f = form(400, 0.2, Resilience::OneHalf, 20.0, true, 9).expect("formable");
        let mut seen = std::collections::HashSet::new();
        for c in 0..f.shards {
            for &m in f.shard_members(c) {
                assert!(seen.insert(m));
            }
        }
        for &m in f.reference_members() {
            assert!(seen.insert(m));
        }
    }
}
