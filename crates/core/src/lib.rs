//! # ahl-core — the sharded blockchain system
//!
//! The paper's complete design (Figure 1b) assembled from the substrate
//! crates: TEE-backed shard formation (`ahl-shard`), one AHL+ committee per
//! shard (`ahl-consensus`), the reference-committee 2PC for cross-shard
//! transactions (`ahl-txn` logic driven over real consensus), and the
//! BLOCKBENCH workloads (`ahl-workload`).
//!
//! Entry points:
//!
//! * [`run_system`] — the full system with the reference committee: k
//!   shard committees + R + closed-loop cross-shard clients in one
//!   simulation (Figure 13).
//! * [`run_scale_out`] — independent-shard scale-out, one simulation per
//!   shard on its own thread (Figures 14 & 18).
//! * [`run_reshard`] — throughput during epoch transitions, swap-all vs
//!   swap-log(n) (Figure 12).
//! * [`form`] — the beacon → sizing → assignment pipeline.
//! * [`table1`] — the methodology comparison data.

#![warn(missing_docs)]

pub mod compare;
pub mod formation;
pub mod parallel;
pub mod parexec;
pub mod reshard;
pub mod system;
pub mod xclient;

pub use compare::{table1, SystemRow};
pub use formation::{form, Formation};
pub use parallel::{run_scale_out, ScaleOutConfig, ScaleOutMetrics, ShardBench};
pub use parexec::{run_exec_sweep, sweep_cells_identical, ExecSweepRow};
pub use reshard::{run_reshard, ReshardConfig, ReshardMetrics, ReshardStrategy};
pub use system::{
    committee_config, run_system, run_system_report, SystemConfig, SystemMetrics, SystemReport,
    SystemWorkload,
};
pub use xclient::{sysstat, CrossShardClient, RateControl};
