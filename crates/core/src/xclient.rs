//! The cross-shard transaction driver (paper §6.3).
//!
//! Implements the client-relay optimization the paper uses in the normal
//! case: "we let the clients collect and relay messages between R and
//! tx-committees. We directly exploit the blockchain's ledger to record
//! the progress of the commit protocol." Every protocol step is an
//! ordinary transaction ordered by a committee's consensus:
//!
//! 1. **BeginTx** — a guarded op on the reference committee R's ledger
//!    recording the transaction and initializing the Figure 6 counter `c`.
//! 2. **PrepareTx** — an `Op::Prepare` at each involved shard (2PL lock
//!    acquisition + pending write-set). The execution receipt is the
//!    shard's PrepareOK / PrepareNotOK.
//! 3. **Votes** — guarded ops on R's ledger implementing the Figure 6
//!    transitions (duplicate-proof: each shard's vote key can be written
//!    once; the counter `c` decrements on OK; an abort flag latches NotOK).
//! 4. **CommitTx / AbortTx** — `Op::Commit`/`Op::Abort` at every involved
//!    shard.
//!
//! Safety does not depend on the client: the on-chain guards make R's
//! state machine follow Figure 6 no matter what a malicious client sends,
//! and `ahl-txn` proves those state machines safe. A crashed client only
//! delays its own transaction (liveness for the *locks* comes from R's
//! ability to abort, exercised in the stall path below).

use std::collections::HashMap;

use ahl_consensus::clients::AimdWindow;
use ahl_consensus::common::Request;
use ahl_consensus::pbft::PbftMsg;

// One shared backpressure-policy implementation across all drivers (the
// closed-loop request client and this transaction driver must not drift).
pub use ahl_consensus::clients::RateControl;
use ahl_ledger::{Condition, Mutation, Op, StateOp, TxId, Value};
use ahl_simkit::{Actor, Ctx, NodeId, SimDuration, SimTime};
use ahl_txn::ShardMap;
use rand::rngs::SmallRng;

/// Stat keys recorded by the cross-shard driver.
pub mod sysstat {
    /// Counter: logical transactions committed.
    pub const SYS_COMMITTED: &str = "sys.txn_committed";
    /// Counter: logical transactions aborted.
    pub const SYS_ABORTED: &str = "sys.txn_aborted";
    /// Series: logical commits over time.
    pub const SYS_COMMIT_SERIES: &str = "sys.commit_series";
    /// Histogram: logical transaction latency.
    pub const SYS_LATENCY: &str = "sys.txn_latency";
    /// Counter: transactions that were cross-shard.
    pub const SYS_CROSS_SHARD: &str = "sys.cross_shard";
    /// Counter: stalled transactions abandoned by the driver.
    pub const SYS_STALLED: &str = "sys.stalled";
    /// Counter: protocol steps bounced by pool admission control
    /// (each is retried after a backoff).
    pub const SYS_REJECTED: &str = "sys.rejected";
}

/// Keys of the coordinator chaincode on R's ledger.
fn key_counter(txid: TxId) -> String {
    format!("T{}.c", txid.0)
}
fn key_vote(txid: TxId, shard: usize) -> String {
    format!("T{}.v{}", txid.0, shard)
}
fn key_abort(txid: TxId) -> String {
    format!("T{}.abort", txid.0)
}

/// BeginTx chaincode op: register the transaction with `parts` shards.
pub fn begin_op(txid: TxId, parts: usize) -> StateOp {
    StateOp {
        conditions: vec![Condition::NotExists(key_counter(txid))],
        mutations: vec![(key_counter(txid), Mutation::Set(Value::Int(parts as i64)))],
    }
}

/// PrepareOK vote chaincode op for `shard`.
pub fn vote_ok_op(txid: TxId, shard: usize) -> StateOp {
    StateOp {
        conditions: vec![
            Condition::Exists(key_counter(txid)),
            Condition::NotExists(key_vote(txid, shard)),
            Condition::NotExists(key_abort(txid)),
        ],
        mutations: vec![
            (key_vote(txid, shard), Mutation::Set(Value::Bool(true))),
            (key_counter(txid), Mutation::Add(-1)),
        ],
    }
}

/// PrepareNotOK vote chaincode op for `shard` (latches the abort flag).
pub fn vote_not_ok_op(txid: TxId, shard: usize) -> StateOp {
    StateOp {
        conditions: vec![
            Condition::Exists(key_counter(txid)),
            Condition::NotExists(key_vote(txid, shard)),
        ],
        mutations: vec![
            (key_vote(txid, shard), Mutation::Set(Value::Bool(false))),
            (key_abort(txid), Mutation::Set(Value::Bool(true))),
        ],
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Step {
    Begin,
    Prepare(usize),
    Vote(usize),
    Decide(usize),
    SingleShard,
}

#[derive(Debug)]
struct InFlight {
    parts: Vec<(usize, StateOp)>,
    started: SimTime,
    prepare_replies: usize,
    any_not_ok: bool,
    vote_replies: usize,
    decide_replies: usize,
    decided: bool,
    last_activity: SimTime,
}

/// Generates the next transaction body for the driver.
pub type StateOpFactory = Box<dyn FnMut(&mut SmallRng) -> StateOp + Send>;

const TIMER_WATCHDOG: u64 = 1;
const TIMER_RETRY: u64 = 2;

/// Backoff before resubmitting a step the pool rejected.
const REJECT_BACKOFF: SimDuration = SimDuration::from_millis(100);

/// A closed-loop cross-shard transaction driver.
pub struct CrossShardClient {
    /// One entry replica per shard committee.
    shard_targets: Vec<NodeId>,
    /// One entry replica in the reference committee.
    ref_target: NodeId,
    map: ShardMap,
    /// Open-transaction budget (fixed, or AIMD over pool rejections).
    window: AimdWindow,
    stop_at: SimTime,
    stall_timeout: SimDuration,
    factory: StateOpFactory,

    next_tx: u64,
    next_req: u32,
    inflight: HashMap<TxId, InFlight>,
    req_index: HashMap<u64, Pending>,
    /// Steps bounced by pool backpressure, waiting out the backoff.
    retry_buf: Vec<Pending>,
    /// Byzantine driver mode: replay every protocol step and deliver
    /// decisions duplicated and in reverse shard order. The on-chain
    /// Figure 6 guards plus replica-side request dedup must mask all of
    /// it — exercised by the byzantine test battery.
    sabotage: bool,
}

/// An outstanding protocol step (kept so rejected steps can be retried).
#[derive(Debug, Clone)]
struct Pending {
    req_id: u64,
    txid: TxId,
    step: Step,
    target: NodeId,
    op: Op,
    /// First-submission time. Same-id retries MUST reuse it: the
    /// replicas' replay horizon (`request_ttl`) is anchored at the
    /// original submission, so a request id can only be admitted while
    /// the executed-id cache is still guaranteed to remember it.
    /// Refreshing the timestamp on retry would re-open the
    /// replay-after-prune window the Byzantine battery closed.
    submitted: SimTime,
}

impl CrossShardClient {
    /// Create a driver with `window` concurrently open transactions.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        client_id: usize,
        shard_targets: Vec<NodeId>,
        ref_target: NodeId,
        map: ShardMap,
        window: usize,
        stop_at: SimTime,
        stall_timeout: SimDuration,
        factory: StateOpFactory,
    ) -> Self {
        CrossShardClient {
            shard_targets,
            ref_target,
            map,
            window: AimdWindow::new(RateControl::Fixed, window),
            stop_at,
            stall_timeout,
            factory,
            next_tx: (client_id as u64) << 40,
            next_req: 0,
            inflight: HashMap::new(),
            req_index: HashMap::new(),
            retry_buf: Vec::new(),
            sabotage: false,
        }
    }

    fn send_request(&mut self, ctx: &mut Ctx<'_, PbftMsg>, target: NodeId, op: Op, txid: TxId, step: Step) {
        let req_id = Request::make_id(ctx.id(), self.next_req);
        self.next_req = self.next_req.wrapping_add(1);
        let submitted = ctx.now();
        self.req_index
            .insert(req_id, Pending { req_id, txid, step, target, op: op.clone(), submitted });
        let req = Request { id: req_id, client: ctx.id(), op, submitted };
        ctx.trace(req_id, ahl_simkit::Phase::Submit);
        if self.sabotage {
            // Replay attack: every step goes out twice under the same
            // request id. Replica-side dedup + the on-chain vote/decision
            // guards must make the copy a no-op.
            ctx.send(target, PbftMsg::Request(req.clone()));
        }
        ctx.send(target, PbftMsg::Request(req));
    }

    /// Lock-releasing decisions must reach the shard even after the
    /// driver has forgotten the transaction (the watchdog `finish`es a
    /// stalled tx right after resending its decision): a dropped
    /// Commit/Abort would leak the 2PL locks forever, since only they
    /// release locks.
    fn must_deliver(op: &Op) -> bool {
        matches!(op, Op::Abort { .. } | Op::Commit { .. })
    }

    /// Select this driver's backpressure policy (builder-style; the
    /// default is [`RateControl::Fixed`]).
    pub fn with_rate_control(mut self, rc: RateControl) -> Self {
        self.window = AimdWindow::new(rc, self.window.max_size());
        self
    }

    /// Turn this driver into a Byzantine 2PC participant (builder-style):
    /// replays every step, delivers decisions duplicated and reordered.
    pub fn with_sabotage(mut self, on: bool) -> Self {
        self.sabotage = on;
        self
    }

    /// Pool backpressure on one of our steps: buffer it and retry after a
    /// backoff. Under AIMD the rejection also halves the open-transaction
    /// window — the pool said "too much", so the driver offers less. A
    /// transaction whose steps keep bouncing is eventually reaped by the
    /// stall watchdog, so overload cannot wedge the driver.
    fn on_rejected(&mut self, req_id: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        let Some(pending) = self.req_index.remove(&req_id) else { return };
        if !self.inflight.contains_key(&pending.txid) && !Self::must_deliver(&pending.op) {
            return; // transaction already finished or reaped
        }
        ctx.stats().inc(sysstat::SYS_REJECTED, 1);
        self.window.on_reject();
        if self.retry_buf.is_empty() {
            ctx.set_timer(REJECT_BACKOFF, TIMER_RETRY);
        }
        self.retry_buf.push(pending);
    }

    fn drain_retries(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        let pending = std::mem::take(&mut self.retry_buf);
        for p in pending {
            if !self.inflight.contains_key(&p.txid) && !Self::must_deliver(&p.op) {
                continue;
            }
            if Self::must_deliver(&p.op) {
                // Lock-releasing decisions are idempotent at the shard
                // (pending/resolved bookkeeping), so they need no dedup —
                // re-issue them as *fresh* requests, which keeps them
                // deliverable past the replay horizon (a refused late
                // abort would leak 2PL locks forever).
                self.send_request(ctx, p.target, p.op, p.txid, p.step);
                continue;
            }
            // Retry under the ORIGINAL request id *and* the original
            // submission time: the id guarantees at-most-once execution
            // through replica-side dedup, and the unchanged timestamp
            // keeps the retry inside the replay horizon that dedup is
            // guaranteed to cover. A step still bouncing when the horizon
            // expires is refused by the replicas; the stall watchdog then
            // reaps the transaction.
            let req = Request {
                id: p.req_id,
                client: ctx.id(),
                op: p.op.clone(),
                submitted: p.submitted,
            };
            ctx.send(p.target, PbftMsg::Request(req));
            self.req_index.insert(p.req_id, p);
        }
    }

    fn start_tx(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        if ctx.now() >= self.stop_at {
            return;
        }
        let body = (self.factory)(ctx.rng());
        self.next_tx += 1;
        let txid = TxId(self.next_tx);
        let parts = self.map.split_op(&body);
        let entry = InFlight {
            parts: parts.clone(),
            started: ctx.now(),
            prepare_replies: 0,
            any_not_ok: false,
            vote_replies: 0,
            decide_replies: 0,
            decided: false,
            last_activity: ctx.now(),
        };
        self.inflight.insert(txid, entry);
        match parts.len() {
            0 => {
                self.finish(txid, true, ctx);
            }
            1 => {
                let (shard, sub) = &parts[0];
                let target = self.shard_targets[*shard];
                self.send_request(ctx, target, Op::Direct { txid, op: sub.clone() }, txid, Step::SingleShard);
            }
            n_parts => {
                ctx.stats().inc(sysstat::SYS_CROSS_SHARD, 1);
                ctx.trace(txid.0, ahl_simkit::Phase::TwoPcBegin);
                self.send_request(
                    ctx,
                    self.ref_target,
                    Op::Direct { txid, op: begin_op(txid, n_parts) },
                    txid,
                    Step::Begin,
                );
            }
        }
    }

    fn finish(&mut self, txid: TxId, committed: bool, ctx: &mut Ctx<'_, PbftMsg>) {
        let Some(entry) = self.inflight.remove(&txid) else { return };
        let now = ctx.now();
        ctx.stats().record_latency(sysstat::SYS_LATENCY, now.since(entry.started));
        if committed {
            ctx.stats().inc(sysstat::SYS_COMMITTED, 1);
            ctx.stats().record_point(sysstat::SYS_COMMIT_SERIES, now, 1.0);
            self.window.on_success();
        } else {
            ctx.stats().inc(sysstat::SYS_ABORTED, 1);
        }
        if self.inflight.len() < self.window.effective() {
            self.start_tx(ctx);
        }
    }

    fn on_reply(&mut self, req_id: u64, committed: bool, ctx: &mut Ctx<'_, PbftMsg>) {
        let Some(Pending { txid, step, .. }) = self.req_index.remove(&req_id) else { return };
        let Some(entry) = self.inflight.get_mut(&txid) else { return };
        entry.last_activity = ctx.now();
        match step {
            Step::SingleShard => {
                self.finish(txid, committed, ctx);
            }
            Step::Begin => {
                if !committed {
                    // Duplicate txid or R overload: abandon.
                    self.finish(txid, false, ctx);
                    return;
                }
                // Send PrepareTx to every involved shard.
                let sends: Vec<(NodeId, Op, usize)> = entry
                    .parts
                    .iter()
                    .map(|(shard, sub)| {
                        (
                            self.shard_targets[*shard],
                            Op::Prepare { txid, op: sub.clone() },
                            *shard,
                        )
                    })
                    .collect();
                for (target, op, shard) in sends {
                    self.send_request(ctx, target, op, txid, Step::Prepare(shard));
                }
            }
            Step::Prepare(shard) => {
                entry.prepare_replies += 1;
                if !committed {
                    entry.any_not_ok = true;
                }
                // Relay the shard's vote to R (recorded on R's chain).
                let vote = if committed {
                    vote_ok_op(txid, shard)
                } else {
                    vote_not_ok_op(txid, shard)
                };
                let target = self.ref_target;
                self.send_request(ctx, target, Op::Direct { txid, op: vote }, txid, Step::Vote(shard));
            }
            Step::Vote(_) => {
                entry.vote_replies += 1;
                ctx.trace(txid.0, ahl_simkit::Phase::TwoPcVote);
                if entry.vote_replies == entry.parts.len() && !entry.decided {
                    entry.decided = true;
                    // The decision is now recorded on R's chain; deliver it.
                    let commit = !entry.any_not_ok;
                    let mut sends: Vec<(NodeId, Op, usize)> = entry
                        .parts
                        .iter()
                        .map(|(shard, _)| {
                            let op = if commit {
                                Op::Commit { txid }
                            } else {
                                Op::Abort { txid }
                            };
                            (self.shard_targets[*shard], op, *shard)
                        })
                        .collect();
                    if self.sabotage {
                        // Selective-order delivery: last shard first. The
                        // decision is the same everywhere (it comes off
                        // R's chain), so ordering must not matter.
                        sends.reverse();
                    }
                    for (target, op, shard) in sends {
                        self.send_request(ctx, target, op, txid, Step::Decide(shard));
                    }
                }
            }
            Step::Decide(_) => {
                entry.decide_replies += 1;
                if entry.decide_replies == entry.parts.len() {
                    let committed_tx = !entry.any_not_ok;
                    self.finish(txid, committed_tx, ctx);
                }
            }
        }
    }

    fn watchdog(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        // Abandon transactions that stalled (lost replies, view changes);
        // resend the decision so shard locks are released, then refill
        // the window. A transaction whose commit was already decided on
        // R's chain gets its *commit* resent, never an abort: aborting a
        // decided-commit transaction whose deliveries were partially
        // applied would discard one shard's write set after another
        // shard applied its half — a cross-shard atomicity break the
        // SafetyChecker flags.
        let now = ctx.now();
        let stalled: Vec<TxId> = self
            .inflight
            .iter()
            .filter(|(_, e)| now.since(e.last_activity) > self.stall_timeout)
            .map(|(id, _)| *id)
            .collect();
        for txid in stalled {
            let mut committed = false;
            if let Some(entry) = self.inflight.get(&txid) {
                committed = entry.decided && !entry.any_not_ok;
                let sends: Vec<(NodeId, Op)> = entry
                    .parts
                    .iter()
                    .map(|(shard, _)| {
                        let op = if committed { Op::Commit { txid } } else { Op::Abort { txid } };
                        (self.shard_targets[*shard], op)
                    })
                    .collect();
                for (target, op) in sends {
                    self.send_request(ctx, target, op, txid, Step::Decide(usize::MAX));
                }
            }
            ctx.stats().inc(sysstat::SYS_STALLED, 1);
            self.finish(txid, committed, ctx);
        }
        while self.inflight.len() < self.window.effective() && ctx.now() < self.stop_at {
            let before = self.inflight.len();
            self.start_tx(ctx);
            if self.inflight.len() <= before {
                break; // start_tx completed instantly or stop reached
            }
        }
        ctx.set_timer(self.stall_timeout, TIMER_WATCHDOG);
    }
}

impl Actor for CrossShardClient {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, PbftMsg>) {
        for _ in 0..self.window.effective() {
            self.start_tx(ctx);
        }
        ctx.set_timer(self.stall_timeout, TIMER_WATCHDOG);
    }

    fn on_message(&mut self, _from: NodeId, msg: PbftMsg, ctx: &mut Ctx<'_, PbftMsg>) {
        match msg {
            PbftMsg::Reply { req_id, committed } => self.on_reply(req_id, committed, ctx),
            PbftMsg::Rejected { req_id } => self.on_rejected(req_id, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, PbftMsg>) {
        match kind {
            TIMER_WATCHDOG => self.watchdog(ctx),
            TIMER_RETRY => self.drain_retries(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_chaincode_guards() {
        use ahl_ledger::StateStore;
        let mut r_state = StateStore::new();
        let txid = TxId(9);
        // Begin registers once.
        assert!(r_state
            .execute(&Op::Direct { txid, op: begin_op(txid, 2) })
            .status
            .is_committed());
        assert!(!r_state
            .execute(&Op::Direct { txid, op: begin_op(txid, 2) })
            .status
            .is_committed());
        // Votes: one per shard, duplicates refused.
        assert!(r_state
            .execute(&Op::Direct { txid, op: vote_ok_op(txid, 0) })
            .status
            .is_committed());
        assert!(!r_state
            .execute(&Op::Direct { txid, op: vote_ok_op(txid, 0) })
            .status
            .is_committed());
        // Second OK brings the counter to zero: committed state on-chain.
        assert!(r_state
            .execute(&Op::Direct { txid, op: vote_ok_op(txid, 1) })
            .status
            .is_committed());
        assert_eq!(r_state.get_int(&key_counter(txid)), 0);
    }

    #[test]
    fn not_ok_latches_abort_flag() {
        use ahl_ledger::StateStore;
        let mut r_state = StateStore::new();
        let txid = TxId(4);
        r_state.execute(&Op::Direct { txid, op: begin_op(txid, 2) });
        assert!(r_state
            .execute(&Op::Direct { txid, op: vote_not_ok_op(txid, 0) })
            .status
            .is_committed());
        // A later OK from another shard is refused: abort already latched.
        assert!(!r_state
            .execute(&Op::Direct { txid, op: vote_ok_op(txid, 1) })
            .status
            .is_committed());
        assert_eq!(r_state.get_int(&key_counter(txid)), 2);
    }

    #[test]
    fn votes_before_begin_refused() {
        use ahl_ledger::StateStore;
        let mut r_state = StateStore::new();
        let txid = TxId(5);
        assert!(!r_state
            .execute(&Op::Direct { txid, op: vote_ok_op(txid, 0) })
            .status
            .is_committed());
    }
}
