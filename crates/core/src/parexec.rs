//! System-level plumbing for deterministic parallel block execution.
//!
//! The engine itself lives in `ahl_ledger::parexec` (wave scheduling,
//! plan/apply, the `parallel ≡ sequential` guarantee); every consensus
//! replica routes its block batches through it when
//! [`SystemConfig::exec_workers`] is above 1. This module re-exports the
//! engine surface for facade users and provides the sweep harness the
//! experiments and the determinism battery share.
//!
//! Because worker threads only change *wall-clock* execution — simulated
//! time is charged from the cost model, and the engine's outputs are
//! byte-identical to sequential — a sweep over `exec_workers` must
//! produce identical [`SystemMetrics`] in every cell. That is not just a
//! sanity check: it is the property that makes the CI `exec_workers = 4`
//! cell meaningful (same baselines, same gates, no new goldens).

pub use ahl_ledger::parexec::{execute_ops, ExecOutcome};

pub use crate::system::exec_workers_from_env;
use crate::system::{run_system, SystemConfig, SystemMetrics};

/// One cell of an [`run_exec_sweep`] run.
#[derive(Clone, Debug)]
pub struct ExecSweepRow {
    /// Worker-thread count the cell ran with.
    pub workers: usize,
    /// The run's logical-transaction metrics.
    pub metrics: SystemMetrics,
}

/// Run the same system configuration once per entry of `workers`,
/// overriding [`SystemConfig::exec_workers`] each time. `make` builds a
/// fresh configuration per cell (configs own non-clonable state such as
/// fault scripts) and must be deterministic — same seed, same workload —
/// for the equality property to hold.
pub fn run_exec_sweep(
    mut make: impl FnMut() -> SystemConfig,
    workers: &[usize],
) -> Vec<ExecSweepRow> {
    workers
        .iter()
        .map(|&w| {
            let mut cfg = make();
            cfg.exec_workers = w;
            ExecSweepRow { workers: w, metrics: run_system(cfg) }
        })
        .collect()
}

/// `true` when every sweep cell reported identical logical results —
/// commits, aborts, latency percentiles, conservation audit, violation
/// counts. Worker count must never leak into simulated outcomes.
pub fn sweep_cells_identical(rows: &[ExecSweepRow]) -> bool {
    let Some(first) = rows.first() else { return true };
    rows.iter().all(|r| {
        let (a, b) = (&first.metrics, &r.metrics);
        a.committed == b.committed
            && a.aborted == b.aborted
            && a.tps == b.tps
            && a.latency_mean == b.latency_mean
            && a.latency_p50 == b.latency_p50
            && a.latency_p99 == b.latency_p99
            && a.final_balance == b.final_balance
            && a.safety_violations == b.safety_violations
            && a.liveness_violations == b.liveness_violations
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_simkit::SimDuration;

    fn tiny_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::new(2, 4);
        cfg.workload = crate::system::SystemWorkload::SmallBank { accounts: 200, theta: 0.0 };
        cfg.clients = 2;
        cfg.outstanding = 8;
        cfg.duration = SimDuration::from_secs(2);
        cfg.warmup = SimDuration::from_millis(500);
        cfg.exec_workers = 1;
        cfg.seed = 7;
        cfg
    }

    #[test]
    fn exec_workers_do_not_change_system_outcomes() {
        let rows = run_exec_sweep(tiny_cfg, &[1, 4]);
        assert!(rows[0].metrics.committed > 0, "sweep must actually commit work");
        assert!(sweep_cells_identical(&rows), "worker count leaked into results: {rows:?}");
    }

    #[test]
    fn env_default_parses_and_clamps() {
        // Not set in the test environment unless CI exports it; both
        // outcomes are valid, but the value must always be >= 1.
        assert!(exec_workers_from_env() >= 1);
    }
}
