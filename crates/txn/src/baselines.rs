//! Executable demonstrations of the §6.1 failure modes in prior sharded
//! blockchains — the motivation for the reference-committee design.
//!
//! * [`rapidchain_execute`] — RapidChain's transaction splitting: each
//!   sub-operation executes independently on its shard with no atomic
//!   commitment. Works for UTXO (a failed input transfer just leaves a
//!   re-spendable coin) but on the account model it violates **atomicity**
//!   (partial debits) and **isolation** (interleaved sub-operations observe
//!   partial state) — the paper's Figure 4 examples, reproduced as tests.
//! * [`OmniLedgerClient`] — OmniLedger's client-driven lock/unlock: the
//!   client is the 2PC coordinator. A malicious client that obtains locks
//!   and then goes silent blocks the locked funds **forever** — the
//!   paper's payment-channel example, reproduced as a test and contrasted
//!   with the reference-committee protocol which always terminates.

use ahl_ledger::{Op, StateOp, StateStore, TxId};
use ahl_ledger::ExecStatus;

use crate::shardmap::ShardMap;

/// Execute a transaction RapidChain-style: split into per-shard
/// sub-operations and apply each **independently** (no locks, no atomic
/// commitment). Returns per-shard success flags.
pub fn rapidchain_execute(
    shards: &mut [StateStore],
    map: &ShardMap,
    txid: TxId,
    op: &StateOp,
) -> Vec<(usize, bool)> {
    map.split_op(op)
        .into_iter()
        .map(|(shard, sub)| {
            let r = shards[shard].execute(&Op::Direct { txid, op: sub });
            (shard, r.status.is_committed())
        })
        .collect()
}

/// OmniLedger's client-driven coordination for one transaction: the client
/// (possibly malicious) drives lock acquisition and the final commit.
#[derive(Debug)]
pub struct OmniLedgerClient {
    /// The transaction being coordinated.
    pub txid: TxId,
    /// Sub-operations per shard.
    pub parts: Vec<(usize, StateOp)>,
    /// Shards that granted locks (prepared).
    pub locked: Vec<usize>,
    /// Whether the client has gone silent (malicious crash).
    pub crashed: bool,
}

impl OmniLedgerClient {
    /// Start coordinating `op` over the sharded ledger.
    pub fn new(txid: TxId, map: &ShardMap, op: &StateOp) -> Self {
        OmniLedgerClient {
            txid,
            parts: map.split_op(op),
            locked: Vec::new(),
            crashed: false,
        }
    }

    /// Phase 1: the client asks each input shard to lock. Returns false if
    /// any shard refused (in which case an honest client unlocks).
    pub fn acquire_locks(&mut self, shards: &mut [StateStore]) -> bool {
        for (shard, sub) in &self.parts {
            let r = shards[*shard].execute(&Op::Prepare { txid: self.txid, op: sub.clone() });
            if matches!(r.status, ExecStatus::Committed(_)) {
                self.locked.push(*shard);
            } else {
                return false;
            }
        }
        true
    }

    /// Phase 2 (honest client): commit everywhere.
    pub fn commit(&mut self, shards: &mut [StateStore]) {
        assert!(!self.crashed, "a crashed client sends nothing");
        for shard in &self.locked {
            shards[*shard].execute(&Op::Commit { txid: self.txid });
        }
    }

    /// Phase 2 (honest client, failed prepare): unlock everywhere.
    pub fn unlock(&mut self, shards: &mut [StateStore]) {
        assert!(!self.crashed, "a crashed client sends nothing");
        for shard in self.locked.drain(..) {
            shards[shard].execute(&Op::Abort { txid: self.txid });
        }
    }

    /// The malicious move: pretend to crash after acquiring locks. No
    /// commit, no unlock — and in OmniLedger nobody else may issue them.
    pub fn crash(&mut self) {
        self.crashed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{MultiShardLedger, TxOutcome};
    use ahl_ledger::{smallbank, Value};

    /// Set up Figure 4's scenario: one rich account on shard 0 and one
    /// poor account on shard 1 (found by probing the hash map).
    struct Fig4 {
        shards: Vec<StateStore>,
        map: ShardMap,
        acc1: String,
        acc3: String,
    }

    fn fig4() -> Fig4 {
        let map = ShardMap::new(2);
        let acc1 = (0..50)
            .map(|i| format!("acc{i}"))
            .find(|a| map.shard_of(&smallbank::checking_key(a)) == 0)
            .expect("an account on shard 0");
        let acc3 = (0..50)
            .map(|i| format!("acc{i}"))
            .find(|a| map.shard_of(&smallbank::checking_key(a)) == 1)
            .expect("an account on shard 1");
        let mut shards = vec![StateStore::new(), StateStore::new()];
        shards[0].put(smallbank::checking_key(&acc1), Value::Int(100));
        shards[1].put(smallbank::checking_key(&acc3), Value::Int(5));
        Fig4 { shards, map, acc1, acc3 }
    }

    fn dual_debit(f: &Fig4) -> StateOp {
        StateOp {
            conditions: vec![
                ahl_ledger::Condition::IntAtLeast {
                    key: smallbank::checking_key(&f.acc1),
                    min: 50,
                },
                ahl_ledger::Condition::IntAtLeast {
                    key: smallbank::checking_key(&f.acc3),
                    min: 50,
                },
            ],
            mutations: vec![
                (smallbank::checking_key(&f.acc1), ahl_ledger::Mutation::Add(-50)),
                (smallbank::checking_key(&f.acc3), ahl_ledger::Mutation::Add(-50)),
            ],
        }
    }

    /// Figure 4 / tx1: ⟨acc1 + acc3⟩ → ⟨acc2⟩. RapidChain-style splitting
    /// debits acc1 and fails on acc3 — atomicity violated; acc1 "is
    /// already debited and cannot be rolled back".
    #[test]
    fn rapidchain_violates_atomicity_on_accounts() {
        let mut f = fig4();
        let op = dual_debit(&f);
        let results = rapidchain_execute(&mut f.shards, &f.map, TxId(1), &op);
        let s0_ok = results.iter().find(|(s, _)| *s == 0).expect("shard 0").1;
        let s1_ok = results.iter().find(|(s, _)| *s == 1).expect("shard 1").1;
        assert!(s0_ok, "acc1 debit succeeded");
        assert!(!s1_ok, "acc3 debit failed (insufficient funds)");
        // Atomicity violation: acc1 was debited although the transaction
        // failed overall.
        assert_eq!(f.shards[0].get_int(&smallbank::checking_key(&f.acc1)), 50);
        assert_eq!(f.shards[1].get_int(&smallbank::checking_key(&f.acc3)), 5);
    }

    /// The same transaction through our 2PC protocol aborts atomically.
    #[test]
    fn our_protocol_preserves_atomicity_on_fig4() {
        let f = fig4();
        let mut l = MultiShardLedger::new(2);
        l.genesis(&[
            (smallbank::checking_key(&f.acc1), Value::Int(100)),
            (smallbank::checking_key(&f.acc3), Value::Int(5)),
        ]);
        let op = dual_debit(&f);
        assert_eq!(l.execute(TxId(1), &op), TxOutcome::Aborted);
        assert_eq!(l.get_int(&smallbank::checking_key(&f.acc1)), 100);
        assert_eq!(l.get_int(&smallbank::checking_key(&f.acc3)), 5);
    }

    /// Figure 4's isolation example: tx2 ⟨acc3⟩ → ⟨acc4⟩ interleaves with
    /// tx1's sub-operations and observes acc3's intermediate balance —
    /// in no serial order of {tx1 (failed), tx2} would tx2 see it.
    #[test]
    fn rapidchain_violates_isolation() {
        let map = ShardMap::new(2);
        let acc3 = (0..50)
            .map(|i| format!("x{i}"))
            .find(|a| map.shard_of(&smallbank::checking_key(a)) == 1)
            .expect("account on shard 1");
        let acc4 = (0..50)
            .map(|i| format!("y{i}"))
            .find(|a| map.shard_of(&smallbank::checking_key(a)) == 1)
            .expect("another account on shard 1");
        let mut shards = vec![StateStore::new(), StateStore::new()];
        shards[1].put(smallbank::checking_key(&acc3), Value::Int(60));
        shards[1].put(smallbank::checking_key(&acc4), Value::Int(0));

        // tx1 sub-op op2a (Fig 4): debit acc3 by 50, part of a transaction
        // that fails on another shard.
        let op1b = StateOp {
            conditions: vec![ahl_ledger::Condition::IntAtLeast {
                key: smallbank::checking_key(&acc3),
                min: 50,
            }],
            mutations: vec![(smallbank::checking_key(&acc3), ahl_ledger::Mutation::Add(-50))],
        };
        rapidchain_execute(&mut shards, &map, TxId(1), &op1b);

        // tx2 now sees acc3's partial state (10 instead of 60) and aborts,
        // although tx1 never committed.
        let op2 = smallbank::send_payment(&acc3, &acc4, 60);
        let r = rapidchain_execute(&mut shards, &map, TxId(2), &op2);
        assert!(!r[0].1, "tx2 aborts due to tx1's partial debit");
        assert_eq!(shards[1].get_int(&smallbank::checking_key(&acc3)), 10);
    }

    /// OmniLedger's malicious-client blocking (§6.1): the payee-coordinator
    /// locks the payer's funds and crashes; the funds stay locked forever.
    #[test]
    fn omniledger_malicious_client_blocks_forever() {
        let map = ShardMap::new(2);
        let payer = (0..50)
            .map(|i| format!("p{i}"))
            .find(|a| map.shard_of(&smallbank::checking_key(a)) == 0)
            .expect("payer on shard 0");
        let payee = (0..50)
            .map(|i| format!("q{i}"))
            .find(|a| map.shard_of(&smallbank::checking_key(a)) == 1)
            .expect("payee on shard 1");
        let mut shards = vec![StateStore::new(), StateStore::new()];
        shards[0].put(smallbank::checking_key(&payer), Value::Int(100));
        shards[1].put(smallbank::checking_key(&payee), Value::Int(0));

        let op = smallbank::send_payment(&payer, &payee, 40);
        let mut client = OmniLedgerClient::new(TxId(1), &map, &op);
        assert!(client.acquire_locks(&mut shards));
        // Malicious payee crashes mid-protocol.
        client.crash();

        // The payer's funds are locked "forever": any legitimate spend
        // aborts with a lock conflict, no matter how often retried.
        let spend = smallbank::write_check(&payer, 1);
        for attempt in 0..100u64 {
            let r = shards[0].execute(&Op::Direct { txid: TxId(100 + attempt), op: spend.clone() });
            assert!(
                matches!(
                    r.status,
                    ExecStatus::Aborted(ahl_ledger::AbortReason::LockConflict(_))
                ),
                "funds remain blocked on attempt {attempt}"
            );
        }
    }

    /// Honest-client OmniLedger does work — the problem is purely the
    /// trust placed in the coordinator.
    #[test]
    fn omniledger_honest_client_commits() {
        let map = ShardMap::new(2);
        let mut shards = vec![StateStore::new(), StateStore::new()];
        for (k, v) in smallbank::genesis(6, 100, 0) {
            let s = map.shard_of(&k);
            shards[s].put(k, v);
        }
        let op = smallbank::send_payment("acc0", "acc1", 25);
        let mut client = OmniLedgerClient::new(TxId(1), &map, &op);
        assert!(client.acquire_locks(&mut shards));
        client.commit(&mut shards);
        let total: i64 = (0..6)
            .map(|i| {
                let k = smallbank::checking_key(&format!("acc{i}"));
                shards[map.shard_of(&k)].get_int(&k)
            })
            .sum();
        assert_eq!(total, 600);
    }

    /// The same crash scenario cannot block our protocol: the decision is
    /// taken and delivered by the replicated reference committee, not the
    /// client.
    #[test]
    fn reference_committee_unblocks_where_omniledger_cannot() {
        use crate::coordinator::CoordAction;
        let mut l = MultiShardLedger::new(2);
        l.genesis(&smallbank::genesis(8, 100, 0));
        let op = smallbank::send_payment("acc0", "acc1", 40);
        let parts = l.begin(TxId(1), &op);
        // All shards prepare (locks held)...
        let mut final_action = CoordAction::None;
        for (s, sub) in &parts {
            let a = l.prepare_at(TxId(1), *s, sub);
            if a != CoordAction::None {
                final_action = a;
            }
        }
        // ...the *client* now crashes. The decision was made by R; R's
        // nodes deliver the commit themselves.
        assert!(matches!(final_action, CoordAction::SendCommit(_)));
        l.deliver(TxId(1), &final_action);
        assert_eq!(l.pending_total(), 0);
        for i in 0..8 {
            assert!(!l.is_locked(&smallbank::checking_key(&format!("acc{i}"))));
        }
    }
}
