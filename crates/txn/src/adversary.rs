//! Malicious 2PC participants (paper §6.1/§6.2).
//!
//! The paper's central transaction-safety claim is that cross-shard
//! atomicity survives a *malicious coordinator* because the coordinator
//! role is played by the BFT-replicated reference committee R, while
//! clients merely relay messages. This module makes that claim
//! executable: a [`MaliciousRelay`] drives the step-wise
//! [`MultiShardLedger`] API with the attacks a Byzantine client can
//! actually attempt —
//!
//! * **lying prepare votes** ([`RelayAttack::LieVotes`]) — claim OK for a
//!   shard that refused to prepare (or NotOK for one that prepared);
//!   masked because R only accepts votes quorum-certified by the shard
//!   committee ([`MultiShardLedger::feed_vote_checked`]).
//! * **coordinator equivocation** ([`RelayAttack::EquivocateDecision`]) —
//!   claim Commit toward one shard and Abort toward another; masked
//!   because decisions carry R's certificate and shards validate before
//!   applying ([`MultiShardLedger::deliver_checked`]).
//! * **selective / withheld delivery** ([`RelayAttack::SelectiveDelivery`])
//!   — relay the decision to some shards and vanish; masked because the
//!   decision is *recorded on R's chain*, so anyone (here the
//!   [`recovery_sweep`]) can complete delivery, and R can abort
//!   transactions stuck before a decision — the OmniLedger-blocking fix.
//! * **replay storms** ([`RelayAttack::ReplayStorm`]) — re-feed votes and
//!   decisions; masked by the Figure 6 guards (vote sets, terminal
//!   states, `resolved` bookkeeping at shards).
//!
//! The tests at the bottom run every attack over randomized schedules and
//! assert the full invariant battery — atomicity, conservation, lock
//! release, single decision — plus the *negative control*: with unchecked
//! client-driven decisions (the §6.1 strawman), equivocation provably
//! breaks atomicity, which is what proves the checks are load-bearing.

use ahl_ledger::{Op, StateOp, TxId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coordinator::{CoordAction, CoordEvent, CoordState};
use crate::protocol::MultiShardLedger;

/// The attack a malicious relay client mounts on the 2PC message flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelayAttack {
    /// Invert every prepare vote it relays to R.
    LieVotes,
    /// Claim the opposite decision toward the shards, then (sometimes)
    /// deliver the genuine one.
    EquivocateDecision,
    /// Deliver the genuine decision only sometimes, never to everyone.
    SelectiveDelivery,
    /// Re-feed every vote and re-deliver every decision several times.
    ReplayStorm,
}

impl RelayAttack {
    /// All attacks, in matrix order.
    pub const ALL: [RelayAttack; 4] = [
        RelayAttack::LieVotes,
        RelayAttack::EquivocateDecision,
        RelayAttack::SelectiveDelivery,
        RelayAttack::ReplayStorm,
    ];

    /// Display name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            RelayAttack::LieVotes => "lie-votes",
            RelayAttack::EquivocateDecision => "equivocate-decision",
            RelayAttack::SelectiveDelivery => "selective-delivery",
            RelayAttack::ReplayStorm => "replay-storm",
        }
    }
}

/// A Byzantine client driving cross-shard transactions through the
/// checked (certificate-modelling) protocol surface.
pub struct MaliciousRelay {
    /// The scripted misbehaviour.
    pub attack: RelayAttack,
    rng: SmallRng,
    /// Every transaction this relay started (for the recovery sweep).
    pub started: Vec<TxId>,
}

impl MaliciousRelay {
    /// A relay mounting `attack`, deterministic in `seed`.
    pub fn new(attack: RelayAttack, seed: u64) -> Self {
        MaliciousRelay { attack, rng: SmallRng::seed_from_u64(seed), started: Vec::new() }
    }

    /// Drive one transaction as far as the attack lets it get. Honest
    /// single-shard transactions take the fast path; cross-shard ones go
    /// through Begin → (claimed) votes → (claimed) decision delivery.
    pub fn drive(&mut self, ledger: &mut MultiShardLedger, txid: TxId, op: &StateOp) {
        if ledger.map.shards_touched(op) <= 1 {
            let _ = ledger.execute(txid, op);
            return;
        }
        self.started.push(txid);
        let parts = ledger.begin(txid, op);
        let mut decision: Option<CoordAction> = None;
        for (shard, sub) in &parts {
            let prepared = ledger.shards[*shard]
                .execute(&Op::Prepare { txid, op: sub.clone() })
                .status
                .is_committed();
            let claim = match self.attack {
                RelayAttack::LieVotes => !prepared, // the lie
                _ => prepared,
            };
            let repeats = if self.attack == RelayAttack::ReplayStorm { 3 } else { 1 };
            for _ in 0..repeats {
                match ledger.feed_vote_checked(txid, *shard, claim) {
                    CoordAction::None => {}
                    action => decision = Some(action),
                }
            }
            if matches!(decision, Some(CoordAction::SendAbort(_))) {
                break;
            }
        }
        let Some(genuine) = decision else {
            return; // no decision yet (lying votes refused, or stuck)
        };
        match self.attack {
            RelayAttack::EquivocateDecision => {
                // Forge the opposite decision first: it must bounce off
                // the certificate check at every shard.
                let forged = match &genuine {
                    CoordAction::SendCommit(s) => CoordAction::SendAbort(s.clone()),
                    CoordAction::SendAbort(s) => CoordAction::SendCommit(s.clone()),
                    other => other.clone(),
                };
                assert!(
                    !ledger.deliver_checked(txid, &forged),
                    "a forged decision must be refused"
                );
                if self.rng.gen_bool(0.5) {
                    assert!(ledger.deliver_checked(txid, &genuine));
                }
            }
            RelayAttack::SelectiveDelivery => {
                // Deliver sometimes, vanish otherwise; the sweep finishes
                // the job from R's records.
                if self.rng.gen_bool(0.3) {
                    assert!(ledger.deliver_checked(txid, &genuine));
                }
            }
            RelayAttack::ReplayStorm => {
                for _ in 0..3 {
                    assert!(ledger.deliver_checked(txid, &genuine));
                }
            }
            RelayAttack::LieVotes => {
                assert!(ledger.deliver_checked(txid, &genuine));
            }
        }
    }
}

/// The honest completion pass the replicated coordinator enables: every
/// decided transaction's outcome is on R's chain, so *any* relay can
/// finish delivering it, and R aborts transactions stuck before a
/// decision (the fix for OmniLedger's malicious-coordinator blocking).
pub fn recovery_sweep(ledger: &mut MultiShardLedger, txs: &[TxId]) {
    for &txid in txs {
        let claim = match ledger.state_of(txid) {
            Some(CoordState::Committed) => CoordAction::SendCommit(vec![]),
            Some(CoordState::Aborted) => CoordAction::SendAbort(vec![]),
            Some(_) => {
                // Stuck before a decision: R times the transaction out
                // (the liveness duty of the replicated coordinator).
                ledger.coordinator.apply(txid, CoordEvent::ClientAbort);
                CoordAction::SendAbort(vec![])
            }
            None => continue,
        };
        // The checked delivery resolves the real shard set from R's
        // records; the empty claim list is deliberately untrusted.
        assert!(ledger.deliver_checked(txid, &claim), "sweep delivers recorded decisions");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_ledger::smallbank;

    const ACCOUNTS: usize = 10;

    fn fresh_ledger() -> (MultiShardLedger, Vec<String>, i64) {
        let mut l = MultiShardLedger::new(4);
        l.genesis(&smallbank::genesis(ACCOUNTS, 1_000, 0));
        let keys: Vec<String> = (0..ACCOUNTS)
            .map(|i| smallbank::checking_key(&format!("acc{i}")))
            .collect();
        let initial = l.total_of(&keys);
        (l, keys, initial)
    }

    /// Run `txs` random transfers through a malicious relay, sweep, and
    /// assert the full safety battery.
    fn run_attack(attack: RelayAttack, seed: u64, txs: u64) -> MultiShardLedger {
        let (mut l, keys, initial) = fresh_ledger();
        let mut relay = MaliciousRelay::new(attack, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA77A);
        for t in 1..=txs {
            let from = format!("acc{}", rng.gen_range(0..ACCOUNTS));
            let to = format!("acc{}", rng.gen_range(0..ACCOUNTS));
            let amt = rng.gen_range(1..120);
            relay.drive(&mut l, TxId(t), &smallbank::send_payment(&from, &to, amt));
        }
        let started = relay.started.clone();
        recovery_sweep(&mut l, &started);
        // Atomicity + conservation + isolation cleanup, under attack:
        assert_eq!(l.total_of(&keys), initial, "{}: funds conserved", attack.name());
        assert_eq!(l.pending_total(), 0, "{}: no dangling prepares", attack.name());
        for k in &keys {
            assert!(!l.is_locked(k), "{}: lock leaked on {k}", attack.name());
        }
        l
    }

    #[test]
    fn lying_votes_are_refused_and_mask_nothing() {
        let l = run_attack(RelayAttack::LieVotes, 7, 60);
        assert!(l.forged_votes > 0, "the lie must actually have been attempted");
        // A lying relay cannot decide anything: every cross-shard tx it
        // drove was timed out and aborted by R.
        assert_eq!(l.forged_decisions, 0);
    }

    #[test]
    fn decision_equivocation_is_refused() {
        let l = run_attack(RelayAttack::EquivocateDecision, 11, 60);
        assert!(l.forged_decisions > 0, "equivocation must have been attempted");
    }

    #[test]
    fn selective_delivery_completes_via_sweep() {
        let l = run_attack(RelayAttack::SelectiveDelivery, 13, 60);
        assert_eq!(l.forged_decisions, 0);
        assert_eq!(l.forged_votes, 0);
    }

    #[test]
    fn replay_storms_are_idempotent() {
        let _ = run_attack(RelayAttack::ReplayStorm, 17, 60);
    }

    #[test]
    fn every_attack_over_many_seeds() {
        for attack in RelayAttack::ALL {
            for seed in [1, 2, 3] {
                let _ = run_attack(attack, seed, 30);
            }
        }
    }

    /// Negative control (the §6.1 strawman): when shards apply whatever
    /// decision a client relays — no certificate check against R —
    /// coordinator equivocation really does break atomicity. This is the
    /// failure mode OmniLedger-style client-driven 2PC admits and the
    /// reference committee exists to prevent.
    #[test]
    fn unchecked_client_decisions_break_atomicity() {
        let (mut l, keys, initial) = fresh_ledger();
        let map = l.map;
        let (a, b) = (0..ACCOUNTS)
            .map(|i| format!("acc{i}"))
            .find_map(|a| {
                (1..ACCOUNTS).map(|j| format!("acc{j}")).find_map(|b| {
                    (map.shard_of(&smallbank::checking_key(&a))
                        != map.shard_of(&smallbank::checking_key(&b)))
                    .then(|| (a.clone(), b.clone()))
                })
            })
            .expect("cross-shard pair exists");
        let txid = TxId(99);
        let op = smallbank::send_payment(&a, &b, 100);
        let parts = l.begin(txid, &op);
        for (shard, sub) in &parts {
            assert!(l.shards[*shard]
                .execute(&Op::Prepare { txid, op: sub.clone() })
                .status
                .is_committed());
        }
        // The malicious client tells one shard "commit" and the other
        // "abort" — and the unchecked strawman shards obey.
        let (s0, _) = parts[0];
        let (s1, _) = parts[1];
        l.deliver(txid, &CoordAction::SendCommit(vec![s0]));
        l.deliver(txid, &CoordAction::SendAbort(vec![s1]));
        assert_ne!(
            l.total_of(&keys),
            initial,
            "the strawman must lose money — this is the attack the \
             reference committee masks"
        );
    }
}
