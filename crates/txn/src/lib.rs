//! # ahl-txn — distributed transactions for sharded blockchains
//!
//! The paper's §6: safety (atomicity + isolation via 2PC/2PL) and liveness
//! (no malicious-coordinator blocking, via a BFT reference committee) for
//! *general* — non-UTXO — transactions.
//!
//! * [`ShardMap`] — hash-based key placement and transaction splitting.
//! * [`Coordinator`] — the reference committee's replicated 2PC state
//!   machine (Figure 6).
//! * [`MultiShardLedger`] — the Figure 5 protocol over in-process shards,
//!   with a step-wise API for adversarial interleavings.
//! * [`baselines`] — executable demonstrations of the §6.1 failure modes:
//!   RapidChain's atomicity/isolation violations on the account model and
//!   OmniLedger's indefinite blocking under a malicious client coordinator.
//! * [`crossshard`] — Appendix B: the probability that a d-argument
//!   transaction is cross-shard.
//! * [`adversary`] — malicious 2PC participants (lying votes, decision
//!   equivocation, selective delivery, replay storms) and the checked
//!   protocol surface that shows the BFT reference committee masks them.

#![warn(missing_docs)]

pub mod adversary;
pub mod baselines;
pub mod coordinator;
pub mod crossshard;
pub mod library;
pub mod protocol;
pub mod shardmap;

pub use adversary::{recovery_sweep, MaliciousRelay, RelayAttack};
pub use coordinator::{CoordAction, CoordEvent, CoordState, Coordinator};
pub use library::{smallbank_chaincode, ChaincodeError, ChaincodeFn, ShardedChaincode, TxHandle};
pub use protocol::{MultiShardLedger, TxOutcome};
pub use shardmap::ShardMap;
