//! The sharded-application library the paper proposes as an extension
//! (§6.4): "a more useful extension is to add programming language
//! features that, given a single-shard chaincode implementation,
//! automatically analyze the functions and transform them to support
//! multi-shards execution" — plus "a client library that hides the
//! details of the coordination protocols, so that the users only see
//! single-shard transactions."
//!
//! [`ShardedChaincode`] is that transformation: it takes ordinary
//! single-shard chaincode functions (anything producing a [`StateOp`]) and
//! derives the prepare/commit/abort split, lock set and shard routing
//! automatically. [`TxHandle`] is the client-side facade: `submit` returns
//! a handle whose `wait` hides 2PC entirely.

use ahl_ledger::{StateOp, TxId};

use crate::protocol::{MultiShardLedger, TxOutcome};
use crate::shardmap::ShardMap;

/// A chaincode compile function: arguments to guarded mutation set.
pub type CompileFn = Box<dyn Fn(&[&str]) -> Result<StateOp, String> + Send + Sync>;

/// A registered chaincode function: name + a compiler from arguments to a
/// guarded mutation set. This is the "single-shard implementation" the
/// developer writes; the library derives everything sharding needs.
pub struct ChaincodeFn {
    /// Function name (Hyperledger-style invocation key).
    pub name: &'static str,
    compile: CompileFn,
}

impl ChaincodeFn {
    /// Wrap a compile function.
    pub fn new(
        name: &'static str,
        compile: impl Fn(&[&str]) -> Result<StateOp, String> + Send + Sync + 'static,
    ) -> Self {
        ChaincodeFn { name, compile: Box::new(compile) }
    }
}

/// Static analysis of one invocation: what the library derives from the
/// single-shard function before execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvocationPlan {
    /// The 2PL lock set (every touched key).
    pub lock_keys: Vec<String>,
    /// Shards involved, ascending.
    pub shards: Vec<usize>,
    /// Whether 2PC is required (more than one shard).
    pub needs_coordination: bool,
}

/// A deployed sharded chaincode: registered functions + shard map.
pub struct ShardedChaincode {
    functions: Vec<ChaincodeFn>,
    map: ShardMap,
}

/// Errors surfaced by the library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaincodeError {
    /// No function registered under that name.
    UnknownFunction(String),
    /// The function rejected its arguments.
    BadArguments(String),
}

impl ShardedChaincode {
    /// Deploy over `k` shards.
    pub fn new(k: usize) -> Self {
        ShardedChaincode { functions: Vec::new(), map: ShardMap::new(k) }
    }

    /// Register a single-shard chaincode function.
    pub fn register(&mut self, f: ChaincodeFn) -> &mut Self {
        self.functions.push(f);
        self
    }

    /// Registered function names.
    pub fn functions(&self) -> Vec<&'static str> {
        self.functions.iter().map(|f| f.name).collect()
    }

    fn compile(&self, function: &str, args: &[&str]) -> Result<StateOp, ChaincodeError> {
        let f = self
            .functions
            .iter()
            .find(|f| f.name == function)
            .ok_or_else(|| ChaincodeError::UnknownFunction(function.to_string()))?;
        (f.compile)(args).map_err(ChaincodeError::BadArguments)
    }

    /// Analyze an invocation without executing it: derive the lock set and
    /// shard routing (the paper's "automatically analyze the functions").
    pub fn analyze(&self, function: &str, args: &[&str]) -> Result<InvocationPlan, ChaincodeError> {
        let op = self.compile(function, args)?;
        let shards: Vec<usize> = self.map.split_op(&op).into_iter().map(|(s, _)| s).collect();
        Ok(InvocationPlan {
            lock_keys: op.touched_keys(),
            needs_coordination: shards.len() > 1,
            shards,
        })
    }

    /// Invoke a function against the sharded ledger. Single-shard
    /// invocations take the fast path; cross-shard ones run the full 2PC —
    /// the caller cannot tell the difference (the paper's client library).
    pub fn invoke(
        &self,
        ledger: &mut MultiShardLedger,
        txid: TxId,
        function: &str,
        args: &[&str],
    ) -> Result<TxHandle, ChaincodeError> {
        let op = self.compile(function, args)?;
        let outcome = ledger.execute(txid, &op);
        Ok(TxHandle { txid, outcome })
    }
}

/// Client-side handle: hides whether the transaction was coordinated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxHandle {
    /// The transaction id.
    pub txid: TxId,
    outcome: TxOutcome,
}

impl TxHandle {
    /// Wait for the outcome (already resolved in the in-process ledger;
    /// mirrors the asynchronous API of the distributed system).
    pub fn wait(&self) -> TxOutcome {
        self.outcome.clone()
    }

    /// Convenience: did the transaction commit?
    pub fn committed(&self) -> bool {
        self.outcome == TxOutcome::Committed
    }
}

/// Build the SmallBank chaincode as the paper's §6.3 example application,
/// expressed through the library (the manual refactor it replaces).
pub fn smallbank_chaincode(k: usize) -> ShardedChaincode {
    use ahl_ledger::smallbank as sb;
    let mut cc = ShardedChaincode::new(k);
    cc.register(ChaincodeFn::new("sendPayment", |args| {
        let [from, to, amt] = args else {
            return Err("sendPayment(from, to, amount)".into());
        };
        let amt: i64 = amt.parse().map_err(|_| "amount must be an integer".to_string())?;
        if amt <= 0 {
            return Err("amount must be positive".into());
        }
        Ok(sb::send_payment(from, to, amt))
    }));
    cc.register(ChaincodeFn::new("depositChecking", |args| {
        let [acc, amt] = args else {
            return Err("depositChecking(acc, amount)".into());
        };
        let amt: i64 = amt.parse().map_err(|_| "amount must be an integer".to_string())?;
        Ok(sb::deposit_checking(acc, amt))
    }));
    cc.register(ChaincodeFn::new("transactSavings", |args| {
        let [acc, amt] = args else {
            return Err("transactSavings(acc, amount)".into());
        };
        let amt: i64 = amt.parse().map_err(|_| "amount must be an integer".to_string())?;
        Ok(sb::transact_savings(acc, amt))
    }));
    cc.register(ChaincodeFn::new("writeCheck", |args| {
        let [acc, amt] = args else {
            return Err("writeCheck(acc, amount)".into());
        };
        let amt: i64 = amt.parse().map_err(|_| "amount must be an integer".to_string())?;
        Ok(sb::write_check(acc, amt))
    }));
    cc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_ledger::smallbank;

    fn setup() -> (ShardedChaincode, MultiShardLedger) {
        let cc = smallbank_chaincode(4);
        let mut l = MultiShardLedger::new(4);
        l.genesis(&smallbank::genesis(100, 1000, 0));
        (cc, l)
    }

    #[test]
    fn registered_functions() {
        let cc = smallbank_chaincode(4);
        assert_eq!(
            cc.functions(),
            vec!["sendPayment", "depositChecking", "transactSavings", "writeCheck"]
        );
    }

    #[test]
    fn analyze_derives_locks_and_routing() {
        let cc = smallbank_chaincode(4);
        let plan = cc.analyze("sendPayment", &["acc0", "acc1", "10"]).expect("valid");
        assert_eq!(plan.lock_keys.len(), 2);
        assert!(!plan.shards.is_empty());
        // Single-account functions never need coordination.
        let plan = cc.analyze("depositChecking", &["acc0", "10"]).expect("valid");
        assert!(!plan.needs_coordination);
        assert_eq!(plan.shards.len(), 1);
    }

    #[test]
    fn invoke_hides_coordination() {
        let (cc, mut l) = setup();
        let h = cc
            .invoke(&mut l, TxId(1), "sendPayment", &["acc0", "acc1", "100"])
            .expect("valid invocation");
        assert!(h.committed());
        assert_eq!(l.get_int(&smallbank::checking_key("acc0")), 900);
        assert_eq!(l.get_int(&smallbank::checking_key("acc1")), 1100);
    }

    #[test]
    fn overdraft_aborts_through_library() {
        let (cc, mut l) = setup();
        let h = cc
            .invoke(&mut l, TxId(1), "sendPayment", &["acc0", "acc1", "5000"])
            .expect("valid invocation");
        assert!(!h.committed());
        assert_eq!(l.get_int(&smallbank::checking_key("acc0")), 1000);
    }

    #[test]
    fn unknown_function_rejected() {
        let (cc, mut l) = setup();
        let err = cc.invoke(&mut l, TxId(1), "mintMoney", &[]).unwrap_err();
        assert_eq!(err, ChaincodeError::UnknownFunction("mintMoney".into()));
    }

    #[test]
    fn bad_arguments_rejected() {
        let (cc, mut l) = setup();
        assert!(matches!(
            cc.invoke(&mut l, TxId(1), "sendPayment", &["acc0", "acc1"]),
            Err(ChaincodeError::BadArguments(_))
        ));
        assert!(matches!(
            cc.invoke(&mut l, TxId(2), "sendPayment", &["acc0", "acc1", "-5"]),
            Err(ChaincodeError::BadArguments(_))
        ));
        assert!(matches!(
            cc.invoke(&mut l, TxId(3), "writeCheck", &["acc0", "ten"]),
            Err(ChaincodeError::BadArguments(_))
        ));
    }

    #[test]
    fn conservation_through_library() {
        let (cc, mut l) = setup();
        for i in 0..200u64 {
            let from = format!("acc{}", i % 100);
            let to = format!("acc{}", (i * 3 + 1) % 100);
            let _ = cc.invoke(&mut l, TxId(i), "sendPayment", &[&from, &to, "7"]);
        }
        let keys: Vec<String> = (0..100)
            .map(|i| smallbank::checking_key(&format!("acc{i}")))
            .collect();
        assert_eq!(l.total_of(&keys), 100 * 1000);
    }
}
