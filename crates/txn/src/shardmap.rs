//! Key-to-shard mapping and transaction splitting.
//!
//! Keys map to shards by cryptographic hash (Appendix B assumes arguments
//! are "mapped to shards uniformly at random, based on the randomness
//! provided by a cryptographic hash function"). A cross-shard transaction
//! splits into per-shard sub-operations via [`ShardMap::split_op`];
//! lock-marker keys
//! (`L_` prefix) colocate with their underlying key so a shard's 2PL state
//! stays local.

use ahl_crypto::sha256;
use ahl_ledger::{StateOp, LOCK_PREFIX};

/// Maps state keys to `k` shards by hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Number of shards.
    pub k: usize,
}

impl ShardMap {
    /// Create a map over `k` shards.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "at least one shard");
        ShardMap { k }
    }

    /// The shard owning `key`. Lock markers live with their base key.
    pub fn shard_of(&self, key: &str) -> usize {
        let base = key.strip_prefix(LOCK_PREFIX).unwrap_or(key);
        (sha256(base.as_bytes()).prefix_u64() % self.k as u64) as usize
    }

    /// Split `op` into per-shard sub-operations; returns only shards that
    /// the operation actually touches, in ascending shard order.
    pub fn split_op(&self, op: &StateOp) -> Vec<(usize, StateOp)> {
        (0..self.k)
            .filter_map(|shard| {
                let sub = op.restrict_to(|key| self.shard_of(key) == shard);
                if sub.conditions.is_empty() && sub.mutations.is_empty() {
                    None
                } else {
                    Some((shard, sub))
                }
            })
            .collect()
    }

    /// Number of distinct shards `op` touches.
    pub fn shards_touched(&self, op: &StateOp) -> usize {
        self.split_op(op).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_ledger::{lock_key, smallbank, Condition, Mutation};

    #[test]
    fn deterministic_and_in_range() {
        let map = ShardMap::new(7);
        for i in 0..100 {
            let key = format!("acc{i}");
            let s = map.shard_of(&key);
            assert!(s < 7);
            assert_eq!(s, map.shard_of(&key));
        }
    }

    #[test]
    fn lock_keys_colocate() {
        let map = ShardMap::new(5);
        for i in 0..50 {
            let key = format!("ck_acc{i}");
            assert_eq!(map.shard_of(&key), map.shard_of(&lock_key(&key)));
        }
    }

    #[test]
    fn distribution_roughly_uniform() {
        let map = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[map.shard_of(&format!("key{i}"))] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn split_covers_whole_op() {
        let map = ShardMap::new(8);
        let op = smallbank::send_payment("alice", "bob", 10);
        let parts = map.split_op(&op);
        let total_conditions: usize = parts.iter().map(|(_, p)| p.conditions.len()).sum();
        let total_mutations: usize = parts.iter().map(|(_, p)| p.mutations.len()).sum();
        assert_eq!(total_conditions, op.conditions.len());
        assert_eq!(total_mutations, op.mutations.len());
    }

    #[test]
    fn single_shard_op_not_split() {
        let map = ShardMap::new(4);
        let op = StateOp {
            conditions: vec![Condition::Exists("x".into())],
            mutations: vec![("x".into(), Mutation::Add(1))],
        };
        assert_eq!(map.shards_touched(&op), 1);
    }

    #[test]
    fn empty_op_touches_nothing() {
        let map = ShardMap::new(4);
        assert_eq!(map.shards_touched(&StateOp::default()), 0);
    }
}
