//! The reference committee's 2PC state machine (paper §6.2, Figure 6).
//!
//! The committee R replicates this deterministic machine through BFT
//! consensus, so the *coordinator* role of classic 2PC is played by a
//! highly available replicated service rather than a possibly-malicious
//! client — the fix for OmniLedger's indefinite-blocking problem.
//!
//! States: `Started → Preparing → {Committed, Aborted}` with a counter `c`
//! of transaction committees whose PrepareOK is still outstanding.

use std::collections::{HashMap, HashSet};

use ahl_ledger::TxId;

/// Coordinator state for one transaction (Figure 6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordState {
    /// BeginTx executed; PrepareTx being sent; no votes yet.
    Started,
    /// Some PrepareOKs received; `remaining` committees outstanding.
    Preparing {
        /// Outstanding PrepareOK count (the paper's counter `c`).
        remaining: usize,
    },
    /// All committees voted PrepareOK: commit phase.
    Committed,
    /// Some committee voted PrepareNotOK (or the client aborted).
    Aborted,
}

/// An input to the replicated state machine (already quorum-validated by
/// the consensus layer: a vote is only delivered once a quorum of matching
/// messages from the shard's committee arrived).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordEvent {
    /// Client's BeginTx naming the involved shards.
    Begin {
        /// The transaction committees (shard ids) that must prepare.
        shards: Vec<usize>,
    },
    /// A shard's quorum-certified PrepareOK.
    PrepareOk {
        /// Voting shard.
        shard: usize,
    },
    /// A shard's quorum-certified PrepareNotOK.
    PrepareNotOk {
        /// Voting shard.
        shard: usize,
    },
    /// Explicit client abort (only honoured before commit).
    ClientAbort,
}

/// The action the committee takes after a transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordAction {
    /// Send PrepareTx to the listed shards.
    SendPrepare(Vec<usize>),
    /// Send CommitTx to the listed shards.
    SendCommit(Vec<usize>),
    /// Send AbortTx to the listed shards.
    SendAbort(Vec<usize>),
    /// No outward action (duplicate/ignored event).
    None,
}

#[derive(Clone, Debug)]
struct Entry {
    state: CoordState,
    shards: Vec<usize>,
    voted: HashSet<usize>,
}

/// The replicated coordinator: Figure 6 per transaction.
#[derive(Default, Debug, Clone)]
pub struct Coordinator {
    txs: HashMap<TxId, Entry>,
}

impl Coordinator {
    /// Empty coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of `txid`, if known.
    pub fn state(&self, txid: TxId) -> Option<&CoordState> {
        self.txs.get(&txid).map(|e| &e.state)
    }

    /// The shard set `txid` registered with Begin, if known. Decisions
    /// are delivered to exactly this recorded set — never to a shard
    /// list claimed by an (untrusted) relay.
    pub fn shards_of(&self, txid: TxId) -> Option<&[usize]> {
        self.txs.get(&txid).map(|e| e.shards.as_slice())
    }

    /// Number of transactions tracked.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True when no transactions are tracked.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Drop terminal transactions older than needed (state is on the
    /// blockchain; the in-memory map can forget resolved entries).
    pub fn prune_terminal(&mut self) {
        self.txs.retain(|_, e| {
            !matches!(e.state, CoordState::Committed | CoordState::Aborted)
        });
    }

    /// Apply one event; returns the outward action. Deterministic: every
    /// honest replica of R applying the same event sequence produces the
    /// same actions.
    pub fn apply(&mut self, txid: TxId, event: CoordEvent) -> CoordAction {
        let _prof = ahl_telemetry::Profiler::span("txn.coordinator");
        match event {
            CoordEvent::Begin { shards } => {
                if self.txs.contains_key(&txid) || shards.is_empty() {
                    return CoordAction::None;
                }
                let entry = Entry {
                    state: CoordState::Started,
                    shards: shards.clone(),
                    voted: HashSet::new(),
                };
                self.txs.insert(txid, entry);
                CoordAction::SendPrepare(shards)
            }
            CoordEvent::PrepareOk { shard } => {
                let Some(entry) = self.txs.get_mut(&txid) else {
                    return CoordAction::None;
                };
                // Votes arriving after the decision must be ignored
                // *before* any bookkeeping: a late vote must not mutate
                // the entry (the decision is already on the chain).
                if matches!(entry.state, CoordState::Committed | CoordState::Aborted) {
                    return CoordAction::None;
                }
                // A replayed PrepareOK must not double-decrement `c`:
                // `voted` is a set, so the second insert is refused.
                if !entry.shards.contains(&shard) || !entry.voted.insert(shard) {
                    return CoordAction::None; // unknown shard or duplicate
                }
                let remaining = entry.shards.len() - entry.voted.len();
                if remaining == 0 {
                    entry.state = CoordState::Committed;
                    CoordAction::SendCommit(entry.shards.clone())
                } else {
                    entry.state = CoordState::Preparing { remaining };
                    CoordAction::None
                }
            }
            CoordEvent::PrepareNotOk { shard } => {
                let Some(entry) = self.txs.get_mut(&txid) else {
                    return CoordAction::None;
                };
                if matches!(entry.state, CoordState::Committed | CoordState::Aborted) {
                    return CoordAction::None; // late vote after the decision
                }
                if !entry.shards.contains(&shard) {
                    return CoordAction::None;
                }
                entry.state = CoordState::Aborted;
                CoordAction::SendAbort(entry.shards.clone())
            }
            CoordEvent::ClientAbort => {
                let Some(entry) = self.txs.get_mut(&txid) else {
                    return CoordAction::None;
                };
                match entry.state {
                    CoordState::Started | CoordState::Preparing { .. } => {
                        entry.state = CoordState::Aborted;
                        CoordAction::SendAbort(entry.shards.clone())
                    }
                    // Cannot abort a committed transaction.
                    CoordState::Committed | CoordState::Aborted => CoordAction::None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TX: TxId = TxId(7);

    #[test]
    fn commit_path() {
        let mut c = Coordinator::new();
        let a = c.apply(TX, CoordEvent::Begin { shards: vec![0, 1, 2] });
        assert_eq!(a, CoordAction::SendPrepare(vec![0, 1, 2]));
        assert_eq!(c.state(TX), Some(&CoordState::Started));

        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 0 }), CoordAction::None);
        assert_eq!(c.state(TX), Some(&CoordState::Preparing { remaining: 2 }));
        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 1 }), CoordAction::None);
        let done = c.apply(TX, CoordEvent::PrepareOk { shard: 2 });
        assert_eq!(done, CoordAction::SendCommit(vec![0, 1, 2]));
        assert_eq!(c.state(TX), Some(&CoordState::Committed));
    }

    #[test]
    fn abort_path() {
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0, 1] });
        c.apply(TX, CoordEvent::PrepareOk { shard: 0 });
        let a = c.apply(TX, CoordEvent::PrepareNotOk { shard: 1 });
        assert_eq!(a, CoordAction::SendAbort(vec![0, 1]));
        assert_eq!(c.state(TX), Some(&CoordState::Aborted));
        // Late OK changes nothing.
        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 1 }), CoordAction::None);
        assert_eq!(c.state(TX), Some(&CoordState::Aborted));
    }

    #[test]
    fn duplicate_votes_ignored() {
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0, 1] });
        c.apply(TX, CoordEvent::PrepareOk { shard: 0 });
        // A Byzantine shard member replaying OK must not drive c to zero.
        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 0 }), CoordAction::None);
        assert_eq!(c.state(TX), Some(&CoordState::Preparing { remaining: 1 }));
    }

    #[test]
    fn replayed_ok_never_double_decrements() {
        // Three shards; shard 0's vote is replayed many times. The counter
        // must stay at `remaining = 2` — a double decrement would commit
        // after shard 1's vote with shard 2 never having prepared.
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0, 1, 2] });
        for _ in 0..5 {
            assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 0 }), CoordAction::None);
        }
        assert_eq!(c.state(TX), Some(&CoordState::Preparing { remaining: 2 }));
        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 1 }), CoordAction::None);
        assert_eq!(c.state(TX), Some(&CoordState::Preparing { remaining: 1 }));
        // Only the genuinely missing vote completes the commit.
        assert_eq!(
            c.apply(TX, CoordEvent::PrepareOk { shard: 2 }),
            CoordAction::SendCommit(vec![0, 1, 2])
        );
    }

    #[test]
    fn votes_after_committed_ignored() {
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0, 1] });
        c.apply(TX, CoordEvent::PrepareOk { shard: 0 });
        assert_eq!(
            c.apply(TX, CoordEvent::PrepareOk { shard: 1 }),
            CoordAction::SendCommit(vec![0, 1])
        );
        // Late/replayed votes of either kind change nothing — in
        // particular a late NotOK must never flip Committed to Aborted,
        // and no second SendCommit may be emitted.
        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 0 }), CoordAction::None);
        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 1 }), CoordAction::None);
        assert_eq!(c.apply(TX, CoordEvent::PrepareNotOk { shard: 0 }), CoordAction::None);
        assert_eq!(c.state(TX), Some(&CoordState::Committed));
    }

    #[test]
    fn votes_after_aborted_ignored() {
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0, 1, 2] });
        assert_eq!(
            c.apply(TX, CoordEvent::PrepareNotOk { shard: 1 }),
            CoordAction::SendAbort(vec![0, 1, 2])
        );
        // Late OKs — including a full quorum of them — must not resurrect
        // the transaction or emit a commit.
        for shard in [0, 1, 2] {
            assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard }), CoordAction::None);
        }
        // Nor may a replayed NotOK emit a second SendAbort.
        assert_eq!(c.apply(TX, CoordEvent::PrepareNotOk { shard: 2 }), CoordAction::None);
        assert_eq!(c.state(TX), Some(&CoordState::Aborted));
    }

    #[test]
    fn unknown_shard_votes_ignored() {
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0, 1] });
        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 9 }), CoordAction::None);
        assert_eq!(c.state(TX), Some(&CoordState::Started));
    }

    #[test]
    fn votes_before_begin_ignored() {
        let mut c = Coordinator::new();
        assert_eq!(c.apply(TX, CoordEvent::PrepareOk { shard: 0 }), CoordAction::None);
        assert_eq!(c.state(TX), None);
    }

    #[test]
    fn double_begin_ignored() {
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0] });
        assert_eq!(
            c.apply(TX, CoordEvent::Begin { shards: vec![0, 1] }),
            CoordAction::None
        );
    }

    #[test]
    fn client_abort_before_decision() {
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0, 1] });
        c.apply(TX, CoordEvent::PrepareOk { shard: 0 });
        assert_eq!(c.apply(TX, CoordEvent::ClientAbort), CoordAction::SendAbort(vec![0, 1]));
    }

    #[test]
    fn client_cannot_abort_committed() {
        let mut c = Coordinator::new();
        c.apply(TX, CoordEvent::Begin { shards: vec![0] });
        c.apply(TX, CoordEvent::PrepareOk { shard: 0 });
        assert_eq!(c.state(TX), Some(&CoordState::Committed));
        assert_eq!(c.apply(TX, CoordEvent::ClientAbort), CoordAction::None);
        assert_eq!(c.state(TX), Some(&CoordState::Committed));
    }

    #[test]
    fn prune_keeps_live_txs() {
        let mut c = Coordinator::new();
        c.apply(TxId(1), CoordEvent::Begin { shards: vec![0] });
        c.apply(TxId(1), CoordEvent::PrepareOk { shard: 0 });
        c.apply(TxId(2), CoordEvent::Begin { shards: vec![0, 1] });
        c.prune_terminal();
        assert_eq!(c.len(), 1);
        assert_eq!(c.state(TxId(2)), Some(&CoordState::Started));
    }

    proptest::proptest! {
        /// Determinism + single-decision: any event sequence yields at most
        /// one SendCommit/SendAbort per transaction, never both.
        #[test]
        fn at_most_one_decision(events in proptest::collection::vec((0u8..4, 0usize..4), 1..60)) {
            let mut c = Coordinator::new();
            c.apply(TX, CoordEvent::Begin { shards: vec![0, 1, 2, 3] });
            let mut commits = 0;
            let mut aborts = 0;
            for (kind, shard) in events {
                let ev = match kind {
                    0 => CoordEvent::PrepareOk { shard },
                    1 => CoordEvent::PrepareNotOk { shard },
                    2 => CoordEvent::ClientAbort,
                    _ => CoordEvent::PrepareOk { shard },
                };
                match c.apply(TX, ev) {
                    CoordAction::SendCommit(_) => commits += 1,
                    CoordAction::SendAbort(_) => aborts += 1,
                    _ => {}
                }
            }
            proptest::prop_assert!(commits <= 1);
            proptest::prop_assert!(aborts <= 1);
            proptest::prop_assert!(commits + aborts <= 1);
        }
    }
}
