//! Probability that a transaction is cross-shard (paper Appendix B,
//! Equation 3).
//!
//! A `d`-argument transaction whose arguments hash uniformly onto `k`
//! shards touches exactly `x` shards with the occupancy probability
//! `C(k,x) · x! · S(d,x) / k^d` (where `S` is the Stirling number of the
//! second kind) — the standard balls-into-bins occupancy law the paper's
//! Equation 3 expresses in product/sum form.

/// Stirling numbers of the second kind S(d, x), as f64 (d, x ≤ 64 is far
/// beyond any practical transaction width).
fn stirling2(d: usize, x: usize) -> f64 {
    if x == 0 {
        return if d == 0 { 1.0 } else { 0.0 };
    }
    if x > d {
        return 0.0;
    }
    // DP over rows: S(n, k) = k·S(n-1, k) + S(n-1, k-1).
    let mut row = vec![0.0f64; x + 1];
    row[0] = 1.0; // S(0,0)
    for n in 1..=d {
        let mut next = vec![0.0f64; x + 1];
        for j in 1..=x.min(n) {
            next[j] = j as f64 * row[j] + row[j - 1];
        }
        // S(n,0) = 0 for n ≥ 1 (next[0] stays 0).
        row = next;
    }
    row[x]
}

fn falling_factorial(k: usize, x: usize) -> f64 {
    (0..x).map(|i| (k - i) as f64).product()
}

/// Probability that a `d`-argument transaction touches exactly `x` of `k`
/// shards (Equation 3).
pub fn prob_touches_exactly(d: usize, k: usize, x: usize) -> f64 {
    if d == 0 {
        return if x == 0 { 1.0 } else { 0.0 };
    }
    if x == 0 || x > d.min(k) {
        return 0.0;
    }
    falling_factorial(k, x) * stirling2(d, x) / (k as f64).powi(d as i32)
}

/// Probability that a `d`-argument transaction is cross-shard (touches at
/// least two shards): `1 - k^(1-d)`.
pub fn prob_cross_shard(d: usize, k: usize) -> f64 {
    if d <= 1 || k <= 1 {
        return 0.0;
    }
    1.0 - prob_touches_exactly(d, k, 1)
}

/// Expected number of distinct shards touched by a `d`-argument
/// transaction: `k · (1 - (1 - 1/k)^d)`.
pub fn expected_shards(d: usize, k: usize) -> f64 {
    let k_f = k as f64;
    k_f * (1.0 - (1.0 - 1.0 / k_f).powi(d as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stirling_known_values() {
        assert_eq!(stirling2(0, 0), 1.0);
        assert_eq!(stirling2(3, 2), 3.0);
        assert_eq!(stirling2(4, 2), 7.0);
        assert_eq!(stirling2(5, 3), 25.0);
        assert_eq!(stirling2(3, 5), 0.0);
        assert_eq!(stirling2(4, 0), 0.0);
    }

    #[test]
    fn distribution_sums_to_one() {
        for d in 1..=8 {
            for k in 1..=12 {
                let total: f64 = (1..=d.min(k)).map(|x| prob_touches_exactly(d, k, x)).sum();
                assert!((total - 1.0).abs() < 1e-12, "d={d} k={k} total={total}");
            }
        }
    }

    #[test]
    fn single_shard_probability() {
        // P(x = 1) = k / k^d = k^(1-d).
        assert!((prob_touches_exactly(3, 10, 1) - 0.01).abs() < 1e-12);
        assert!((prob_touches_exactly(2, 4, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paper_claim_vast_majority_cross_shard() {
        // Appendix B claim: in practice most transactions are distributed.
        // A 3-update KVStore transaction over 10 shards is cross-shard 99%
        // of the time; SmallBank's 2-account sendPayment over 16 shards
        // ~94%.
        assert!((prob_cross_shard(3, 10) - 0.99).abs() < 1e-12);
        assert!(prob_cross_shard(2, 16) > 0.93);
    }

    #[test]
    fn cross_shard_grows_with_d_and_k() {
        assert!(prob_cross_shard(3, 4) < prob_cross_shard(4, 4));
        assert!(prob_cross_shard(3, 4) < prob_cross_shard(3, 8));
        assert_eq!(prob_cross_shard(1, 10), 0.0);
        assert_eq!(prob_cross_shard(5, 1), 0.0);
    }

    #[test]
    fn expected_shards_bounds() {
        // 1 ≤ E[x] ≤ min(d, k); for d=3, k=10: 10(1 - 0.9^3) = 2.71.
        let e = expected_shards(3, 10);
        assert!((e - 2.71).abs() < 1e-12);
        assert!(expected_shards(100, 4) <= 4.0 + 1e-9);
    }

    #[test]
    fn monte_carlo_agreement() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let (d, k) = (3, 5);
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 200_000;
        let mut counts = vec![0usize; d + 1];
        for _ in 0..trials {
            let mut shards = std::collections::HashSet::new();
            for _ in 0..d {
                shards.insert(rng.gen_range(0..k));
            }
            counts[shards.len()] += 1;
        }
        for (x, &count) in counts.iter().enumerate().take(d + 1).skip(1) {
            let emp = count as f64 / trials as f64;
            let theory = prob_touches_exactly(d, k, x);
            assert!(
                (emp - theory).abs() < 0.01,
                "x={x}: empirical {emp} vs theory {theory}"
            );
        }
    }
}
