//! The full cross-shard transaction protocol (paper §6.2, Figure 5)
//! executed over in-process shards.
//!
//! This module wires the replicated [`Coordinator`] to per-shard
//! [`StateStore`]s with 2PL execution, exposing both a one-shot API
//! ([`MultiShardLedger::execute`]) and a step-wise API where prepares,
//! votes and decisions are delivered in *arbitrary order* — the surface the
//! property tests drive to check atomicity and isolation under adversarial
//! scheduling. The distributed, BFT-replicated version of the same logic
//! lives in `ahl-core`; the state machines are shared.

use ahl_ledger::{Op, StateOp, StateStore, TxId};

use crate::coordinator::{CoordAction, CoordEvent, CoordState, Coordinator};
use crate::shardmap::ShardMap;

/// Outcome of a cross-shard transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// All involved shards committed.
    Committed,
    /// All involved shards aborted (or never prepared).
    Aborted,
}

/// A sharded ledger driven by the 2PC/2PL protocol.
#[derive(Debug)]
pub struct MultiShardLedger {
    /// One state store per shard.
    pub shards: Vec<StateStore>,
    /// Key-to-shard mapping.
    pub map: ShardMap,
    /// The (logically replicated) coordinator.
    pub coordinator: Coordinator,
    /// Forged decision claims refused by [`MultiShardLedger::deliver_checked`].
    pub forged_decisions: u64,
    /// Forged prepare-vote claims refused by
    /// [`MultiShardLedger::feed_vote_checked`].
    pub forged_votes: u64,
}

impl MultiShardLedger {
    /// Create `k` empty shards.
    pub fn new(k: usize) -> Self {
        MultiShardLedger {
            shards: (0..k).map(|_| StateStore::new()).collect(),
            map: ShardMap::new(k),
            coordinator: Coordinator::new(),
            forged_decisions: 0,
            forged_votes: 0,
        }
    }

    /// Install genesis state (routed to owning shards).
    pub fn genesis(&mut self, entries: &[(String, ahl_ledger::Value)]) {
        for (k, v) in entries {
            let shard = self.map.shard_of(k);
            self.shards[shard].put(k.clone(), v.clone());
        }
    }

    /// Read an integer state value from its owning shard.
    pub fn get_int(&self, key: &str) -> i64 {
        self.shards[self.map.shard_of(key)].get_int(key)
    }

    /// Whether `key` is locked on its owning shard.
    pub fn is_locked(&self, key: &str) -> bool {
        self.shards[self.map.shard_of(key)].is_locked(key)
    }

    /// Sum of an integer key set across shards (conservation checks).
    pub fn total_of(&self, keys: &[String]) -> i64 {
        keys.iter().map(|k| self.get_int(k)).sum()
    }

    /// Execute a transaction to completion through 2PC/2PL, single-shard
    /// fast path included. Returns the outcome.
    pub fn execute(&mut self, txid: TxId, op: &StateOp) -> TxOutcome {
        let parts = self.map.split_op(op);
        match parts.len() {
            0 => TxOutcome::Committed,
            1 => {
                // Single-shard: direct execution, no coordination.
                let (shard, sub) = &parts[0];
                let r = self.shards[*shard].execute(&Op::Direct { txid, op: sub.clone() });
                if r.status.is_committed() {
                    TxOutcome::Committed
                } else {
                    TxOutcome::Aborted
                }
            }
            _ => self.execute_2pc(txid, parts),
        }
    }

    fn execute_2pc(&mut self, txid: TxId, parts: Vec<(usize, StateOp)>) -> TxOutcome {
        let shard_ids: Vec<usize> = parts.iter().map(|(s, _)| *s).collect();
        let action = self
            .coordinator
            .apply(txid, CoordEvent::Begin { shards: shard_ids });
        let CoordAction::SendPrepare(targets) = action else {
            return TxOutcome::Aborted; // duplicate txid
        };

        // Phase 1: prepare at every involved shard, feeding votes back.
        let mut decision: Option<CoordAction> = None;
        for shard in targets {
            let sub = parts
                .iter()
                .find(|(s, _)| *s == shard)
                .map(|(_, op)| op.clone())
                .expect("prepare targets come from parts");
            let receipt = self.shards[shard].execute(&Op::Prepare { txid, op: sub });
            let vote = if receipt.status.is_committed() {
                CoordEvent::PrepareOk { shard }
            } else {
                CoordEvent::PrepareNotOk { shard }
            };
            match self.coordinator.apply(txid, vote) {
                CoordAction::None => {}
                other => decision = Some(other),
            }
            if matches!(decision, Some(CoordAction::SendAbort(_))) {
                break; // the coordinator already aborted; stop preparing
            }
        }

        // Phase 2: deliver the decision.
        match decision {
            Some(CoordAction::SendCommit(shards)) => {
                for shard in shards {
                    let r = self.shards[shard].execute(&Op::Commit { txid });
                    debug_assert!(
                        r.status.is_committed(),
                        "commit of a prepared tx cannot fail"
                    );
                }
                TxOutcome::Committed
            }
            Some(CoordAction::SendAbort(shards)) => {
                for shard in shards {
                    self.shards[shard].execute(&Op::Abort { txid });
                }
                TxOutcome::Aborted
            }
            _ => {
                // No decision reached (shouldn't happen in the synchronous
                // driver); abort defensively.
                TxOutcome::Aborted
            }
        }
    }

    // ---- step-wise API for adversarial interleavings ----

    /// Begin a transaction: registers it and returns the shards to prepare.
    pub fn begin(&mut self, txid: TxId, op: &StateOp) -> Vec<(usize, StateOp)> {
        let parts = self.map.split_op(op);
        let shard_ids: Vec<usize> = parts.iter().map(|(s, _)| *s).collect();
        self.coordinator.apply(txid, CoordEvent::Begin { shards: shard_ids });
        parts
    }

    /// Execute the prepare for one shard and feed the vote to the
    /// coordinator; returns the decision action if one was reached.
    pub fn prepare_at(&mut self, txid: TxId, shard: usize, sub: &StateOp) -> CoordAction {
        let receipt = self.shards[shard].execute(&Op::Prepare { txid, op: sub.clone() });
        let vote = if receipt.status.is_committed() {
            CoordEvent::PrepareOk { shard }
        } else {
            CoordEvent::PrepareNotOk { shard }
        };
        self.coordinator.apply(txid, vote)
    }

    /// Deliver a decision action to its shards.
    pub fn deliver(&mut self, txid: TxId, action: &CoordAction) {
        match action {
            CoordAction::SendCommit(shards) => {
                for &s in shards {
                    self.shards[s].execute(&Op::Commit { txid });
                }
            }
            CoordAction::SendAbort(shards) => {
                for &s in shards {
                    self.shards[s].execute(&Op::Abort { txid });
                }
            }
            _ => {}
        }
    }

    /// Deliver a *claimed* decision the way a real shard committee does:
    /// validated against the reference committee's replicated state
    /// first. In the distributed protocol every CommitTx/AbortTx carries
    /// R's quorum certificate over the Figure 6 decision; a relay (the
    /// client drives message flow in §6.3) can therefore delay a
    /// decision, but it cannot *forge* one — this method models exactly
    /// that check. Returns `false` (and delivers nothing) when the claim
    /// contradicts R's recorded decision, which is how a malicious
    /// client's coordinator equivocation is masked.
    pub fn deliver_checked(&mut self, txid: TxId, claimed: &CoordAction) -> bool {
        let decided = self.coordinator.state(txid);
        let valid = match claimed {
            CoordAction::SendCommit(_) => matches!(decided, Some(CoordState::Committed)),
            CoordAction::SendAbort(_) => matches!(decided, Some(CoordState::Aborted)),
            _ => true, // nothing to deliver
        };
        if !valid {
            self.forged_decisions += 1;
            return false;
        }
        // The shard set is likewise taken from R's records, not from the
        // claim: a forged shard list must not reach uninvolved shards.
        let shards: Vec<usize> = self.coordinator.shards_of(txid).unwrap_or(&[]).to_vec();
        let op = match claimed {
            CoordAction::SendCommit(_) => CoordAction::SendCommit(shards),
            CoordAction::SendAbort(_) => CoordAction::SendAbort(shards),
            _ => return true,
        };
        self.deliver(txid, &op);
        true
    }

    /// Feed a *claimed* prepare vote for `shard` the way the reference
    /// committee accepts votes in AHL: quorum-certified by the shard's
    /// own committee, which means the claim must match what the shard
    /// actually holds — a prepared write set for an OK, none for a
    /// NotOK. A lying claim is refused (counted in
    /// [`MultiShardLedger::forged_votes`]) and the coordinator state is
    /// untouched; this is the §6.2 argument that a malicious relay
    /// cannot turn a failed prepare into a commit.
    pub fn feed_vote_checked(&mut self, txid: TxId, shard: usize, claimed_ok: bool) -> CoordAction {
        let actually_prepared = self.shards[shard].has_pending(txid);
        if claimed_ok != actually_prepared {
            self.forged_votes += 1;
            return CoordAction::None;
        }
        let vote = if claimed_ok {
            CoordEvent::PrepareOk { shard }
        } else {
            CoordEvent::PrepareNotOk { shard }
        };
        self.coordinator.apply(txid, vote)
    }

    /// The coordinator's view of `txid`.
    pub fn state_of(&self, txid: TxId) -> Option<&CoordState> {
        self.coordinator.state(txid)
    }

    /// Read-only check: does any shard still hold a pending prepare?
    pub fn pending_total(&self) -> usize {
        self.shards.iter().map(StateStore::pending_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_ledger::{smallbank, Value};

    /// Accounts chosen so that alice/bob land on different shards of a
    /// 4-shard map (verified in the test).
    fn ledger_with_accounts() -> (MultiShardLedger, String, String) {
        let mut l = MultiShardLedger::new(4);
        l.genesis(&smallbank_genesis(8));
        let a = "acc0".to_string();
        let map = l.map;
        let b = (1..8)
            .map(|i| format!("acc{i}"))
            .find(|b| {
                map.shard_of(&smallbank::checking_key(&a))
                    != map.shard_of(&smallbank::checking_key(b))
            })
            .expect("some account on another shard");
        (l, a, b)
    }

    fn smallbank_genesis(n: usize) -> Vec<(String, Value)> {
        smallbank::genesis(n, 100, 0)
    }

    #[test]
    fn cross_shard_payment_commits() {
        let (mut l, a, b) = ledger_with_accounts();
        let op = smallbank::send_payment(&a, &b, 30);
        assert!(l.map.shards_touched(&op) >= 2);
        let out = l.execute(TxId(1), &op);
        assert_eq!(out, TxOutcome::Committed);
        assert_eq!(l.get_int(&smallbank::checking_key(&a)), 70);
        assert_eq!(l.get_int(&smallbank::checking_key(&b)), 130);
        assert_eq!(l.pending_total(), 0);
    }

    #[test]
    fn insufficient_funds_aborts_atomically() {
        let (mut l, a, b) = ledger_with_accounts();
        let op = smallbank::send_payment(&a, &b, 500);
        let out = l.execute(TxId(1), &op);
        assert_eq!(out, TxOutcome::Aborted);
        assert_eq!(l.get_int(&smallbank::checking_key(&a)), 100);
        assert_eq!(l.get_int(&smallbank::checking_key(&b)), 100);
        assert_eq!(l.pending_total(), 0);
        assert!(!l.is_locked(&smallbank::checking_key(&a)));
    }

    #[test]
    fn single_shard_fast_path() {
        let mut l = MultiShardLedger::new(4);
        l.genesis(&smallbank_genesis(4));
        // deposit touches only one account → one shard.
        let op = smallbank::deposit_checking("acc1", 50);
        assert_eq!(l.map.shards_touched(&op), 1);
        assert_eq!(l.execute(TxId(1), &op), TxOutcome::Committed);
        assert_eq!(l.get_int(&smallbank::checking_key("acc1")), 150);
        // No coordinator entry for the fast path.
        assert!(l.state_of(TxId(1)).is_none());
    }

    #[test]
    fn conflicting_transactions_serialize_via_locks() {
        let (mut l, a, b) = ledger_with_accounts();
        // tx1 prepares but has not committed — holds locks.
        let op1 = smallbank::send_payment(&a, &b, 10);
        let parts = l.begin(TxId(1), &op1);
        let (s0, sub0) = parts[0].clone();
        l.prepare_at(TxId(1), s0, &sub0);
        // tx2 touching the same account must abort (lock conflict).
        let op2 = smallbank::send_payment(&a, &b, 20);
        let out2 = l.execute(TxId(2), &op2);
        assert_eq!(out2, TxOutcome::Aborted);
        // Finish tx1.
        let (s1, sub1) = parts[1].clone();
        let action = l.prepare_at(TxId(1), s1, &sub1);
        assert!(matches!(action, CoordAction::SendCommit(_)));
        l.deliver(TxId(1), &action);
        assert_eq!(l.get_int(&smallbank::checking_key(&a)), 90);
        assert_eq!(l.pending_total(), 0);
    }

    #[test]
    fn abort_releases_locks_for_retry() {
        let (mut l, a, b) = ledger_with_accounts();
        let op = smallbank::send_payment(&a, &b, 500); // will abort
        assert_eq!(l.execute(TxId(1), &op), TxOutcome::Aborted);
        // Retry with an affordable amount succeeds.
        let op2 = smallbank::send_payment(&a, &b, 50);
        assert_eq!(l.execute(TxId(2), &op2), TxOutcome::Committed);
    }

    #[test]
    fn conservation_across_many_random_transfers() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut l = MultiShardLedger::new(5);
        l.genesis(&smallbank_genesis(10));
        let keys: Vec<String> = (0..10).map(|i| smallbank::checking_key(&format!("acc{i}"))).collect();
        let initial = l.total_of(&keys);
        let mut rng = SmallRng::seed_from_u64(99);
        for t in 0..500 {
            let from = format!("acc{}", rng.gen_range(0..10));
            let to = format!("acc{}", rng.gen_range(0..10));
            let amt = rng.gen_range(1..80);
            let _ = l.execute(TxId(t), &smallbank::send_payment(&from, &to, amt));
        }
        assert_eq!(l.total_of(&keys), initial);
        assert_eq!(l.pending_total(), 0);
    }

    proptest::proptest! {
        /// Atomicity under adversarial vote interleavings: whatever order
        /// prepares execute in, the final state is all-commit or all-abort
        /// and conserves funds.
        #[test]
        fn atomicity_under_interleaving(order in proptest::collection::vec(0usize..8, 8), amt in 1i64..150) {
            let mut l = MultiShardLedger::new(4);
            l.genesis(&smallbank_genesis(8));
            let keys: Vec<String> = (0..8).map(|i| smallbank::checking_key(&format!("acc{i}"))).collect();
            let initial = l.total_of(&keys);

            // Two potentially-overlapping cross-shard transactions.
            let op1 = smallbank::send_payment("acc0", "acc3", amt);
            let op2 = smallbank::send_payment("acc3", "acc5", amt);
            let parts1 = l.begin(TxId(1), &op1);
            let parts2 = l.begin(TxId(2), &op2);

            // Interleave the prepare steps in the generated order.
            let mut steps: Vec<(TxId, usize, StateOp)> = Vec::new();
            for (s, sub) in &parts1 {
                steps.push((TxId(1), *s, sub.clone()));
            }
            for (s, sub) in &parts2 {
                steps.push((TxId(2), *s, sub.clone()));
            }
            // Apply a permutation biasing from `order`.
            for &pick in &order {
                if steps.is_empty() { break; }
                let idx = pick % steps.len();
                let (txid, shard, sub) = steps.remove(idx);
                let action = l.prepare_at(txid, shard, &sub);
                l.deliver(txid, &action);
            }
            for (txid, shard, sub) in steps {
                let action = l.prepare_at(txid, shard, &sub);
                l.deliver(txid, &action);
            }

            proptest::prop_assert_eq!(l.total_of(&keys), initial);
            proptest::prop_assert_eq!(l.pending_total(), 0);
            for k in &keys {
                proptest::prop_assert!(!l.is_locked(k));
            }
        }
    }
}
