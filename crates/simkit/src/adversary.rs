//! Message-bus interposition: the adversary's grip on the network.
//!
//! Every send passes through an optional [`Interpose`] hook *before* the
//! [`crate::Network`] model assigns its latency. The hook returns a
//! [`Verdict`] — deliver, drop, delay, or duplicate — which lets tests
//! script exactly the adversarial schedules that break sharded designs in
//! the literature: partitions that isolate a quorum, heal-time message
//! storms, selective drops of one protocol phase, duplicated/reordered
//! votes. Because the hook runs inside the deterministic event loop (and
//! only draws randomness from the engine's seeded network RNG), every
//! attack schedule is bit-for-bit reproducible from the run seed.
//!
//! [`ScriptedFaults`] is the batteries-included implementation: a list of
//! [`FaultRule`]s, each active in a time window, matching messages by
//! source/destination sets and an optional payload predicate. The first
//! matching rule decides. A partition is one rule:
//!
//! ```
//! use ahl_simkit::adversary::{FaultRule, ScriptedFaults};
//! use ahl_simkit::{SimDuration, SimTime};
//!
//! let t0 = SimTime::ZERO;
//! // Nodes {0,1} and {2,3} cannot talk for the first two seconds.
//! let faults: ScriptedFaults<()> = ScriptedFaults::new(vec![FaultRule::partition(
//!     t0,
//!     t0 + SimDuration::from_secs(2),
//!     vec![0, 1],
//!     vec![2, 3],
//! )]);
//! # let _ = faults;
//! ```

use rand::rngs::SmallRng;
use rand::Rng;

use crate::engine::NodeId;
use crate::time::{SimDuration, SimTime};

/// What the interposer decides for one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Hand the message to the network model unchanged.
    Deliver,
    /// Silently drop it (counted as `adv.dropped`).
    Drop,
    /// Deliver after an extra delay on top of the network latency
    /// (reordering attack: the delayed message is overtaken by later,
    /// undelayed ones).
    Delay(SimDuration),
    /// Deliver the original plus `copies` duplicates, each `gap` apart
    /// (replay attack against idempotence/dedup layers).
    Duplicate {
        /// Extra copies beyond the original.
        copies: u32,
        /// Spacing between consecutive copies.
        gap: SimDuration,
    },
}

/// Adversarial interposition hook on the message bus. Implementations must
/// be deterministic given the same call sequence and RNG stream.
pub trait Interpose<M> {
    /// Decide the fate of one message about to enter the network.
    fn intercept(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: &M,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Verdict;
}

/// A boxed payload predicate used by [`FaultMatch`].
pub type MsgPredicate<M> = Box<dyn FnMut(&M) -> bool>;

/// Which messages a [`FaultRule`] applies to: source/destination sets and
/// an optional payload predicate, all of which must match.
pub struct FaultMatch<M> {
    /// Source nodes the rule covers (`None` = every source).
    pub from: Option<Vec<NodeId>>,
    /// Destination nodes the rule covers (`None` = every destination).
    pub to: Option<Vec<NodeId>>,
    /// Payload predicate (`None` = every message).
    pub predicate: Option<MsgPredicate<M>>,
}

impl<M> FaultMatch<M> {
    /// Match every message.
    pub fn any() -> Self {
        FaultMatch { from: None, to: None, predicate: None }
    }

    /// Match messages satisfying `p` (any source/destination).
    pub fn msgs(p: impl FnMut(&M) -> bool + 'static) -> Self {
        FaultMatch { from: None, to: None, predicate: Some(Box::new(p)) }
    }

    fn matches(&mut self, from: NodeId, to: NodeId, msg: &M) -> bool {
        if let Some(f) = &self.from {
            if !f.contains(&from) {
                return false;
            }
        }
        if let Some(t) = &self.to {
            if !t.contains(&to) {
                return false;
            }
        }
        match &mut self.predicate {
            Some(p) => p(msg),
            None => true,
        }
    }
}

/// The fault a matching rule injects.
pub enum FaultKind {
    /// Drop with probability `p` (1.0 = always).
    Drop {
        /// Drop probability in `[0, 1]`.
        p: f64,
    },
    /// Add a delay drawn uniformly from `[min, max]`.
    Delay {
        /// Minimum extra delay.
        min: SimDuration,
        /// Maximum extra delay.
        max: SimDuration,
    },
    /// Duplicate each message.
    Duplicate {
        /// Extra copies.
        copies: u32,
        /// Spacing between copies.
        gap: SimDuration,
    },
}

/// One scripted fault: a time window, a message matcher, and the fault to
/// inject while active. `cross_cut`, when set, replaces the matcher's
/// from/to logic with a symmetric "crosses the partition" test.
pub struct FaultRule<M> {
    /// Rule becomes active at this time (inclusive).
    pub from_time: SimTime,
    /// Rule deactivates — "heals" — at this time (exclusive). Use
    /// [`SimTime::MAX`] for a fault that never heals.
    pub until: SimTime,
    /// Which messages the rule covers.
    pub matcher: FaultMatch<M>,
    /// What happens to covered messages.
    pub kind: FaultKind,
    /// Symmetric partition test (set by [`FaultRule::partition`]): the
    /// rule covers messages for which this returns true, regardless of
    /// the matcher's from/to sets.
    cross_cut: Option<Box<dyn Fn(NodeId, NodeId) -> bool>>,
}

impl<M> FaultRule<M> {
    /// A full partition between node sets `a` and `b` during
    /// `[from_time, until)`: every message crossing the cut (either
    /// direction) is dropped. Traffic inside each side flows normally.
    pub fn partition(from_time: SimTime, until: SimTime, a: Vec<NodeId>, b: Vec<NodeId>) -> Self {
        FaultRule {
            from_time,
            until,
            matcher: FaultMatch::any(),
            kind: FaultKind::Drop { p: 1.0 },
            cross_cut: Some(Box::new(move |from, to| {
                (a.contains(&from) && b.contains(&to)) || (b.contains(&from) && a.contains(&to))
            })),
        }
    }

    /// Drop every message from any of `from` to any of `to` during the
    /// window (one-directional link cut).
    pub fn drop_link(
        from_time: SimTime,
        until: SimTime,
        from: Vec<NodeId>,
        to: Vec<NodeId>,
    ) -> Self {
        FaultRule {
            from_time,
            until,
            matcher: FaultMatch { from: Some(from), to: Some(to), predicate: None },
            kind: FaultKind::Drop { p: 1.0 },
            cross_cut: None,
        }
    }

    /// Delay matching messages by a uniform draw from `[min, max]`.
    pub fn delay(
        from_time: SimTime,
        until: SimTime,
        matcher: FaultMatch<M>,
        min: SimDuration,
        max: SimDuration,
    ) -> Self {
        FaultRule {
            from_time,
            until,
            matcher,
            kind: FaultKind::Delay { min, max },
            cross_cut: None,
        }
    }

    /// Duplicate matching messages (`copies` extras, `gap` apart).
    pub fn duplicate(
        from_time: SimTime,
        until: SimTime,
        matcher: FaultMatch<M>,
        copies: u32,
        gap: SimDuration,
    ) -> Self {
        FaultRule {
            from_time,
            until,
            matcher,
            kind: FaultKind::Duplicate { copies, gap },
            cross_cut: None,
        }
    }

    /// Drop matching messages with probability `p`.
    pub fn lossy(from_time: SimTime, until: SimTime, matcher: FaultMatch<M>, p: f64) -> Self {
        FaultRule {
            from_time,
            until,
            matcher,
            kind: FaultKind::Drop { p },
            cross_cut: None,
        }
    }
}

/// Scripted fault schedule: the first active matching rule decides; no
/// match means [`Verdict::Deliver`].
pub struct ScriptedFaults<M> {
    rules: Vec<FaultRule<M>>,
}

impl<M> ScriptedFaults<M> {
    /// Build a schedule from rules (priority = list order).
    pub fn new(rules: Vec<FaultRule<M>>) -> Self {
        ScriptedFaults { rules }
    }
}

impl<M> Interpose<M> for ScriptedFaults<M> {
    fn intercept(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: &M,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Verdict {
        for rule in &mut self.rules {
            if now < rule.from_time || now >= rule.until {
                continue;
            }
            let hit = match &rule.cross_cut {
                Some(cut) => cut(from, to),
                None => rule.matcher.matches(from, to, msg),
            };
            if !hit {
                continue;
            }
            return match &rule.kind {
                FaultKind::Drop { p } => {
                    if *p >= 1.0 || rng.gen_range(0.0..1.0) < *p {
                        Verdict::Drop
                    } else {
                        Verdict::Deliver
                    }
                }
                FaultKind::Delay { min, max } => {
                    let span = max.as_nanos().saturating_sub(min.as_nanos());
                    let extra = if span == 0 { 0 } else { rng.gen_range(0..=span) };
                    Verdict::Delay(*min + SimDuration::from_nanos(extra))
                }
                FaultKind::Duplicate { copies, gap } => {
                    Verdict::Duplicate { copies: *copies, gap: *gap }
                }
            };
        }
        Verdict::Deliver
    }
}
