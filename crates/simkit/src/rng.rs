//! Deterministic seed derivation.
//!
//! Every component of a simulation (each node's RNG, the network jitter RNG,
//! the workload generator) derives its own stream from one master `u64` seed
//! so that runs are bit-for-bit reproducible and adding a node does not
//! perturb the randomness seen by other nodes.

/// SplitMix64 step — the standard generator used to expand seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from `(master, stream)`. Distinct streams give
/// independent-looking sequences; the same pair always gives the same seed.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn distinct_streams_differ() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_masters_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the canonical SplitMix64.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }
}
