//! Virtual time for the discrete-event simulator.
//!
//! All simulation timestamps are nanoseconds since the start of the run,
//! stored in a `u64` (enough for ~584 years of simulated time). Durations are
//! a separate type so that the two cannot be confused in arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future (which indicates a logic error in the caller, but must
    /// not panic inside metric collection).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// Construct from fractional microseconds (the unit Table 2 of the paper
    /// reports enclave-operation costs in). Negative inputs clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> SimDuration {
        if us <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((us * 1_000.0).round() as u64)
        }
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds in this duration.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds in this duration.
    #[inline]
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used for jitter). Clamps negative to zero.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs(5).as_nanos(), 5_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_micros_f64(458.4).as_nanos(), 458_400);
    }

    #[test]
    fn negative_float_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(-0.1), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(t.as_millis(), 1_000);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2.since(t).as_millis(), 500);
        // `since` saturates rather than panicking when given a later time.
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_at_extremes() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        let d = SimDuration(u64::MAX) + SimDuration::from_secs(1);
        assert_eq!(d.as_nanos(), u64::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }
}
