//! Metric collection for simulation runs.
//!
//! All experiment outputs (throughput, latency, drop counts, view changes,
//! stale blocks, ...) are recorded here by actors through [`crate::Ctx`] and
//! read back by the harness after the run.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::time::{SimDuration, SimTime};
use crate::trace::{FlightRecorder, Phase, TraceSink};

/// A log-bucketed latency histogram covering 1 µs .. ~17 minutes.
///
/// Buckets are half-open ranges `[2^k µs, 2^(k+1) µs)`; values outside the
/// range clamp into the first/last bucket. This resolution is plenty for
/// consensus latencies which span ~100 µs (LAN crypto) to ~150 s (the paper's
/// Figure 15 worst case).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 31],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 31],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            (63 - us.leading_zeros() as usize).min(30)
        }
    }

    /// Record one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.buckets[Self::bucket_index(d.as_micros())] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Smallest recorded sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Approximate quantile (0.0 ..= 1.0), interpolated within the winning
    /// power-of-two bucket by cumulative position. Returns zero when empty.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Interpolate within [2^i, 2^(i+1)) µs: the target is the
                // (target - seen)'th of this bucket's c samples, assumed
                // uniformly spread across the bucket's width (= lo).
                let lo = 1u64 << i;
                let frac = (target - seen) as f64 / c as f64;
                let us = lo as f64 + frac * lo as f64;
                return SimDuration::from_nanos((us * 1_000.0) as u64)
                    .min(self.max())
                    .max(self.min());
            }
            seen += c;
        }
        self.max()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// A metric label: which committee (shard) and which replica within it a
/// sample is attributable to.
///
/// Two granularities share one type: [`Scope::committee`] aggregates across a
/// committee (replica field holds [`Scope::ALL`]), [`Scope::replica`] pins a
/// single node. `Copy + Ord` and two small integers — using a `Scope` as a
/// map key costs no allocation on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Scope {
    /// Committee / shard index.
    pub committee: u32,
    /// Replica index within the committee, or [`Scope::ALL`].
    pub replica: u32,
}

impl Scope {
    /// Sentinel replica value meaning "whole committee".
    pub const ALL: u32 = u32::MAX;

    /// A committee-wide scope.
    pub fn committee(committee: usize) -> Self {
        Scope { committee: committee as u32, replica: Scope::ALL }
    }

    /// A single-replica scope.
    pub fn replica(committee: usize, replica: usize) -> Self {
        Scope { committee: committee as u32, replica: replica as u32 }
    }

    /// Stable textual form: `c3` for a committee scope, `c3/r1` per replica.
    pub fn render(&self) -> String {
        if self.replica == Scope::ALL {
            format!("c{}", self.committee)
        } else {
            format!("c{}/r{}", self.committee, self.replica)
        }
    }
}

/// Global run statistics: named counters, named latency histograms, named
/// time series, scope-labeled variants of the first two, and the transaction
/// [`FlightRecorder`].
///
/// Keys are `&'static str` so recording is allocation-free on the hot path;
/// `BTreeMap` keeps report output deterministically ordered. Scoped writes
/// ([`Stats::inc_scoped`], [`Stats::record_latency_scoped`]) roll up into the
/// same global name, so readers of the unlabeled counters see identical
/// totals whether or not call sites attribute their samples.
#[derive(Default, Debug, Clone)]
pub struct Stats {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    series: BTreeMap<&'static str, Vec<(SimTime, f64)>>,
    scoped_counters: BTreeMap<(&'static str, Scope), u64>,
    scoped_histograms: BTreeMap<(&'static str, Scope), Histogram>,
    recorder: FlightRecorder,
    sink: SinkHandle,
    /// `(committees, committee_size)` hint: lets trace-derived counters
    /// attribute a node id to a [`Scope`] (nodes past the committees are
    /// clients and stay unscoped).
    topology: Option<(usize, usize)>,
}

/// Counter name for flight-recorder ring evictions (see
/// [`Stats::set_topology`] for the scoped variant).
pub const TRACE_DROPPED: &str = "trace.dropped";

/// Shared handle to an installed [`TraceSink`] (`None` = no tee). A newtype
/// so `Stats` keeps its derived `Clone`/`Default` and a readable `Debug`
/// without requiring sinks to implement either.
#[derive(Clone, Default)]
struct SinkHandle(Option<Arc<Mutex<dyn TraceSink + Send>>>);

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(_) => f.write_str("TraceSink(installed)"),
            None => f.write_str("TraceSink(none)"),
        }
    }
}

impl Stats {
    /// Create an empty statistics store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment counter `name` by `delta`.
    pub fn inc(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Increment the `(name, scope)` labeled counter by `delta` *and* roll it
    /// up into the global counter `name`, so unlabeled readers are unaffected.
    pub fn inc_scoped(&mut self, name: &'static str, scope: Scope, delta: u64) {
        *self.scoped_counters.entry((name, scope)).or_insert(0) += delta;
        self.inc(name, delta);
    }

    /// Read counter `name` (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read the `(name, scope)` labeled counter (zero if never written).
    pub fn scoped_counter(&self, name: &'static str, scope: Scope) -> u64 {
        self.scoped_counters.get(&(name, scope)).copied().unwrap_or(0)
    }

    /// Iterate all labeled counters in (name, scope) order.
    pub fn scoped_counters(&self) -> impl Iterator<Item = (&'static str, Scope, u64)> + '_ {
        self.scoped_counters.iter().map(|(&(n, s), &v)| (n, s, v))
    }

    /// Record a duration sample in histogram `name`.
    pub fn record_latency(&mut self, name: &'static str, d: SimDuration) {
        self.histograms.entry(name).or_default().record(d);
    }

    /// Record a duration sample in the `(name, scope)` labeled histogram
    /// *and* in the global histogram `name` (roll-up).
    pub fn record_latency_scoped(&mut self, name: &'static str, scope: Scope, d: SimDuration) {
        self.scoped_histograms.entry((name, scope)).or_default().record(d);
        self.record_latency(name, d);
    }

    /// Read histogram `name` if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Read the `(name, scope)` labeled histogram if any samples were recorded.
    pub fn scoped_histogram(&self, name: &'static str, scope: Scope) -> Option<&Histogram> {
        self.scoped_histograms.get(&(name, scope))
    }

    /// Iterate all labeled histograms in (name, scope) order.
    pub fn scoped_histograms(
        &self,
    ) -> impl Iterator<Item = (&'static str, Scope, &Histogram)> + '_ {
        self.scoped_histograms.iter().map(|(&(n, s), h)| (n, s, h))
    }

    /// Stamp a flight-recorder event at `at` on behalf of `node`. Completed
    /// phase transitions land in the `phase.*` histograms (see
    /// [`Phase::TRANSITIONS`]); ring evictions are counted under
    /// [`TRACE_DROPPED`] (scoped per replica when a topology hint is set),
    /// and the stamp is teed into the installed [`TraceSink`], if any.
    /// Actors normally call [`crate::Ctx::trace`], which fills in the clock
    /// and node id.
    pub fn trace(&mut self, at: SimTime, node: usize, id: u64, phase: Phase) {
        let outcome = self.recorder.record(at, node, id, phase);
        if let Some(tr) = outcome.transition {
            self.histograms.entry(tr.name).or_default().record(tr.delta);
        }
        if outcome.evicted {
            match self.scope_of(node) {
                Some(scope) => self.inc_scoped(TRACE_DROPPED, scope, 1),
                None => self.inc(TRACE_DROPPED, 1),
            }
        }
        if let Some(sink) = self.sink.0.clone() {
            sink.lock().expect("trace sink poisoned").on_trace(at, node, id, phase);
        }
    }

    /// Install a [`TraceSink`] tee: every subsequent [`Stats::trace`] stamp
    /// is forwarded to `sink` after normal recording. One sink at a time;
    /// installing replaces the previous one.
    pub fn set_trace_sink(&mut self, sink: Arc<Mutex<dyn TraceSink + Send>>) {
        self.sink = SinkHandle(Some(sink));
    }

    /// Remove the installed [`TraceSink`], if any.
    pub fn clear_trace_sink(&mut self) {
        self.sink = SinkHandle(None);
    }

    /// Declare the run's committee layout (`committees` committees of
    /// `committee_size` nodes, ids `committee * committee_size + replica`,
    /// clients after) so trace-derived counters can be scope-labeled.
    pub fn set_topology(&mut self, committees: usize, committee_size: usize) {
        self.topology = Some((committees, committee_size));
    }

    fn scope_of(&self, node: usize) -> Option<Scope> {
        let (committees, size) = self.topology?;
        if size == 0 || node >= committees * size {
            return None;
        }
        Some(Scope::replica(node / size, node % size))
    }

    /// The transaction flight recorder (post-run inspection, dumps).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Mutable access to the flight recorder (capacity configuration).
    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    /// Append a (time, value) point to series `name`.
    pub fn record_point(&mut self, name: &'static str, t: SimTime, v: f64) {
        self.series.entry(name).or_default().push((t, v));
    }

    /// Read time series `name` (empty slice if never written).
    pub fn series(&self, name: &str) -> &[(SimTime, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate counters in key order (for reports).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Compute the event rate of series `name` interpreted as per-point
    /// counts, over the window `[from, to)`, in events per second.
    pub fn rate_in_window(&self, name: &str, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let total: f64 = self
            .series(name)
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .sum();
        total / to.since(from).as_secs_f64()
    }

    /// Bucket series `name` into fixed-width windows and return
    /// (window_start, events/sec) pairs — used for throughput-over-time plots
    /// such as the paper's Figure 12 (right).
    pub fn rate_series(&self, name: &str, window: SimDuration, until: SimTime) -> Vec<(SimTime, f64)> {
        if window == SimDuration::ZERO {
            return Vec::new();
        }
        let w = window.as_nanos();
        let nwin = (until.as_nanos() / w + 1) as usize;
        let mut sums = vec![0.0f64; nwin];
        for (t, v) in self.series(name) {
            let idx = (t.as_nanos() / w) as usize;
            if idx < nwin {
                sums[idx] += v;
            }
        }
        sums.into_iter()
            .enumerate()
            .map(|(i, s)| (SimTime(i as u64 * w), s / window.as_secs_f64()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.inc("commits", 3);
        s.inc("commits", 4);
        assert_eq!(s.counter("commits"), 7);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn histogram_basic_moments() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(100));
        h.record(SimDuration::from_micros(300));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean().as_micros(), 200);
        assert_eq!(h.min().as_micros(), 100);
        assert_eq!(h.max().as_micros(), 300);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p50.as_micros() >= 256 && p50.as_micros() <= 1024);
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // Uniform 1..=1000 µs: interpolation must land near the true
        // quantiles instead of the old fixed bucket midpoint (384 µs for
        // p50, 768 µs for p99).
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5).as_micros();
        let p99 = h.quantile(0.99).as_micros();
        let p999 = h.quantile(0.999).as_micros();
        assert!((450..=550).contains(&p50), "p50 = {p50} µs, want ~500");
        assert!((940..=1000).contains(&p99), "p99 = {p99} µs, want ~990");
        assert!(p99 <= p999 && p999 <= 1000, "p999 = {p999} µs");
        // Quantiles never escape the observed range.
        assert!(h.quantile(0.0001).as_micros() >= 1);
        assert!(h.quantile(1.0).as_micros() <= 1000);
    }

    #[test]
    fn scoped_counters_roll_up() {
        let mut s = Stats::new();
        s.inc_scoped("txn.committed", Scope::committee(0), 5);
        s.inc_scoped("txn.committed", Scope::committee(1), 7);
        s.inc_scoped("wal.batches", Scope::replica(1, 2), 3);
        assert_eq!(s.counter("txn.committed"), 12, "global roll-up");
        assert_eq!(s.scoped_counter("txn.committed", Scope::committee(0)), 5);
        assert_eq!(s.scoped_counter("txn.committed", Scope::committee(1)), 7);
        assert_eq!(s.counter("wal.batches"), 3);
        assert_eq!(s.scoped_counter("wal.batches", Scope::replica(1, 2)), 3);
        assert_eq!(s.scoped_counter("wal.batches", Scope::replica(1, 0)), 0);
        let all: Vec<_> = s.scoped_counters().collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn scoped_histograms_roll_up() {
        let mut s = Stats::new();
        s.record_latency_scoped("txn.latency", Scope::committee(0), SimDuration::from_micros(100));
        s.record_latency_scoped("txn.latency", Scope::committee(1), SimDuration::from_micros(300));
        assert_eq!(s.histogram("txn.latency").unwrap().count(), 2);
        assert_eq!(s.scoped_histogram("txn.latency", Scope::committee(1)).unwrap().count(), 1);
    }

    #[test]
    fn trace_derives_phase_histograms() {
        use crate::trace::Phase;
        let mut s = Stats::new();
        s.trace(SimTime(0), 0, 42, Phase::Submit);
        s.trace(SimTime(2_000_000), 1, 42, Phase::Ingest);
        s.trace(SimTime(3_000_000), 1, 42, Phase::Admit);
        let h = s.histogram("phase.submit_ingest").expect("hop recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean().as_millis(), 2);
        assert_eq!(s.histogram("phase.ingest_admit").unwrap().count(), 1);
    }

    #[test]
    fn ring_eviction_is_counted_and_scoped() {
        let mut s = Stats::new();
        s.recorder_mut().set_capacity(4);
        s.set_topology(1, 2); // nodes 0,1 are c0/r0,c0/r1; node 2+ clients
        for i in 0..10u64 {
            s.trace(SimTime(i), 1, i, Phase::WalCommit);
        }
        // 10 events into a 4-slot ring: 6 evictions, attributed to c0/r1.
        assert_eq!(s.counter(TRACE_DROPPED), 6);
        assert_eq!(s.scoped_counter(TRACE_DROPPED, Scope::replica(0, 1)), 6);
        assert_eq!(s.recorder().dropped(1), 6);
        assert_eq!(s.recorder().occupancy(), 4);
        // A client node's evictions land in the global counter only.
        for i in 0..5u64 {
            s.trace(SimTime(i), 7, 100 + i, Phase::WalCommit);
        }
        assert_eq!(s.counter(TRACE_DROPPED), 7);
        assert_eq!(s.recorder().total_dropped(), 7);
    }

    #[test]
    fn trace_sink_sees_every_stamp() {
        use std::sync::{Arc, Mutex};
        #[derive(Default)]
        struct Tape(Vec<(SimTime, usize, u64, Phase)>);
        impl crate::trace::TraceSink for Tape {
            fn on_trace(&mut self, at: SimTime, node: usize, id: u64, phase: Phase) {
                self.0.push((at, node, id, phase));
            }
        }
        let tape = Arc::new(Mutex::new(Tape::default()));
        let mut s = Stats::new();
        s.set_trace_sink(tape.clone());
        s.trace(SimTime(1), 0, 9, Phase::Submit);
        s.trace(SimTime(2), 1, 9, Phase::Ingest);
        s.clear_trace_sink();
        s.trace(SimTime(3), 1, 9, Phase::Admit);
        let seen = &tape.lock().unwrap().0;
        assert_eq!(seen.len(), 2, "tee stops after clear");
        assert_eq!(seen[0], (SimTime(1), 0, 9, Phase::Submit));
        // The normal recording path still ran for all three stamps.
        assert_eq!(s.histogram("phase.ingest_admit").unwrap().count(), 1);
    }

    #[test]
    fn scope_render_is_stable() {
        assert_eq!(Scope::committee(3).render(), "c3");
        assert_eq!(Scope::replica(3, 1).render(), "c3/r1");
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.9), SimDuration::ZERO);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min().as_micros(), 10);
        assert_eq!(a.max().as_micros(), 1000);
    }

    #[test]
    fn rate_window() {
        let mut s = Stats::new();
        for i in 0..10 {
            s.record_point("commit", SimTime(i * 100_000_000), 1.0); // every 100 ms
        }
        let rate = s.rate_in_window("commit", SimTime::ZERO, SimTime(1_000_000_000));
        assert!((rate - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rate_series_buckets() {
        let mut s = Stats::new();
        for i in 0..20 {
            s.record_point("commit", SimTime(i * 50_000_000), 1.0); // 20 evts in 1 s
        }
        let series = s.rate_series("commit", SimDuration::from_millis(500), SimTime(1_000_000_000));
        assert_eq!(series.len(), 3);
        assert!((series[0].1 - 20.0).abs() < 1e-9);
        assert!((series[1].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_index_clamps() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(u64::MAX), 30);
    }
}
