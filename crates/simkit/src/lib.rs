//! # ahl-simkit — deterministic discrete-event simulation kernel
//!
//! This crate is the testbed substrate for the AHL reproduction: it stands in
//! for the paper's 100-server local cluster and 1400-instance Google Cloud
//! deployment. A simulation is a collection of [`Actor`]s exchanging messages
//! over a pluggable [`Network`] model under a virtual clock.
//!
//! The kernel models the three contended resources the paper's evaluation
//! measures:
//!
//! 1. **CPU** — message handling is serialized per node and charged the
//!    declared cost of the cryptographic / enclave operations it performs
//!    ([`Ctx::consume_cpu`]).
//! 2. **Network** — every send passes through the [`Network`] model, which
//!    assigns latency (possibly with jitter and bandwidth-dependent
//!    serialization delay) or drops the message.
//! 3. **Bounded queues** — inbound messages are routed by [`MsgClass`] into
//!    per-node bounded queues ([`QueueConfig`]); overflow drops are counted.
//!    Shared vs split queues is exactly the paper's optimization 1.
//!
//! Runs are deterministic: one master seed derives every per-node and
//! network RNG stream, and event ties are broken by insertion order.
//!
//! ```
//! use ahl_simkit::{Actor, Ctx, NodeId, QueueConfig, Sim, SimConfig, SimDuration};
//!
//! #[derive(Clone)]
//! struct Hello;
//!
//! struct Greeter { peer: NodeId }
//! impl Actor for Greeter {
//!     type Msg = Hello;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Hello>) {
//!         if ctx.id() == 0 { ctx.send(self.peer, Hello); }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _m: Hello, ctx: &mut Ctx<'_, Hello>) {
//!         ctx.consume_cpu(SimDuration::from_micros(5));
//!         ctx.stats().inc("greetings", 1);
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::new(42));
//! sim.add_actor(Box::new(Greeter { peer: 1 }), QueueConfig::unbounded());
//! sim.add_actor(Box::new(Greeter { peer: 0 }), QueueConfig::unbounded());
//! sim.run();
//! assert_eq!(sim.stats().counter("greetings"), 1);
//! ```

#![warn(missing_docs)]

pub mod adversary;
mod engine;
pub mod rng;
pub mod stats;
mod time;
pub mod trace;

pub use engine::{
    Actor, Ctx, Host, MsgClass, Network, NodeId, QueueConfig, Sim, SimConfig, UniformNetwork,
};
pub use stats::{Histogram, Scope, Stats, TRACE_DROPPED};
pub use time::{SimDuration, SimTime};
pub use trace::{FlightRecorder, Phase, TraceEvent, TraceSink};
