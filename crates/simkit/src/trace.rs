//! Transaction flight recorder: per-node bounded ring buffers of structured
//! lifecycle events, plus online phase-latency derivation.
//!
//! Every actor can stamp `(sim_time, node, id, phase)` events through
//! [`crate::Ctx::trace`]. The recorder keeps the last `capacity` events per
//! node (a ring — memory is bounded no matter how long the run), and
//! simultaneously tracks each transaction's *phase chain* so the harness can
//! answer "where does latency live": the hop from client submit to pool
//! admission, admission to proposal, proposal to commit quorum, commit to
//! execution, and each 2PC hop, all as histograms with p50/p99/p999.
//!
//! Determinism: recording is driven entirely by simulation events, so the
//! full event sequence is a pure function of the run seed. The chain-tracking
//! map is bounded ([`FlightRecorder::OPEN_CAP`]); when full, new chains are
//! refused and counted, never silently grown.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A lifecycle phase stamped into the flight recorder.
///
/// The consensus chain (`Submit → Ingest → Admit → Propose → Commit → Exec`)
/// is keyed by request id; the cross-shard chain
/// (`TwoPcBegin → TwoPcPrepare → TwoPcVote → TwoPcDecide`) by transaction id.
/// The remaining phases are standalone markers (no chain, ring-buffer only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Phase {
    /// Client handed the request to the network.
    Submit,
    /// Replica received the request.
    Ingest,
    /// Mempool admitted the request.
    Admit,
    /// Request placed into a proposed block.
    Propose,
    /// Commit quorum reached for the containing block.
    Commit,
    /// Request executed against the state machine (terminal).
    Exec,
    /// Coordinator started a cross-shard transaction.
    TwoPcBegin,
    /// A shard executed the 2PC prepare (lock acquisition).
    TwoPcPrepare,
    /// Coordinator observed a shard's prepare vote.
    TwoPcVote,
    /// A shard executed the final commit/abort decision (terminal).
    TwoPcDecide,
    /// Replica installed a new view after a view change.
    ViewChange,
    /// Replica began a state-sync session.
    SyncStart,
    /// Replica finished a state-sync session.
    SyncDone,
    /// WAL group commit flushed a batch.
    WalCommit,
    /// Replica produced a signed checkpoint.
    Checkpoint,
}

/// Which phase chain a phase belongs to, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Chain {
    Consensus,
    TwoPc,
}

impl Phase {
    /// Short lowercase label used in dumps and determinism fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Submit => "submit",
            Phase::Ingest => "ingest",
            Phase::Admit => "admit",
            Phase::Propose => "propose",
            Phase::Commit => "commit",
            Phase::Exec => "exec",
            Phase::TwoPcBegin => "2pc_begin",
            Phase::TwoPcPrepare => "2pc_prepare",
            Phase::TwoPcVote => "2pc_vote",
            Phase::TwoPcDecide => "2pc_decide",
            Phase::ViewChange => "view_change",
            Phase::SyncStart => "sync_start",
            Phase::SyncDone => "sync_done",
            Phase::WalCommit => "wal_commit",
            Phase::Checkpoint => "checkpoint",
        }
    }

    /// (chain, rank) for chain phases. Rank orders phases within a chain; a
    /// chain only advances to a strictly higher rank, so N replicas all
    /// stamping `Commit` contribute one transition (the earliest in sim
    /// time — deterministic, since event order is deterministic).
    fn chain_rank(self) -> Option<(Chain, u8)> {
        match self {
            Phase::Submit => Some((Chain::Consensus, 0)),
            Phase::Ingest => Some((Chain::Consensus, 1)),
            Phase::Admit => Some((Chain::Consensus, 2)),
            Phase::Propose => Some((Chain::Consensus, 3)),
            Phase::Commit => Some((Chain::Consensus, 4)),
            Phase::Exec => Some((Chain::Consensus, 5)),
            Phase::TwoPcBegin => Some((Chain::TwoPc, 0)),
            Phase::TwoPcPrepare => Some((Chain::TwoPc, 1)),
            Phase::TwoPcVote => Some((Chain::TwoPc, 2)),
            Phase::TwoPcDecide => Some((Chain::TwoPc, 3)),
            _ => None,
        }
    }

    /// Histogram name for the hop that *arrives at* this phase, or `None`
    /// for phases that open a chain or are not chained. In a healthy run the
    /// chain passes through every phase in order, so each name measures
    /// exactly the hop it says; if an intermediate phase is unobserved the
    /// hop from the last observed phase is attributed to the arriving one.
    pub fn transition_name(self) -> Option<&'static str> {
        match self {
            Phase::Ingest => Some("phase.submit_ingest"),
            Phase::Admit => Some("phase.ingest_admit"),
            Phase::Propose => Some("phase.admit_propose"),
            Phase::Commit => Some("phase.propose_commit"),
            Phase::Exec => Some("phase.commit_exec"),
            Phase::TwoPcPrepare => Some("phase.2pc_begin_prepare"),
            Phase::TwoPcVote => Some("phase.2pc_prepare_vote"),
            Phase::TwoPcDecide => Some("phase.2pc_vote_decide"),
            _ => None,
        }
    }

    /// All hop-histogram names, in pipeline order (for reports).
    pub const TRANSITIONS: [&'static str; 8] = [
        "phase.submit_ingest",
        "phase.ingest_admit",
        "phase.admit_propose",
        "phase.propose_commit",
        "phase.commit_exec",
        "phase.2pc_begin_prepare",
        "phase.2pc_prepare_vote",
        "phase.2pc_vote_decide",
    ];
}

/// One flight-recorder entry: who stamped what, when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the stamp.
    pub at: SimTime,
    /// Node that recorded the event.
    pub node: usize,
    /// Request id (consensus chain), transaction id (2PC chain), or a
    /// context-dependent discriminant (view number, sync session, batch id)
    /// for standalone phases.
    pub id: u64,
    /// Lifecycle phase.
    pub phase: Phase,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}ns n{:<4} {:<12} id={}",
            self.at.as_nanos(),
            self.node,
            self.phase.label(),
            self.id
        )
    }
}

/// A completed phase transition, handed back to [`crate::Stats`] so the hop
/// latency lands in a named histogram.
pub(crate) struct Transition {
    pub name: &'static str,
    pub delta: SimDuration,
}

/// What one [`FlightRecorder::record`] call did: the phase transition it
/// completed (if any), and whether retaining the event evicted the oldest
/// entry of the node's ring (so [`crate::Stats`] can count the drop instead
/// of losing history silently).
pub(crate) struct RecordOutcome {
    pub transition: Option<Transition>,
    pub evicted: bool,
}

/// An online consumer of the flight-recorder event stream.
///
/// [`crate::Stats::set_trace_sink`] tees every [`crate::Stats::trace`] stamp
/// into one installed sink *in addition to* the normal recorder/histogram
/// path. This is how out-of-crate oracles (e.g. a liveness checker) observe
/// the run without the simulator depending on them: the sink sees the exact
/// deterministic event sequence, in order, as it happens.
pub trait TraceSink {
    /// Observe one lifecycle stamp (same arguments as [`crate::Ctx::trace`]).
    fn on_trace(&mut self, at: SimTime, node: usize, id: u64, phase: Phase);
}

/// Per-node bounded ring buffers of [`TraceEvent`]s plus the chain tracker
/// that derives phase-hop latencies. Owned by [`crate::Stats`]; actors write
/// through [`crate::Ctx::trace`].
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<usize, VecDeque<TraceEvent>>,
    /// Open chains: (id, chain discriminant) → (last rank, last stamp time).
    open: BTreeMap<(u64, u8), (u8, SimTime)>,
    /// Chains refused because `open` was at capacity.
    overflow: u64,
    /// Events evicted from full rings, per node (oldest-first eviction).
    dropped: BTreeMap<usize, u64>,
}

impl FlightRecorder {
    /// Default per-node ring capacity.
    pub const DEFAULT_CAPACITY: usize = 2048;
    /// Bound on concurrently-open phase chains. At capacity, new chains are
    /// refused (and counted in [`FlightRecorder::overflow`]) so a pathological
    /// run cannot grow the tracker without bound.
    pub const OPEN_CAP: usize = 65_536;

    /// Create a recorder with the given per-node ring capacity
    /// (`0` disables event retention; phase histograms still accumulate).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { capacity, ..Default::default() }
    }

    /// Per-node ring capacity currently in force.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the per-node ring capacity (existing rings are trimmed; trimmed
    /// events count as drops).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        for (&node, ring) in self.rings.iter_mut() {
            while ring.len() > capacity {
                ring.pop_front();
                *self.dropped.entry(node).or_insert(0) += 1;
            }
        }
    }

    /// Number of chain-open refusals due to the [`Self::OPEN_CAP`] bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Events evicted from `node`'s full ring (oldest-first) over the run.
    pub fn dropped(&self, node: usize) -> u64 {
        self.dropped.get(&node).copied().unwrap_or(0)
    }

    /// Total events evicted from full rings across all nodes.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Total events currently retained across all rings (occupancy).
    pub fn occupancy(&self) -> usize {
        self.rings.values().map(VecDeque::len).sum()
    }

    /// Record one event. Reports the phase transition it completed (if any)
    /// and whether the node's ring evicted its oldest event to make room.
    pub(crate) fn record(
        &mut self,
        at: SimTime,
        node: usize,
        id: u64,
        phase: Phase,
    ) -> RecordOutcome {
        let mut evicted = false;
        if self.capacity > 0 {
            let ring = self.rings.entry(node).or_default();
            if ring.len() >= self.capacity {
                ring.pop_front();
                *self.dropped.entry(node).or_insert(0) += 1;
                evicted = true;
            }
            ring.push_back(TraceEvent { at, node, id, phase });
        }
        let transition = self.track_chain(at, id, phase);
        RecordOutcome { transition, evicted }
    }

    fn track_chain(&mut self, at: SimTime, id: u64, phase: Phase) -> Option<Transition> {
        let (chain, rank) = phase.chain_rank()?;
        let key = (id, chain as u8);
        match self.open.get_mut(&key) {
            Some((prev_rank, prev_at)) => {
                if rank <= *prev_rank {
                    return None; // duplicate stamp from another replica
                }
                let delta = at.since(*prev_at);
                *prev_rank = rank;
                *prev_at = at;
                let terminal = matches!(phase, Phase::Exec | Phase::TwoPcDecide);
                if terminal {
                    self.open.remove(&key);
                }
                phase.transition_name().map(|name| Transition { name, delta })
            }
            None => {
                // Only chain-opening phases may start tracking; a late
                // straggler after the terminal phase must not re-open.
                if rank == 0 {
                    if self.open.len() >= Self::OPEN_CAP {
                        self.overflow += 1;
                    } else {
                        self.open.insert(key, (rank, at));
                    }
                }
                None
            }
        }
    }

    /// Events currently retained for `node`, oldest first.
    pub fn node_events(&self, node: usize) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.rings.get(&node).into_iter().flatten()
    }

    /// All retained events across nodes, grouped by node id (node order, then
    /// chronological within a node).
    pub fn all_events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.rings.values().flatten()
    }

    /// Reconstruct a transaction/request lifecycle: every retained event with
    /// this `id`, across all nodes, sorted by time (ties by node id).
    pub fn lifecycle(&self, id: u64) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> =
            self.all_events().filter(|e| e.id == id).copied().collect();
        evs.sort_by_key(|e| (e.at, e.node));
        evs
    }

    /// A deterministic textual fingerprint of the full retained event log —
    /// two runs with the same seed must produce byte-identical output.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for ev in self.all_events() {
            out.push_str(&format!(
                "{} {} {} {}\n",
                ev.at.as_nanos(),
                ev.node,
                ev.phase.label(),
                ev.id
            ));
        }
        out
    }

    /// Render the last `limit` events of each node in `nodes` as a bounded,
    /// human-readable post-mortem dump.
    pub fn dump(&self, nodes: impl IntoIterator<Item = usize>, limit: usize) -> String {
        let mut out = String::new();
        for node in nodes {
            let ring = match self.rings.get(&node) {
                Some(r) if !r.is_empty() => r,
                _ => continue,
            };
            let skip = ring.len().saturating_sub(limit);
            out.push_str(&format!("--- node {node} (last {} of {} events)\n", ring.len() - skip, ring.len()));
            for ev in ring.iter().skip(skip) {
                out.push_str(&format!("{ev}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(flight recorder empty)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    #[test]
    fn ring_is_bounded() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..100 {
            fr.record(t(i), 0, i, Phase::WalCommit);
        }
        let evs: Vec<_> = fr.node_events(0).collect();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].id, 96, "oldest retained event");
        assert_eq!(evs[3].id, 99);
    }

    #[test]
    fn chain_transitions_land_in_order() {
        let mut fr = FlightRecorder::new(16);
        assert!(fr.record(t(0), 0, 7, Phase::Submit).transition.is_none());
        let tr = fr.record(t(2), 1, 7, Phase::Ingest).transition.expect("hop");
        assert_eq!(tr.name, "phase.submit_ingest");
        assert_eq!(tr.delta.as_millis(), 2);
        let tr = fr.record(t(3), 1, 7, Phase::Admit).transition.expect("hop");
        assert_eq!(tr.name, "phase.ingest_admit");
        assert_eq!(tr.delta.as_millis(), 1);
        // A second replica stamping Admit later must not re-measure.
        assert!(fr.record(t(4), 2, 7, Phase::Admit).transition.is_none());
        let tr = fr.record(t(9), 1, 7, Phase::Commit).transition.expect("skip propose");
        assert_eq!(tr.name, "phase.propose_commit");
        assert_eq!(tr.delta.as_millis(), 6);
        let tr = fr.record(t(10), 1, 7, Phase::Exec).transition.expect("terminal");
        assert_eq!(tr.name, "phase.commit_exec");
        // Chain closed: stragglers neither measure nor re-open.
        assert!(fr.record(t(11), 2, 7, Phase::Exec).transition.is_none());
        assert!(fr.record(t(12), 2, 7, Phase::Commit).transition.is_none());
    }

    #[test]
    fn consensus_and_twopc_chains_are_independent() {
        let mut fr = FlightRecorder::new(16);
        fr.record(t(0), 0, 5, Phase::Submit);
        fr.record(t(0), 0, 5, Phase::TwoPcBegin);
        let tr = fr.record(t(4), 1, 5, Phase::TwoPcPrepare).transition.expect("2pc hop");
        assert_eq!(tr.name, "phase.2pc_begin_prepare");
        let tr = fr.record(t(5), 1, 5, Phase::Ingest).transition.expect("consensus hop");
        assert_eq!(tr.name, "phase.submit_ingest");
        assert_eq!(tr.delta.as_millis(), 5);
    }

    #[test]
    fn open_chains_are_bounded() {
        let mut fr = FlightRecorder::new(0);
        for i in 0..(FlightRecorder::OPEN_CAP as u64 + 10) {
            fr.record(t(0), 0, i, Phase::Submit);
        }
        assert_eq!(fr.overflow(), 10);
        assert!(fr.open.len() <= FlightRecorder::OPEN_CAP);
    }

    #[test]
    fn zero_capacity_still_measures_phases() {
        let mut fr = FlightRecorder::new(0);
        fr.record(t(0), 0, 1, Phase::Submit);
        assert!(fr.record(t(1), 0, 1, Phase::Ingest).transition.is_some());
        assert_eq!(fr.all_events().count(), 0);
    }

    #[test]
    fn lifecycle_merges_across_nodes_sorted() {
        let mut fr = FlightRecorder::new(16);
        fr.record(t(5), 3, 9, Phase::Exec);
        fr.record(t(1), 0, 9, Phase::Submit);
        fr.record(t(3), 2, 9, Phase::Commit);
        fr.record(t(2), 1, 8, Phase::Submit);
        let life = fr.lifecycle(9);
        assert_eq!(life.len(), 3);
        assert!(life.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn dump_is_bounded() {
        let mut fr = FlightRecorder::new(64);
        for i in 0..50 {
            fr.record(t(i), 0, i, Phase::WalCommit);
        }
        let d = fr.dump([0], 5);
        assert_eq!(d.lines().count(), 6, "header + 5 events");
        assert!(d.contains("wal_commit"));
    }
}
