//! The discrete-event simulation engine.
//!
//! A simulation is a set of [`Actor`]s (consensus replicas, clients, beacon
//! participants, ...) exchanging messages through a [`Network`] model. The
//! engine provides the three resources whose contention the paper's
//! evaluation measures:
//!
//! * **CPU** — each node is a single-threaded server. Handling a message
//!   starts no earlier than the node's `busy_until` and advances it by the
//!   CPU cost the handler declares via [`Ctx::consume_cpu`] (e.g. the
//!   Table 2 enclave-operation latencies). This is what makes O(N²)
//!   communication visible as a throughput collapse.
//! * **Network** — the [`Network`] implementation maps every send to a
//!   delivery latency (or a drop), modelling LAN/WAN topologies.
//! * **Queues** — each node has bounded inbound queues keyed by
//!   [`MsgClass`]. Hyperledger v0.6 uses one shared queue for consensus and
//!   request traffic; the paper's optimization 1 splits them. Overflowing
//!   queues drop messages, which is precisely the livelock mechanism the
//!   paper observed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::adversary::{Interpose, Verdict};
use crate::rng::derive_seed;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};

/// Index of a node (actor) in the simulation.
pub type NodeId = usize;

/// Classification of a message for queueing purposes.
///
/// The engine routes each inbound message to one of the node's queues based
/// on its class; see [`QueueConfig`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MsgClass(pub u8);

impl MsgClass {
    /// Consensus-protocol messages (pre-prepare/prepare/commit/view-change...).
    pub const CONSENSUS: MsgClass = MsgClass(0);
    /// Client request messages.
    pub const REQUEST: MsgClass = MsgClass(1);
}

/// How a node's inbound queues are organised.
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Capacity of each queue. `route` indexes into this vector.
    pub capacities: Vec<usize>,
    /// Maps a message class to a queue index.
    pub route: fn(MsgClass) -> usize,
    /// Served round-robin across queues (true) or strictly by queue index
    /// priority (false).
    pub round_robin: bool,
}

fn route_shared(_c: MsgClass) -> usize {
    0
}

fn route_split(c: MsgClass) -> usize {
    if c == MsgClass::CONSENSUS {
        0
    } else {
        1
    }
}

impl QueueConfig {
    /// One shared bounded queue for all traffic — Hyperledger v0.6 behaviour
    /// ("HL" and "AHL" in the paper).
    pub fn shared(capacity: usize) -> Self {
        QueueConfig {
            capacities: vec![capacity],
            route: route_shared,
            round_robin: true,
        }
    }

    /// Separate consensus/request channels — the paper's optimization 1
    /// ("AHL+"). Queue 0 carries consensus traffic, queue 1 requests.
    pub fn split(consensus_capacity: usize, request_capacity: usize) -> Self {
        QueueConfig {
            capacities: vec![consensus_capacity, request_capacity],
            route: route_split,
            round_robin: true,
        }
    }

    /// Effectively unbounded single queue (for protocols where queueing is
    /// not the phenomenon under study, e.g. the beacon or PoET experiments).
    pub fn unbounded() -> Self {
        QueueConfig::shared(usize::MAX)
    }
}

/// Network model: decides latency (or drop) for each message.
pub trait Network {
    /// Latency from `from` to `to` for a message of `bytes` size sent at
    /// `now`, or `None` if the message is lost in transit.
    fn transit(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Option<SimDuration>;
}

/// A zero-configuration network with one fixed latency for every link.
#[derive(Clone, Debug)]
pub struct UniformNetwork {
    /// One-way delay applied to every message.
    pub latency: SimDuration,
}

impl UniformNetwork {
    /// Create a uniform network with the given one-way latency.
    pub fn new(latency: SimDuration) -> Self {
        UniformNetwork { latency }
    }
}

impl Network for UniformNetwork {
    fn transit(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _bytes: usize,
        _now: SimTime,
        _rng: &mut SmallRng,
    ) -> Option<SimDuration> {
        Some(self.latency)
    }
}

/// A simulation actor: one logical node (replica, client, enclave host...).
pub trait Actor {
    /// The message type exchanged in this simulation.
    type Msg: Clone;

    /// Called once at simulation start (time zero) before any deliveries.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Handle a message delivered from `from`.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Handle a timer previously set with [`Ctx::set_timer`]. `kind` is the
    /// caller-chosen discriminant.
    fn on_timer(&mut self, _kind: u64, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Opt-in downcasting hook for post-run inspection (override with
    /// `Some(self)` to allow harnesses to read actor state after a run).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable counterpart of [`Actor::as_any`] (for fault injection).
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

enum EventKind<M> {
    Deliver { from: NodeId, msg: M, class: MsgClass },
    ProcessNext,
    Timer { kind: u64 },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    node: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeRt<M> {
    queues: Vec<VecDeque<(NodeId, M)>>,
    queue_cfg: QueueConfig,
    busy_until: SimTime,
    processing_scheduled: bool,
    rr_cursor: usize,
    rng: SmallRng,
}

impl<M> NodeRt<M> {
    fn total_queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Pop the next message respecting the service discipline.
    fn pop_next(&mut self) -> Option<(NodeId, M)> {
        let n = self.queues.len();
        if self.queue_cfg.round_robin {
            for i in 0..n {
                let q = (self.rr_cursor + i) % n;
                if let Some(item) = self.queues[q].pop_front() {
                    self.rr_cursor = (q + 1) % n;
                    return Some(item);
                }
            }
            None
        } else {
            self.queues.iter_mut().find_map(VecDeque::pop_front)
        }
    }
}

/// The engine internals shared with actors through [`Ctx`].
struct Kernel<M> {
    now: SimTime,
    master_seed: u64,
    next_seq: u64,
    events: BinaryHeap<Event<M>>,
    nodes: Vec<NodeRt<M>>,
    network: Box<dyn Network>,
    /// Adversarial interposition hook consulted before the network model
    /// (drop/delay/duplicate, scripted partitions). `None` = honest bus.
    interposer: Option<Box<dyn Interpose<M>>>,
    net_rng: SmallRng,
    classify: fn(&M) -> MsgClass,
    size_of: fn(&M) -> usize,
    /// Sender uplink bandwidth in bits/s; `None` = infinite. Each outgoing
    /// message occupies the sender's uplink for `bytes * 8 / uplink_bps`,
    /// delaying both later messages and the node's next processing step.
    /// This is what makes an N-way broadcast of large messages expensive
    /// *for the sender* — the mechanism behind the paper's optimization 2.
    uplink_bps: Option<f64>,
    stats: Stats,
    halted: bool,
    events_processed: u64,
    /// Safety valve: abort runs that exceed this many events.
    max_events: u64,
}

impl<M: Clone> Kernel<M> {
    fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event { time, seq, node, kind });
    }

    /// Dispatch an outbox: messages depart sequentially, each occupying the
    /// sender's uplink for its serialization time. Returns the time the last
    /// byte left the node.
    fn flush_outbox(&mut self, from: NodeId, outbox: Vec<(NodeId, M)>, start: SimTime) -> SimTime {
        let mut depart = start;
        for (to, msg) in outbox {
            if let Some(bw) = self.uplink_bps {
                let bytes = (self.size_of)(&msg);
                depart += SimDuration::from_secs_f64(bytes as f64 * 8.0 / bw);
            }
            self.send(from, to, msg, depart);
        }
        depart
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: M, depart: SimTime) {
        let verdict = match self.interposer.as_mut() {
            Some(hook) => hook.intercept(from, to, &msg, depart, &mut self.net_rng),
            None => Verdict::Deliver,
        };
        match verdict {
            Verdict::Deliver => self.transmit(from, to, msg, depart, SimDuration::ZERO),
            Verdict::Drop => {
                self.stats.inc("adv.dropped", 1);
            }
            Verdict::Delay(extra) => {
                self.stats.inc("adv.delayed", 1);
                self.transmit(from, to, msg, depart, extra);
            }
            Verdict::Duplicate { copies, gap } => {
                self.stats.inc("adv.duplicated", copies as u64);
                for i in 0..=copies {
                    let extra = SimDuration::from_nanos(gap.as_nanos().saturating_mul(i as u64));
                    self.transmit(from, to, msg.clone(), depart, extra);
                }
            }
        }
    }

    /// Hand one message to the network model and schedule its delivery
    /// (`extra` is adversarial delay on top of the modelled latency).
    /// Traffic stats count here — per message the network actually
    /// carries — so adversary-dropped messages are not counted as sent
    /// and adversary-duplicated copies are.
    fn transmit(&mut self, from: NodeId, to: NodeId, msg: M, depart: SimTime, extra: SimDuration) {
        let bytes = (self.size_of)(&msg);
        self.stats.inc("net.messages_sent", 1);
        self.stats.inc("net.bytes_sent", bytes as u64);
        match self.network.transit(from, to, bytes, depart, &mut self.net_rng) {
            Some(latency) => {
                let class = (self.classify)(&msg);
                self.push(depart + latency + extra, to, EventKind::Deliver { from, msg, class });
            }
            None => {
                self.stats.inc("net.messages_lost", 1);
            }
        }
    }
}

/// Runtime services an actor needs when it runs *outside* the simulation
/// kernel — the seam that lets the same replica code drive real sockets.
///
/// The simulator provides these services through its internal kernel; a real
/// deployment (e.g. `ahl-net`'s `NodeRuntime`) implements this trait over
/// wall-clock time, OS threads, and a TCP transport. An actor cannot tell
/// the difference: every [`Ctx`] method behaves identically, which is the
/// "production code runs unmodified" contract.
pub trait Host {
    /// Current time. In a real deployment this is wall-clock time encoded
    /// as a [`SimTime`] (nanoseconds since an epoch the host chooses).
    fn now(&self) -> SimTime;
    /// Number of logical nodes known to the host (committee + clients).
    fn num_nodes(&self) -> usize;
    /// Schedule an `on_timer(kind)` callback for `node` after `delay`.
    fn set_timer(&mut self, node: NodeId, delay: SimDuration, kind: u64);
    /// Deterministic per-node random number generator.
    fn rng(&mut self, node: NodeId) -> &mut SmallRng;
    /// The host's statistics store.
    fn stats(&mut self) -> &mut Stats;
    /// Request shutdown of the hosting runtime.
    fn halt(&mut self);
}

/// Where a [`Ctx`] routes its backend calls: the simulation kernel, or an
/// external [`Host`] runtime.
enum CtxBackend<'a, M> {
    Sim(&'a mut Kernel<M>),
    Host(&'a mut dyn Host),
}

/// Handle passed to actor callbacks for interacting with the simulation
/// (or, via [`Host`], with a real node runtime).
pub struct Ctx<'a, M> {
    backend: CtxBackend<'a, M>,
    node: NodeId,
    cpu_used: SimDuration,
    outbox: Vec<(NodeId, M)>,
}

impl<'a, M: Clone> Ctx<'a, M> {
    fn for_sim(kernel: &'a mut Kernel<M>, node: NodeId) -> Self {
        Ctx {
            backend: CtxBackend::Sim(kernel),
            node,
            cpu_used: SimDuration::ZERO,
            outbox: Vec::new(),
        }
    }

    /// Build a context backed by an external [`Host`] runtime, for driving
    /// an actor outside the simulator. Collect the effects with
    /// [`Ctx::finish`] after the actor callback returns.
    pub fn for_host(host: &'a mut dyn Host, node: NodeId) -> Self {
        Ctx {
            backend: CtxBackend::Host(host),
            node,
            cpu_used: SimDuration::ZERO,
            outbox: Vec::new(),
        }
    }

    /// Consume the context, returning the CPU time the handler charged and
    /// the messages it queued for sending (host runtimes deliver these
    /// through their transport).
    pub fn finish(self) -> (SimDuration, Vec<(NodeId, M)>) {
        (self.cpu_used, self.outbox)
    }

    /// Current simulation time (start of this handler invocation).
    pub fn now(&self) -> SimTime {
        match &self.backend {
            CtxBackend::Sim(k) => k.now,
            CtxBackend::Host(h) => h.now(),
        }
    }

    /// This actor's node id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the simulation.
    pub fn num_nodes(&self) -> usize {
        match &self.backend {
            CtxBackend::Sim(k) => k.nodes.len(),
            CtxBackend::Host(h) => h.num_nodes(),
        }
    }

    /// Send `msg` to `to`. The message departs when this handler finishes
    /// (i.e. after the CPU time consumed so far) and arrives after the
    /// network latency; it may be dropped by the network or by the
    /// receiver's bounded queue.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Send `msg` to every node in `targets` except self.
    pub fn multicast(&mut self, targets: impl IntoIterator<Item = NodeId>, msg: M) {
        for t in targets {
            if t != self.node {
                self.outbox.push((t, msg.clone()));
            }
        }
    }

    /// Charge `d` of CPU time to this node. Subsequent messages will not be
    /// processed until the accumulated cost has elapsed.
    pub fn consume_cpu(&mut self, d: SimDuration) {
        self.cpu_used += d;
    }

    /// Schedule [`Actor::on_timer`] with `kind` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u64) {
        match &mut self.backend {
            CtxBackend::Sim(k) => {
                let at = k.now + delay;
                k.push(at, self.node, EventKind::Timer { kind });
            }
            CtxBackend::Host(h) => h.set_timer(self.node, delay, kind),
        }
    }

    /// Deterministic per-node random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        match &mut self.backend {
            CtxBackend::Sim(k) => &mut k.nodes[self.node].rng,
            CtxBackend::Host(h) => h.rng(self.node),
        }
    }

    /// Mutable access to the run's statistics store.
    pub fn stats(&mut self) -> &mut Stats {
        match &mut self.backend {
            CtxBackend::Sim(k) => &mut k.stats,
            CtxBackend::Host(h) => h.stats(),
        }
    }

    /// Stamp a flight-recorder event for this node at the current time.
    /// `id` identifies the request / transaction / session; see
    /// [`crate::trace::Phase`] for the chain semantics.
    pub fn trace(&mut self, id: u64, phase: crate::trace::Phase) {
        let now = self.now();
        let node = self.node;
        self.stats().trace(now, node, id, phase);
    }

    /// Stop the simulation after the current event.
    pub fn halt(&mut self) {
        match &mut self.backend {
            CtxBackend::Sim(k) => k.halted = true,
            CtxBackend::Host(h) => h.halt(),
        }
    }
}

/// Builder/owner of a simulation run.
pub struct Sim<M: Clone> {
    actors: Vec<Box<dyn Actor<Msg = M>>>,
    kernel: Kernel<M>,
    started: bool,
}

/// Everything needed to construct a [`Sim`].
pub struct SimConfig<M> {
    /// Master seed; all per-node and network RNG streams derive from it.
    pub seed: u64,
    /// Network model shared by all nodes.
    pub network: Box<dyn Network>,
    /// Queue layout used for nodes that do not pass their own
    /// [`QueueConfig`] to [`Sim::add_actor`].
    pub default_queues: QueueConfig,
    /// Message classifier for queue routing.
    pub classify: fn(&M) -> MsgClass,
    /// Serialized size of a message in bytes (for bandwidth modelling and
    /// traffic stats).
    pub size_of: fn(&M) -> usize,
    /// Sender uplink bandwidth (bits/s); `None` disables sender-side
    /// serialization occupancy.
    pub uplink_bps: Option<f64>,
    /// Abort threshold on total processed events (guards against livelock in
    /// buggy experiments; generous default).
    pub max_events: u64,
    /// Per-node flight-recorder ring capacity (`0` keeps no events; phase
    /// histograms still accumulate). See [`crate::trace::FlightRecorder`].
    pub trace_capacity: usize,
}

impl<M> SimConfig<M> {
    /// Reasonable defaults: uniform 1 ms network, unbounded shared queue,
    /// everything classified as consensus, 256-byte messages.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            network: Box::new(UniformNetwork::new(SimDuration::from_millis(1))),
            default_queues: QueueConfig::unbounded(),
            classify: |_| MsgClass::CONSENSUS,
            size_of: |_| 256,
            uplink_bps: None,
            max_events: 500_000_000,
            trace_capacity: crate::trace::FlightRecorder::DEFAULT_CAPACITY,
        }
    }
}

impl<M: Clone> Sim<M> {
    /// Create a simulation from `config`.
    pub fn new(config: SimConfig<M>) -> Self {
        Sim {
            actors: Vec::new(),
            kernel: Kernel {
                now: SimTime::ZERO,
                master_seed: config.seed,
                next_seq: 0,
                events: BinaryHeap::new(),
                nodes: Vec::new(),
                network: config.network,
                interposer: None,
                net_rng: SmallRng::seed_from_u64(derive_seed(config.seed, u64::MAX)),
                classify: config.classify,
                size_of: config.size_of,
                uplink_bps: config.uplink_bps,
                stats: {
                    let mut s = Stats::new();
                    s.recorder_mut().set_capacity(config.trace_capacity);
                    s
                },
                halted: false,
                events_processed: 0,
                max_events: config.max_events,
            },
            started: false,
        }
    }

    /// Add an actor; returns its [`NodeId`]. Uses the default queue config.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<Msg = M>>, queues: QueueConfig) -> NodeId {
        let id = self.actors.len();
        let nqueues = queues.capacities.len();
        self.actors.push(actor);
        self.kernel.nodes.push(NodeRt {
            queues: (0..nqueues).map(|_| VecDeque::new()).collect(),
            queue_cfg: queues,
            busy_until: SimTime::ZERO,
            processing_scheduled: false,
            rr_cursor: 0,
            rng: SmallRng::seed_from_u64(derive_seed(self.kernel.master_seed, id as u64)),
        });
        id
    }

    /// Install an adversarial interposition hook on the message bus
    /// (consulted for every send before the network model; see
    /// [`crate::adversary`]). Replaces any previous hook.
    pub fn set_interposer(&mut self, hook: Box<dyn Interpose<M>>) {
        self.kernel.interposer = Some(hook);
    }

    /// Inject a message from outside the actor set (e.g. a test harness).
    pub fn inject(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        let class = (self.kernel.classify)(&msg);
        self.kernel.push(at, to, EventKind::Deliver { from, msg, class });
    }

    /// Immutable access to collected statistics.
    pub fn stats(&self) -> &Stats {
        &self.kernel.stats
    }

    /// Mutable access to collected statistics (for harness annotations).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.kernel.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.now
    }

    /// Number of actors added so far (the next `add_actor` returns this id).
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.kernel.events_processed
    }

    /// Borrow an actor back (for post-run inspection). Panics on bad id.
    pub fn actor(&self, id: NodeId) -> &dyn Actor<Msg = M> {
        self.actors[id].as_ref()
    }

    /// Mutably borrow an actor (for test instrumentation).
    pub fn actor_mut(&mut self, id: NodeId) -> &mut (dyn Actor<Msg = M> + 'static) {
        self.actors[id].as_mut()
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.actors.len() {
            let mut ctx = Ctx::for_sim(&mut self.kernel, id);
            self.actors[id].on_start(&mut ctx);
            let (cpu, outbox) = ctx.finish();
            let done = self.kernel.now + cpu;
            let sent = self.kernel.flush_outbox(id, outbox, done);
            self.kernel.nodes[id].busy_until = sent;
        }
    }

    /// Run until the event queue is exhausted, `until` is reached, or an
    /// actor halts the simulation. Returns the time the run stopped.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        self.start_if_needed();
        while !self.kernel.halted {
            let Some(ev) = self.kernel.events.peek() else {
                break;
            };
            if ev.time > until {
                self.kernel.now = until;
                break;
            }
            let ev = self.kernel.events.pop().expect("peeked event exists");
            self.kernel.now = ev.time;
            self.kernel.events_processed += 1;
            assert!(
                self.kernel.events_processed <= self.kernel.max_events,
                "simulation exceeded max_events = {} (possible livelock)",
                self.kernel.max_events
            );
            self.dispatch(ev);
        }
        self.kernel.now
    }

    /// Run to quiescence (no events left).
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    fn dispatch(&mut self, ev: Event<M>) {
        let node = ev.node;
        match ev.kind {
            EventKind::Deliver { from, msg, class } => {
                let rt = &mut self.kernel.nodes[node];
                let q = (rt.queue_cfg.route)(class);
                debug_assert!(q < rt.queues.len(), "queue route out of range");
                if rt.queues[q].len() >= rt.queue_cfg.capacities[q] {
                    self.kernel.stats.inc("queue.dropped", 1);
                    if class == MsgClass::CONSENSUS {
                        self.kernel.stats.inc("queue.dropped_consensus", 1);
                    } else {
                        self.kernel.stats.inc("queue.dropped_request", 1);
                    }
                    return;
                }
                rt.queues[q].push_back((from, msg));
                if !rt.processing_scheduled {
                    rt.processing_scheduled = true;
                    let at = rt.busy_until.max(self.kernel.now);
                    self.kernel.push(at, node, EventKind::ProcessNext);
                }
            }
            EventKind::ProcessNext => {
                let rt = &mut self.kernel.nodes[node];
                let Some((from, msg)) = rt.pop_next() else {
                    rt.processing_scheduled = false;
                    return;
                };
                let mut ctx = Ctx::for_sim(&mut self.kernel, node);
                self.actors[node].on_message(from, msg, &mut ctx);
                let (cpu, outbox) = ctx.finish();
                let done = self.kernel.now + cpu;
                let sent = self.kernel.flush_outbox(node, outbox, done);
                let rt = &mut self.kernel.nodes[node];
                rt.busy_until = sent;
                if rt.total_queued() > 0 {
                    self.kernel.push(sent, node, EventKind::ProcessNext);
                } else {
                    rt.processing_scheduled = false;
                }
            }
            EventKind::Timer { kind } => {
                let mut ctx = Ctx::for_sim(&mut self.kernel, node);
                self.actors[node].on_timer(kind, &mut ctx);
                let (cpu, outbox) = ctx.finish();
                let done = self.kernel.now + cpu;
                let sent = self.kernel.flush_outbox(node, outbox, done);
                let rt = &mut self.kernel.nodes[node];
                rt.busy_until = rt.busy_until.max(sent);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Ping {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: NodeId,
        rounds: u32,
        got: Vec<u32>,
    }

    impl Actor for Pinger {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            if ctx.id() == 0 {
                ctx.send(self.peer, Ping::Ping(0));
            }
        }
        fn on_message(&mut self, from: NodeId, msg: Ping, ctx: &mut Ctx<'_, Ping>) {
            match msg {
                Ping::Ping(i) => {
                    ctx.consume_cpu(SimDuration::from_micros(100));
                    ctx.send(from, Ping::Pong(i));
                }
                Ping::Pong(i) => {
                    self.got.push(i);
                    if i + 1 < self.rounds {
                        ctx.send(from, Ping::Ping(i + 1));
                    } else {
                        ctx.stats().inc("done", 1);
                    }
                }
            }
        }
    }

    fn two_pingers(rounds: u32) -> Sim<Ping> {
        let mut sim = Sim::new(SimConfig::new(7));
        sim.add_actor(
            Box::new(Pinger { peer: 1, rounds, got: vec![] }),
            QueueConfig::unbounded(),
        );
        sim.add_actor(
            Box::new(Pinger { peer: 0, rounds, got: vec![] }),
            QueueConfig::unbounded(),
        );
        sim
    }

    #[test]
    fn ping_pong_completes_and_time_advances() {
        let mut sim = two_pingers(10);
        let end = sim.run();
        assert_eq!(sim.stats().counter("done"), 1);
        // 10 round trips at 2 ms RTT + 100 us server CPU each.
        let expected_ns = 10 * (2_000_000 + 100_000);
        assert_eq!(end.as_nanos(), expected_ns);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = two_pingers(50);
        let mut b = two_pingers(50);
        assert_eq!(a.run(), b.run());
        assert_eq!(a.events_processed(), b.events_processed());
    }

    #[test]
    fn run_until_stops_early() {
        let mut sim = two_pingers(1000);
        let t = sim.run_until(SimTime(5_000_000));
        assert!(t.as_nanos() <= 5_000_000);
        assert_eq!(sim.stats().counter("done"), 0);
    }

    /// A sender that floods its peer faster than the peer can process.
    struct Flooder {
        peer: NodeId,
        n: u32,
    }
    struct SlowSink;

    impl Actor for Flooder {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            for i in 0..self.n {
                ctx.send(self.peer, Ping::Ping(i));
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: Ping, _ctx: &mut Ctx<'_, Ping>) {}
    }
    impl Actor for SlowSink {
        type Msg = Ping;
        fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Ctx<'_, Ping>) {
            ctx.consume_cpu(SimDuration::from_millis(10));
            ctx.stats().inc("sink.processed", 1);
        }
    }

    #[test]
    fn bounded_queue_drops_overflow() {
        let mut sim: Sim<Ping> = Sim::new(SimConfig::new(1));
        sim.add_actor(Box::new(Flooder { peer: 1, n: 100 }), QueueConfig::unbounded());
        sim.add_actor(Box::new(SlowSink), QueueConfig::shared(8));
        sim.run();
        // All messages arrive at the same instant; the queue keeps exactly
        // its capacity of 8 (the first arrival schedules processing but
        // remains queued until the ProcessNext event runs).
        assert_eq!(sim.stats().counter("sink.processed"), 8);
        assert_eq!(sim.stats().counter("queue.dropped"), 92);
    }

    #[test]
    fn split_queues_isolate_consensus_from_request_flood() {
        fn classify(m: &Ping) -> MsgClass {
            match m {
                Ping::Ping(_) => MsgClass::REQUEST,
                Ping::Pong(_) => MsgClass::CONSENSUS,
            }
        }
        let mut cfg = SimConfig::new(1);
        cfg.classify = classify;
        let mut sim: Sim<Ping> = Sim::new(cfg);
        struct Mixed {
            peer: NodeId,
        }
        impl Actor for Mixed {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
                for i in 0..100 {
                    ctx.send(self.peer, Ping::Ping(i)); // request flood
                }
                for i in 0..4 {
                    ctx.send(self.peer, Ping::Pong(i)); // consensus traffic
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: Ping, _c: &mut Ctx<'_, Ping>) {}
        }
        struct Counter;
        impl Actor for Counter {
            type Msg = Ping;
            fn on_message(&mut self, _f: NodeId, m: Ping, ctx: &mut Ctx<'_, Ping>) {
                ctx.consume_cpu(SimDuration::from_millis(1));
                match m {
                    Ping::Ping(_) => ctx.stats().inc("got.request", 1),
                    Ping::Pong(_) => ctx.stats().inc("got.consensus", 1),
                }
            }
        }
        sim.add_actor(Box::new(Mixed { peer: 1 }), QueueConfig::unbounded());
        sim.add_actor(Box::new(Counter), QueueConfig::split(64, 8));
        sim.run();
        // Consensus queue never overflows even though requests flood.
        assert_eq!(sim.stats().counter("got.consensus"), 4);
        assert_eq!(sim.stats().counter("got.request"), 8);
        assert_eq!(sim.stats().counter("queue.dropped_request"), 92);
        assert_eq!(sim.stats().counter("queue.dropped_consensus"), 0);
    }

    struct TimerActor {
        fired: Vec<u64>,
    }
    impl Actor for TimerActor {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(SimDuration::from_millis(5), 42);
            ctx.set_timer(SimDuration::from_millis(1), 7);
        }
        fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Ctx<'_, ()>) {}
        fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, ()>) {
            self.fired.push(kind);
            let now = ctx.now();
            ctx.stats().record_point("fired", now, kind as f64);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim: Sim<()> = Sim::new(SimConfig::new(3));
        sim.add_actor(Box::new(TimerActor { fired: vec![] }), QueueConfig::unbounded());
        sim.run();
        let pts = sim.stats().series("fired");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].1 as u64, 7);
        assert_eq!(pts[1].1 as u64, 42);
        assert_eq!(pts[0].0.as_millis(), 1);
        assert_eq!(pts[1].0.as_millis(), 5);
    }

    #[test]
    fn cpu_serializes_processing() {
        // Two messages arriving together at a node with 10 ms CPU cost each
        // finish 10 ms apart.
        struct Stamp;
        impl Actor for Stamp {
            type Msg = Ping;
            fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Ctx<'_, Ping>) {
                ctx.consume_cpu(SimDuration::from_millis(10));
                let t = ctx.now();
                ctx.stats().record_point("start", t, 0.0);
            }
        }
        let mut sim: Sim<Ping> = Sim::new(SimConfig::new(9));
        sim.add_actor(Box::new(Flooder { peer: 1, n: 2 }), QueueConfig::unbounded());
        sim.add_actor(Box::new(Stamp), QueueConfig::unbounded());
        sim.run();
        let pts = sim.stats().series("start");
        assert_eq!(pts.len(), 2);
        let gap = pts[1].0.since(pts[0].0);
        assert_eq!(gap.as_millis(), 10);
    }

    #[test]
    fn inject_delivers() {
        let mut sim = two_pingers(1);
        sim.inject(SimTime(100), 1, 0, Ping::Pong(0));
        sim.run();
        // One completion from the natural ping-pong plus one from the
        // injected pong.
        assert_eq!(sim.stats().counter("done"), 2);
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn max_events_guard_trips() {
        struct Loopy;
        impl Actor for Loopy {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, _k: u64, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_nanos(1), 0);
            }
        }
        let mut cfg = SimConfig::new(0);
        cfg.max_events = 1000;
        let mut sim: Sim<()> = Sim::new(cfg);
        sim.add_actor(Box::new(Loopy), QueueConfig::unbounded());
        sim.run();
    }

    #[test]
    fn uplink_serializes_broadcast() {
        // A node broadcasting 1 KB messages at 1 Mbps uplink delivers them
        // 8 ms apart (plus the 0 network latency configured here).
        struct Bcast;
        impl Actor for Bcast {
            type Msg = Ping;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
                if ctx.id() == 0 {
                    for peer in 1..ctx.num_nodes() {
                        ctx.send(peer, Ping::Ping(0));
                    }
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Ctx<'_, Ping>) {
                let now = ctx.now();
                ctx.stats().record_point("arrive", now, 0.0);
            }
        }
        let mut cfg = SimConfig::new(5);
        cfg.uplink_bps = Some(1e6);
        cfg.size_of = |_| 1_000;
        cfg.network = Box::new(UniformNetwork::new(SimDuration::ZERO));
        let mut sim: Sim<Ping> = Sim::new(cfg);
        for _ in 0..4 {
            sim.add_actor(Box::new(Bcast), QueueConfig::unbounded());
        }
        sim.run();
        let pts = sim.stats().series("arrive");
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].0.as_millis(), 8);
        assert_eq!(pts[1].0.as_millis(), 16);
        assert_eq!(pts[2].0.as_millis(), 24);
    }

    #[test]
    fn partition_drops_cross_cut_messages_then_heals() {
        use crate::adversary::{FaultRule, ScriptedFaults};
        // Pingers 0 <-> 1 partitioned for the first 3 ms: the opening ping
        // is dropped; an injected restart after the heal completes rounds.
        let mut sim = two_pingers(3);
        sim.set_interposer(Box::new(ScriptedFaults::new(vec![FaultRule::partition(
            SimTime::ZERO,
            SimTime(3_000_000),
            vec![0],
            vec![1],
        )])));
        sim.inject(SimTime(5_000_000), 1, 0, Ping::Pong(0));
        sim.run();
        assert_eq!(sim.stats().counter("adv.dropped"), 1, "opening ping dropped");
        // The injected pong restarts the exchange post-heal; rounds finish.
        assert_eq!(sim.stats().counter("done"), 1);
    }

    #[test]
    fn duplicates_are_delivered_and_counted() {
        use crate::adversary::{FaultMatch, FaultRule, ScriptedFaults};
        let mut sim: Sim<Ping> = Sim::new(SimConfig::new(4));
        sim.add_actor(Box::new(Flooder { peer: 1, n: 5 }), QueueConfig::unbounded());
        struct Count;
        impl Actor for Count {
            type Msg = Ping;
            fn on_message(&mut self, _f: NodeId, _m: Ping, ctx: &mut Ctx<'_, Ping>) {
                ctx.stats().inc("got", 1);
            }
        }
        sim.add_actor(Box::new(Count), QueueConfig::unbounded());
        sim.set_interposer(Box::new(ScriptedFaults::new(vec![FaultRule::duplicate(
            SimTime::ZERO,
            SimTime::MAX,
            FaultMatch::any(),
            2,
            SimDuration::from_millis(1),
        )])));
        sim.run();
        assert_eq!(sim.stats().counter("adv.duplicated"), 10);
        assert_eq!(sim.stats().counter("got"), 15, "5 originals + 10 copies");
    }

    #[test]
    fn delay_window_reorders_but_loses_nothing() {
        use crate::adversary::{FaultMatch, FaultRule, ScriptedFaults};
        let mut sim: Sim<Ping> = Sim::new(SimConfig::new(8));
        sim.add_actor(Box::new(Flooder { peer: 1, n: 20 }), QueueConfig::unbounded());
        struct Sink;
        impl Actor for Sink {
            type Msg = Ping;
            fn on_message(&mut self, _f: NodeId, m: Ping, ctx: &mut Ctx<'_, Ping>) {
                if let Ping::Ping(i) = m {
                    let now = ctx.now();
                    ctx.stats().record_point("order", now, i as f64);
                }
            }
        }
        sim.add_actor(Box::new(Sink), QueueConfig::unbounded());
        // Delay only even-numbered pings: odd ones overtake them.
        sim.set_interposer(Box::new(ScriptedFaults::new(vec![FaultRule::delay(
            SimTime::ZERO,
            SimTime::MAX,
            FaultMatch::msgs(|m: &Ping| matches!(m, Ping::Ping(i) if i % 2 == 0)),
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
        )])));
        sim.run();
        let pts = sim.stats().series("order");
        assert_eq!(pts.len(), 20, "delays lose nothing");
        // Every odd ping arrived before every even one (5 ms > spread).
        let first_even = pts.iter().position(|(_, v)| (*v as u64).is_multiple_of(2)).unwrap();
        assert!(
            pts[..first_even].iter().all(|(_, v)| !(*v as u64).is_multiple_of(2)),
            "odd pings overtake delayed evens: {pts:?}"
        );
        assert_eq!(sim.stats().counter("adv.delayed"), 10);
    }

    #[test]
    fn halt_stops_run() {
        struct Halter;
        impl Actor for Halter {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
                ctx.set_timer(SimDuration::from_millis(2), 1);
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, ()>) {
                if kind == 0 {
                    ctx.halt();
                } else {
                    ctx.stats().inc("should_not_run", 1);
                }
            }
        }
        let mut sim: Sim<()> = Sim::new(SimConfig::new(0));
        sim.add_actor(Box::new(Halter), QueueConfig::unbounded());
        sim.run();
        assert_eq!(sim.stats().counter("should_not_run"), 0);
    }
}
