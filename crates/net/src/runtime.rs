//! [`NodeRuntime`] — drives unmodified simkit [`Actor`]s over a real
//! [`Transport`].
//!
//! The runtime is the deployment-side implementation of the simulator's
//! event loop: it owns one or more local actors (a replica, or a fleet of
//! clients in a driver process), delivers inbound transport packets to
//! `on_message`, fires `on_timer` callbacks from a wall-clock timer heap,
//! and routes every `Ctx::send` either to another local actor (loopback)
//! or out through the transport. Actors observe the environment only
//! through [`Ctx`], whose [`ahl_simkit::Host`] backend this module
//! provides — so the exact code the deterministic simulator exercises
//! runs here unmodified.
//!
//! Time is wall-clock nanoseconds since the UNIX epoch encoded as
//! [`SimTime`]: monotone enough for timers, and comparable across
//! processes on one host, which keeps request-TTL and latency math
//! working in a localhost cluster.

use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::cmp::Reverse;
use std::time::Duration;

use ahl_crypto::Hash;
use ahl_simkit::rng::derive_seed;
use ahl_simkit::{Actor, Ctx, Host, NodeId, SimDuration, SimTime, Stats};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::transport::{NetEvent, Transport};
use crate::wire::{Control, Packet};

/// Wall-clock now as a [`SimTime`] (nanoseconds since the UNIX epoch).
pub fn wall_now() -> SimTime {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock before UNIX epoch")
        .as_nanos() as u64;
    SimTime::ZERO + SimDuration::from_nanos(nanos)
}

/// Answer to a [`Control::Status`] probe, extracted from a local actor by
/// the status hook ([`NodeRuntime::set_status_fn`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatusReport {
    /// Highest executed sequence/height.
    pub height: u64,
    /// State digest at that height.
    pub digest: Hash,
    /// Transactions committed so far.
    pub committed: u64,
}

type StatusFn<M> = Box<dyn FnMut(&dyn Actor<Msg = M>) -> Option<StatusReport>>;

/// [`Host`] state shared with actors through `Ctx::for_host`.
struct HostCore {
    num_nodes: usize,
    master_seed: u64,
    stats: Stats,
    rngs: HashMap<NodeId, SmallRng>,
    /// Timers requested during the current callback; the runtime drains
    /// them into its heap after the callback returns.
    pending_timers: Vec<(NodeId, SimDuration, u64)>,
    halted: bool,
}

impl Host for HostCore {
    fn now(&self) -> SimTime {
        wall_now()
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn set_timer(&mut self, node: NodeId, delay: SimDuration, kind: u64) {
        self.pending_timers.push((node, delay, kind));
    }

    fn rng(&mut self, node: NodeId) -> &mut SmallRng {
        let seed = derive_seed(self.master_seed, node as u64);
        self.rngs.entry(node).or_insert_with(|| SmallRng::seed_from_u64(seed))
    }

    fn stats(&mut self) -> &mut Stats {
        &mut self.stats
    }

    fn halt(&mut self) {
        self.halted = true;
    }
}

/// Heap entry ordered by (fire time, insertion sequence).
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    at: SimTime,
    seq: u64,
    node: NodeId,
    kind: u64,
}

/// Why [`NodeRuntime::run_for`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stopped {
    /// The wall-clock budget elapsed.
    Deadline,
    /// An actor called `Ctx::halt` or a [`Control::Shutdown`] arrived.
    Halted,
}

/// The real-node event loop: local actors + a transport + a timer heap.
pub struct NodeRuntime<M: Clone> {
    transport: Box<dyn Transport<M>>,
    actors: BTreeMap<NodeId, Box<dyn Actor<Msg = M>>>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    core: HostCore,
    /// Loopback deliveries between local actors, drained before any
    /// transport receive (matches the simulator's same-instant ordering
    /// closely enough for correctness — actors tolerate reordering).
    local_queue: VecDeque<(NodeId, NodeId, M)>,
    status_fn: Option<StatusFn<M>>,
    status_replies: HashMap<NodeId, StatusReport>,
    started: bool,
}

impl<M: Clone + 'static> NodeRuntime<M> {
    /// Build a runtime over `transport`. `num_nodes` is the cluster-wide
    /// actor count (what `Ctx::num_nodes` reports); `seed` derives the
    /// per-actor RNG streams exactly as the simulator does.
    pub fn new(transport: Box<dyn Transport<M>>, num_nodes: usize, seed: u64) -> Self {
        NodeRuntime {
            transport,
            actors: BTreeMap::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            core: HostCore {
                num_nodes,
                master_seed: seed,
                stats: Stats::new(),
                rngs: HashMap::new(),
                pending_timers: Vec::new(),
                halted: false,
            },
            local_queue: VecDeque::new(),
            status_fn: None,
            status_replies: HashMap::new(),
            started: false,
        }
    }

    /// Host actor `id` in this process.
    pub fn add_actor(&mut self, id: NodeId, actor: Box<dyn Actor<Msg = M>>) {
        self.actors.insert(id, actor);
    }

    /// Install the hook answering [`Control::Status`] probes (typically a
    /// downcast through [`Actor::as_any`] to the concrete replica type).
    pub fn set_status_fn(&mut self, f: StatusFn<M>) {
        self.status_fn = Some(f);
    }

    /// The lowest-numbered local actor id (this process's identity on the
    /// control plane).
    pub fn primary(&self) -> Option<NodeId> {
        self.actors.keys().next().copied()
    }

    /// Immutable access to a hosted actor (post-run inspection).
    pub fn actor(&self, id: NodeId) -> Option<&dyn Actor<Msg = M>> {
        self.actors.get(&id).map(|a| a.as_ref())
    }

    /// The runtime's statistics store (actors record into it via
    /// `Ctx::stats`, exactly as in the simulator).
    pub fn stats(&self) -> &Stats {
        &self.core.stats
    }

    /// Transport backend (for counter snapshots).
    pub fn transport(&self) -> &dyn Transport<M> {
        self.transport.as_ref()
    }

    /// Status replies received so far, keyed by the reporting process's
    /// primary node id.
    pub fn status_replies(&self) -> &HashMap<NodeId, StatusReport> {
        &self.status_replies
    }

    /// Forget previously collected status replies.
    pub fn clear_status_replies(&mut self) {
        self.status_replies.clear();
    }

    /// Send a control message from this process's primary actor id.
    pub fn send_control(&mut self, to: NodeId, ctl: Control) {
        let from = self.primary().unwrap_or(0);
        self.transport.send(from, to, Packet::Control(ctl));
    }

    /// True once an actor halted or a shutdown was received.
    pub fn halted(&self) -> bool {
        self.core.halted
    }

    /// Run each actor's `on_start` once (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let ids: Vec<NodeId> = self.actors.keys().copied().collect();
        for id in ids {
            self.dispatch(id, |actor, ctx| actor.on_start(ctx));
        }
    }

    /// Pump the event loop for `budget` of wall-clock time (or until
    /// halted). Calls [`NodeRuntime::start`] first if needed.
    pub fn run_for(&mut self, budget: Duration) -> Stopped {
        self.start();
        let deadline = std::time::Instant::now() + budget;
        loop {
            if self.core.halted {
                return Stopped::Halted;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Stopped::Deadline;
            }

            // Local loopback deliveries first.
            if let Some((from, to, msg)) = self.local_queue.pop_front() {
                self.dispatch(to, |actor, ctx| actor.on_message(from, msg, ctx));
                continue;
            }

            // Fire due timers.
            let wall = wall_now();
            if let Some(Reverse(top)) = self.timers.peek() {
                if top.at <= wall {
                    let Reverse(t) = self.timers.pop().expect("peeked");
                    if self.actors.contains_key(&t.node) {
                        self.dispatch(t.node, |actor, ctx| actor.on_timer(t.kind, ctx));
                    }
                    continue;
                }
            }

            // Sleep until the next timer, capped for responsiveness.
            let until_timer = match self.timers.peek() {
                Some(Reverse(t)) => Duration::from_nanos(t.at.since(wall).as_nanos()),
                None => Duration::from_millis(50),
            };
            let wait = until_timer.min(deadline - now).min(Duration::from_millis(50));
            match self.transport.recv_timeout(wait) {
                Some(NetEvent::Packet { from, to, body }) => self.deliver(from, to, body),
                Some(NetEvent::PeerUp(_)) => self.core.stats.inc("net.peer_up", 1),
                Some(NetEvent::PeerDown(_)) => self.core.stats.inc("net.peer_down", 1),
                None => {}
            }
        }
    }

    fn deliver(&mut self, from: NodeId, to: NodeId, body: Packet<M>) {
        match body {
            Packet::App(msg) => {
                if self.actors.contains_key(&to) {
                    self.dispatch(to, |actor, ctx| actor.on_message(from, msg, ctx));
                } else {
                    self.core.stats.inc("net.misrouted", 1);
                }
            }
            Packet::Control(ctl) => self.handle_control(from, ctl),
        }
    }

    fn handle_control(&mut self, from: NodeId, ctl: Control) {
        match ctl {
            Control::Status => {
                let Some(primary) = self.primary() else { return };
                let report = self
                    .status_fn
                    .as_mut()
                    .and_then(|f| self.actors.get(&primary).and_then(|a| f(a.as_ref())));
                if let Some(r) = report {
                    self.transport.send(
                        primary,
                        from,
                        Packet::Control(Control::StatusReply {
                            height: r.height,
                            digest: r.digest,
                            committed: r.committed,
                        }),
                    );
                }
            }
            Control::StatusReply { height, digest, committed } => {
                self.status_replies.insert(from, StatusReport { height, digest, committed });
            }
            Control::Shutdown => {
                self.core.halted = true;
            }
        }
    }

    /// Run one actor callback, then route its outbox and arm its timers.
    fn dispatch(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut Box<dyn Actor<Msg = M>>, &mut Ctx<'_, M>),
    ) {
        let Some(mut actor) = self.actors.remove(&node) else { return };
        let mut ctx = Ctx::for_host(&mut self.core, node);
        f(&mut actor, &mut ctx);
        let (_cpu, outbox) = ctx.finish();
        self.actors.insert(node, actor);
        for (to, msg) in outbox {
            if self.actors.contains_key(&to) {
                self.local_queue.push_back((node, to, msg));
            } else {
                self.transport.send(node, to, Packet::App(msg));
            }
        }
        for (n, delay, kind) in std::mem::take(&mut self.core.pending_timers) {
            let at = wall_now() + delay;
            let seq = self.timer_seq;
            self.timer_seq += 1;
            self.timers.push(Reverse(TimerEntry { at, seq, node: n, kind }));
        }
    }

    /// Shut the transport down (joins its threads).
    pub fn shutdown_transport(&self) {
        self.transport.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MemHub;
    use crate::wire::Wire;
    use ahl_wal::codec::{Reader, Writer};
    use std::sync::Arc;

    #[derive(Clone, Debug, PartialEq)]
    struct Echo(u64);

    impl Wire for Echo {
        fn encode(&self, w: &mut Writer) {
            w.u64(self.0);
        }
        fn decode(r: &mut Reader<'_>) -> Option<Self> {
            r.u64().map(Echo)
        }
    }

    /// Replies to every message, adding one; counts into stats.
    struct Bouncer;

    impl Actor for Bouncer {
        type Msg = Echo;
        fn on_message(&mut self, from: NodeId, msg: Echo, ctx: &mut Ctx<'_, Echo>) {
            ctx.stats().inc("bounced", 1);
            if msg.0 < 5 {
                ctx.send(from, Echo(msg.0 + 1));
            } else {
                ctx.halt();
            }
        }
    }

    struct Kickoff {
        peer: NodeId,
    }

    impl Actor for Kickoff {
        type Msg = Echo;
        fn on_start(&mut self, ctx: &mut Ctx<'_, Echo>) {
            ctx.send(self.peer, Echo(0));
        }
        fn on_message(&mut self, from: NodeId, msg: Echo, ctx: &mut Ctx<'_, Echo>) {
            ctx.send(from, msg);
        }
    }

    #[test]
    fn runtime_ping_pong_over_mem_transport() {
        let hub: Arc<MemHub<Echo>> = Arc::new(MemHub::new());
        let mut a = NodeRuntime::new(Box::new(hub.endpoint(vec![0])), 2, 1);
        let mut b = NodeRuntime::new(Box::new(hub.endpoint(vec![1])), 2, 1);
        a.add_actor(0, Box::new(Kickoff { peer: 1 }));
        b.add_actor(1, Box::new(Bouncer));
        a.start();
        // Pump both runtimes until the bouncer halts.
        for _ in 0..100 {
            a.run_for(Duration::from_millis(10));
            if b.run_for(Duration::from_millis(10)) == Stopped::Halted {
                break;
            }
        }
        assert!(b.halted());
        assert_eq!(b.stats().counter("bounced"), 6, "0..=5 inclusive");
    }

    #[test]
    fn local_actors_loop_back_without_transport() {
        let hub: Arc<MemHub<Echo>> = Arc::new(MemHub::new());
        let mut rt = NodeRuntime::new(Box::new(hub.endpoint(vec![0, 1])), 2, 1);
        rt.add_actor(0, Box::new(Kickoff { peer: 1 }));
        rt.add_actor(1, Box::new(Bouncer));
        rt.run_for(Duration::from_millis(200));
        assert!(rt.halted());
        // Nothing crossed the transport: sends were loopback.
        assert_eq!(rt.transport().stats().sent, 0);
    }

    struct TimerCounter;

    impl Actor for TimerCounter {
        type Msg = Echo;
        fn on_start(&mut self, ctx: &mut Ctx<'_, Echo>) {
            ctx.set_timer(SimDuration::from_millis(5), 7);
        }
        fn on_message(&mut self, _f: NodeId, _m: Echo, _c: &mut Ctx<'_, Echo>) {}
        fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, Echo>) {
            ctx.stats().inc("fired", kind);
            if ctx.stats().counter("fired") < 21 {
                ctx.set_timer(SimDuration::from_millis(2), 7);
            }
        }
    }

    #[test]
    fn timers_fire_on_wall_clock() {
        let hub: Arc<MemHub<Echo>> = Arc::new(MemHub::new());
        let mut rt = NodeRuntime::new(Box::new(hub.endpoint(vec![0])), 1, 3);
        rt.add_actor(0, Box::new(TimerCounter));
        rt.run_for(Duration::from_millis(500));
        assert!(rt.stats().counter("fired") >= 21);
    }

    #[test]
    fn control_status_round_trip() {
        let hub: Arc<MemHub<Echo>> = Arc::new(MemHub::new());
        let mut node = NodeRuntime::new(Box::new(hub.endpoint(vec![0])), 2, 1);
        let mut driver = NodeRuntime::new(Box::new(hub.endpoint(vec![9])), 2, 1);
        node.add_actor(0, Box::new(Bouncer));
        node.set_status_fn(Box::new(|_| {
            Some(StatusReport { height: 11, digest: ahl_crypto::sha256(b"d"), committed: 40 })
        }));
        driver.add_actor(9, Box::new(Bouncer));
        driver.send_control(0, Control::Status);
        node.run_for(Duration::from_millis(50));
        driver.run_for(Duration::from_millis(50));
        let r = driver.status_replies().get(&0).expect("reply recorded");
        assert_eq!(r.height, 11);
        assert_eq!(r.committed, 40);
        // Shutdown control halts the node's loop.
        driver.send_control(0, Control::Shutdown);
        assert_eq!(node.run_for(Duration::from_millis(200)), Stopped::Halted);
    }
}
