//! # ahl-net — network simulation substrate
//!
//! Implements [`ahl_simkit::Network`] models for the two testbeds of the
//! paper's evaluation:
//!
//! * [`ClusterNetwork`] — the in-house 100-server cluster: sub-millisecond
//!   LAN latency, gigabit links.
//! * [`GcpNetwork`] — Google Cloud Platform spanning up to 8 regions with
//!   the paper's measured inter-region latency matrix (Table 3).
//! * [`LossyNetwork`] / [`PartitionedNetwork`] — wrappers adding random
//!   loss and scheduled partitions for fault-injection tests.
//!
//! Latency = propagation (matrix lookup + jitter) + serialization
//! (bytes / bandwidth).
//!
//! Beyond the simulation models, this crate is also the **real**
//! networking subsystem: the [`Transport`] trait abstracts the message
//! bus, with an in-process [`MemTransport`] backend for tests and a
//! threaded `std::net` [`TcpTransport`] backend (length-framed CRC'd
//! codec reusing the WAL framing, [`Hello`] session handshake, peer
//! table, per-peer reconnect with exponential backoff, bounded outbound
//! queues). [`NodeRuntime`] drives unmodified simkit actors over any
//! transport via the [`ahl_simkit::Host`] seam — the same replica code
//! the deterministic simulator exercises runs as N OS processes.

#![warn(missing_docs)]

pub mod gcp;
pub mod runtime;
pub mod transport;
pub mod wire;

pub use runtime::{NodeRuntime, StatusReport, Stopped};
pub use transport::{
    MemHub, MemTransport, NetEvent, TcpConfig, TcpTransport, Transport, TransportStats,
};
pub use wire::{Control, Hello, Packet, Wire};

use ahl_simkit::{Network, NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// Link parameters shared by the concrete models.
#[derive(Clone, Debug)]
pub struct LinkParams {
    /// Link bandwidth in bits per second (serialization delay = bits / bw).
    pub bandwidth_bps: f64,
    /// Multiplicative jitter: the propagation delay is scaled by a factor
    /// drawn uniformly from `[1, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            bandwidth_bps: 1e9, // 1 Gbps
            jitter: 0.1,
        }
    }
}

impl LinkParams {
    /// Serialization delay for a message of `bytes`.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    fn jittered(&self, base: SimDuration, rng: &mut SmallRng) -> SimDuration {
        if self.jitter <= 0.0 {
            base
        } else {
            base.mul_f64(1.0 + rng.gen::<f64>() * self.jitter)
        }
    }
}

/// The in-house cluster (paper §7): Xeon servers on a switched LAN.
#[derive(Clone, Debug)]
pub struct ClusterNetwork {
    /// One-way propagation delay between any two servers.
    pub base_latency: SimDuration,
    /// Link parameters.
    pub params: LinkParams,
}

impl Default for ClusterNetwork {
    fn default() -> Self {
        ClusterNetwork {
            base_latency: SimDuration::from_micros(250),
            params: LinkParams::default(),
        }
    }
}

impl ClusterNetwork {
    /// Cluster with default parameters (250 µs LAN, 1 Gbps, 10% jitter).
    pub fn new() -> Self {
        Self::default()
    }

    /// The PoET evaluation configuration (paper Appendix C.1): 50 Mbps
    /// bandwidth cap and 100 ms imposed latency.
    pub fn poet_constrained() -> Self {
        ClusterNetwork {
            base_latency: SimDuration::from_millis(100),
            params: LinkParams {
                bandwidth_bps: 50e6,
                jitter: 0.1,
            },
        }
    }
}

impl Network for ClusterNetwork {
    fn transit(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        _now: SimTime,
        rng: &mut SmallRng,
    ) -> Option<SimDuration> {
        if from == to {
            // Loopback: negligible latency, no serialization.
            return Some(SimDuration::from_micros(10));
        }
        let prop = self.params.jittered(self.base_latency, rng);
        Some(prop + self.params.serialization(bytes))
    }
}

/// Google Cloud Platform network: nodes are assigned to regions and
/// inter-region propagation follows the measured Table 3 matrix.
#[derive(Clone, Debug)]
pub struct GcpNetwork {
    /// Region index of each node (round-robin by default).
    pub region_of: Vec<usize>,
    /// Number of regions in use (4 or 8 in the paper).
    pub regions: usize,
    /// One-way intra-region latency.
    pub intra_region: SimDuration,
    /// Link parameters.
    pub params: LinkParams,
}

impl GcpNetwork {
    /// Build a GCP network for `n` nodes spread round-robin over `regions`
    /// regions (the paper uses 4 and 8).
    pub fn new(n: usize, regions: usize) -> Self {
        assert!((1..=gcp::NUM_REGIONS).contains(&regions), "1..=8 regions");
        GcpNetwork {
            region_of: (0..n).map(|i| i % regions).collect(),
            regions,
            intra_region: SimDuration::from_micros(500),
            params: LinkParams::default(),
        }
    }

    /// One-way propagation between two nodes (no jitter).
    pub fn propagation(&self, from: NodeId, to: NodeId) -> SimDuration {
        let (ra, rb) = (self.region_of[from], self.region_of[to]);
        if ra == rb {
            self.intra_region
        } else {
            // Table 3 reports round-trip times; one-way is half.
            SimDuration::from_micros_f64(gcp::rtt_ms(ra, rb) * 1000.0 / 2.0)
        }
    }

    /// Largest one-way propagation delay across the deployment — used to
    /// derive the synchrony bound Δ for the beacon protocol (the paper sets
    /// Δ to 3× the measured maximum for a 1 KB message).
    pub fn max_propagation(&self) -> SimDuration {
        let mut max = self.intra_region;
        for a in 0..self.regions {
            for b in 0..self.regions {
                if a != b {
                    let d = SimDuration::from_micros_f64(gcp::rtt_ms(a, b) * 1000.0 / 2.0);
                    if d > max {
                        max = d;
                    }
                }
            }
        }
        max
    }
}

impl Network for GcpNetwork {
    fn transit(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        _now: SimTime,
        rng: &mut SmallRng,
    ) -> Option<SimDuration> {
        if from == to {
            return Some(SimDuration::from_micros(10));
        }
        let prop = self.params.jittered(self.propagation(from, to), rng);
        Some(prop + self.params.serialization(bytes))
    }
}

/// Wrapper adding independent random message loss to any network.
pub struct LossyNetwork<N> {
    inner: N,
    /// Probability each message is dropped in transit.
    pub loss_rate: f64,
}

impl<N> LossyNetwork<N> {
    /// Wrap `inner` with loss probability `loss_rate`.
    pub fn new(inner: N, loss_rate: f64) -> Self {
        LossyNetwork { inner, loss_rate }
    }
}

impl<N: Network> Network for LossyNetwork<N> {
    fn transit(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Option<SimDuration> {
        if self.loss_rate > 0.0 && rng.gen::<f64>() < self.loss_rate {
            return None;
        }
        self.inner.transit(from, to, bytes, now, rng)
    }
}

/// A scheduled partition: messages between the two groups are dropped
/// during `[start, end)`.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Partition activation time.
    pub start: SimTime,
    /// Partition healing time.
    pub end: SimTime,
    /// Nodes on the minority side; traffic crossing the boundary drops.
    pub isolated: Vec<NodeId>,
}

/// Wrapper applying scheduled partitions (for liveness fault injection).
pub struct PartitionedNetwork<N> {
    inner: N,
    partitions: Vec<Partition>,
}

impl<N> PartitionedNetwork<N> {
    /// Wrap `inner` with the given partition schedule.
    pub fn new(inner: N, partitions: Vec<Partition>) -> Self {
        PartitionedNetwork { inner, partitions }
    }

    fn crosses(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        self.partitions.iter().any(|p| {
            now >= p.start
                && now < p.end
                && (p.isolated.contains(&from) != p.isolated.contains(&to))
        })
    }
}

impl<N: Network> Network for PartitionedNetwork<N> {
    fn transit(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        now: SimTime,
        rng: &mut SmallRng,
    ) -> Option<SimDuration> {
        if self.crosses(from, to, now) {
            return None;
        }
        self.inner.transit(from, to, bytes, now, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn cluster_latency_in_expected_range() {
        let mut net = ClusterNetwork::new();
        let mut r = rng();
        for _ in 0..100 {
            let d = net
                .transit(0, 1, 256, SimTime::ZERO, &mut r)
                .expect("no loss");
            // 250 µs base, ≤10% jitter, ~2 µs serialization.
            assert!(d.as_micros() >= 250 && d.as_micros() <= 290, "{d}");
        }
    }

    #[test]
    fn serialization_scales_with_size() {
        let mut net = ClusterNetwork {
            base_latency: SimDuration::ZERO,
            params: LinkParams { bandwidth_bps: 1e9, jitter: 0.0 },
        };
        let mut r = rng();
        let small = net.transit(0, 1, 1_000, SimTime::ZERO, &mut r).expect("ok");
        let large = net.transit(0, 1, 1_000_000, SimTime::ZERO, &mut r).expect("ok");
        assert_eq!(small.as_micros(), 8); // 8 kbit / 1 Gbps
        assert_eq!(large.as_millis(), 8); // 8 Mbit / 1 Gbps
    }

    #[test]
    fn poet_constrained_network_is_slow() {
        let mut net = ClusterNetwork::poet_constrained();
        let mut r = rng();
        // A 2 MB block at 50 Mbps takes ~320 ms serialization + 100 ms prop.
        let d = net
            .transit(0, 1, 2_000_000, SimTime::ZERO, &mut r)
            .expect("ok");
        assert!(d.as_millis() >= 420 && d.as_millis() <= 450, "{d}");
    }

    #[test]
    fn gcp_intra_vs_inter_region() {
        let mut net = GcpNetwork::new(16, 8);
        net.params.jitter = 0.0;
        let mut r = rng();
        // Nodes 0 and 8 share region 0; node 1 is in region 1.
        let intra = net.transit(0, 8, 0, SimTime::ZERO, &mut r).expect("ok");
        let inter = net.transit(0, 1, 0, SimTime::ZERO, &mut r).expect("ok");
        assert_eq!(intra.as_micros(), 500);
        // us-west1-b <-> us-west2-a RTT 24.7 ms, one-way 12.35 ms.
        assert_eq!(inter.as_micros(), 12_350);
    }

    #[test]
    fn gcp_max_propagation_is_asia_europe() {
        let net = GcpNetwork::new(8, 8);
        // Largest RTT in Table 3: asia-southeast1-b <-> europe-west1-b 288.8 ms.
        assert_eq!(net.max_propagation().as_micros(), 144_400);
    }

    #[test]
    fn gcp_4_region_subset_smaller_spread() {
        let net4 = GcpNetwork::new(8, 4);
        // With only US regions the max one-way is 66.7/2 = 33.35 ms.
        assert_eq!(net4.max_propagation().as_micros(), 33_350);
    }

    #[test]
    fn lossy_network_drops_fraction() {
        let mut net = LossyNetwork::new(ClusterNetwork::new(), 0.3);
        let mut r = rng();
        let mut lost = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if net.transit(0, 1, 64, SimTime::ZERO, &mut r).is_none() {
                lost += 1;
            }
        }
        let rate = lost as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
    }

    #[test]
    fn partition_blocks_cross_traffic_during_window() {
        let part = Partition {
            start: SimTime(1_000),
            end: SimTime(2_000),
            isolated: vec![0],
        };
        let mut net = PartitionedNetwork::new(ClusterNetwork::new(), vec![part]);
        let mut r = rng();
        // Before the window: delivered.
        assert!(net.transit(0, 1, 64, SimTime(0), &mut r).is_some());
        // During: cross-boundary traffic dropped both directions.
        assert!(net.transit(0, 1, 64, SimTime(1_500), &mut r).is_none());
        assert!(net.transit(1, 0, 64, SimTime(1_500), &mut r).is_none());
        // Within the isolated side: delivered.
        assert!(net.transit(0, 0, 64, SimTime(1_500), &mut r).is_some());
        // Majority side internal traffic: delivered.
        assert!(net.transit(1, 2, 64, SimTime(1_500), &mut r).is_some());
        // After healing: delivered.
        assert!(net.transit(0, 1, 64, SimTime(2_000), &mut r).is_some());
    }

    #[test]
    fn table3_matrix_is_symmetric_enough() {
        // The published matrix has sub-ms asymmetries from measurement noise;
        // verify it is symmetric within 2 ms and zero on the diagonal.
        for a in 0..gcp::NUM_REGIONS {
            assert_eq!(gcp::rtt_ms(a, a), 0.0);
            for b in 0..gcp::NUM_REGIONS {
                assert!((gcp::rtt_ms(a, b) - gcp::rtt_ms(b, a)).abs() < 2.0);
            }
        }
    }
}
