//! The measured Google Cloud Platform inter-region latency matrix
//! (paper Table 3), in milliseconds of round-trip time.

/// Number of GCP regions used in the paper's large-scale evaluation.
pub const NUM_REGIONS: usize = 8;

/// Region names, in the matrix order of Table 3.
pub const REGION_NAMES: [&str; NUM_REGIONS] = [
    "us-west1-b",
    "us-west2-a",
    "us-east1-b",
    "us-east4-b",
    "asia-east1-b",
    "asia-southeast1-b",
    "europe-west1-b",
    "europe-west2-a",
];

/// Table 3 of the paper: RTT in milliseconds between regions.
pub const RTT_MS: [[f64; NUM_REGIONS]; NUM_REGIONS] = [
    [0.0, 24.7, 66.7, 59.0, 120.2, 150.8, 138.9, 132.7],
    [24.7, 0.0, 62.9, 60.5, 129.5, 160.5, 140.4, 136.1],
    [66.7, 62.9, 0.0, 12.7, 183.8, 216.6, 93.1, 88.2],
    [59.1, 60.4, 12.7, 0.0, 176.6, 208.4, 81.9, 75.6],
    [118.7, 129.5, 184.9, 176.6, 0.0, 50.5, 255.5, 252.5],
    [150.8, 160.5, 216.7, 208.3, 50.6, 0.0, 288.8, 283.8],
    [138.9, 140.5, 93.2, 81.8, 255.7, 288.7, 0.0, 7.1],
    [132.1, 134.9, 88.1, 76.6, 252.1, 283.9, 7.1, 0.0],
];

/// Round-trip time between two regions in milliseconds.
pub fn rtt_ms(a: usize, b: usize) -> f64 {
    RTT_MS[a][b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_is_zero() {
        for i in 0..NUM_REGIONS {
            assert_eq!(rtt_ms(i, i), 0.0);
        }
    }

    #[test]
    fn known_entries() {
        // Spot values from the published table.
        assert_eq!(rtt_ms(0, 1), 24.7);
        assert_eq!(rtt_ms(4, 5), 50.5);
        assert_eq!(rtt_ms(5, 6), 288.8);
        assert_eq!(rtt_ms(6, 7), 7.1);
    }

    #[test]
    fn names_align() {
        assert_eq!(REGION_NAMES[0], "us-west1-b");
        assert_eq!(REGION_NAMES[7], "europe-west2-a");
    }
}
