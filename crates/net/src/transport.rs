//! The [`Transport`] trait and its two backends.
//!
//! A transport moves [`Packet`]s between logical actors identified by
//! [`NodeId`]. The simulator's message bus is one implementation of the
//! idea (the kernel routes `Ctx::send` directly); for real deployments
//! this module provides:
//!
//! * [`MemTransport`] — an in-process hub for tests: endpoints share a
//!   registry and sends are routed by destination id with no threads or
//!   sockets involved.
//! * [`TcpTransport`] — a thread-per-peer `std::net` backend: one
//!   listener thread accepting inbound streams, one reader thread per
//!   accepted connection, and one sender thread per remote address with
//!   a bounded outbound queue, reconnect with exponential backoff, and
//!   the [`Hello`] session handshake on every stream.
//!
//! Connections are **unidirectional**: each ordered (process → address)
//! pair gets its own stream, the dialer writes and the acceptor reads.
//! That removes all connection-dedup logic — two processes that talk in
//! both directions simply hold two streams.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ahl_crypto::Hash;
use ahl_simkit::NodeId;
use ahl_wal::codec::{crc32, encode_frame, MAX_FRAME};

use crate::wire::{decode_payload, encode_payload, Hello, Packet, Wire, HELLO_ACK, WIRE_VERSION};

/// An inbound transport event.
#[derive(Clone, Debug)]
pub enum NetEvent<M> {
    /// A peer's stream completed its handshake (id = the peer's primary
    /// node id from its [`Hello`]).
    PeerUp(NodeId),
    /// A peer's stream closed or failed; the dialer side will be
    /// reconnecting with backoff.
    PeerDown(NodeId),
    /// A routed packet addressed to a local actor.
    Packet {
        /// Sending actor.
        from: NodeId,
        /// Destination actor (hosted by this process).
        to: NodeId,
        /// Application or control payload.
        body: Packet<M>,
    },
}

/// Counters every backend maintains; mirror of the simulator's scoped
/// `net.*` / `queue.dropped` stats so backpressure is visible the same
/// way in both worlds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames handed to the backend for sending.
    pub sent: u64,
    /// Frames delivered to the local inbox.
    pub received: u64,
    /// Frames dropped because a bounded outbound queue was full
    /// (backpressure — the analogue of the simulator's `queue.dropped`).
    pub tx_dropped: u64,
    /// Frames lost to a connection failure after being dequeued.
    pub tx_failed: u64,
    /// Successful (re)connections established by sender threads.
    pub connects: u64,
    /// Inbound streams refused for a bad handshake.
    pub handshake_failures: u64,
    /// Inbound frames discarded as torn/corrupt/undecodable.
    pub rx_rejected: u64,
}

#[derive(Default)]
struct StatCells {
    sent: AtomicU64,
    received: AtomicU64,
    tx_dropped: AtomicU64,
    tx_failed: AtomicU64,
    connects: AtomicU64,
    handshake_failures: AtomicU64,
    rx_rejected: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> TransportStats {
        TransportStats {
            sent: self.sent.load(Ordering::Relaxed),
            received: self.received.load(Ordering::Relaxed),
            tx_dropped: self.tx_dropped.load(Ordering::Relaxed),
            tx_failed: self.tx_failed.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            handshake_failures: self.handshake_failures.load(Ordering::Relaxed),
            rx_rejected: self.rx_rejected.load(Ordering::Relaxed),
        }
    }
}

/// A message bus connecting logical actors across process boundaries.
///
/// Methods take `&self`: backends use interior mutability so the hosting
/// runtime can send from actor callbacks while reader threads deliver.
pub trait Transport<M>: Send + Sync {
    /// Queue `body` from local actor `from` to actor `to`. Never blocks;
    /// a full outbound queue drops the frame and counts it.
    fn send(&self, from: NodeId, to: NodeId, body: Packet<M>);
    /// Block up to `timeout` for the next inbound event.
    fn recv_timeout(&self, timeout: Duration) -> Option<NetEvent<M>>;
    /// Actor ids this transport can route to (local and remote).
    fn known_nodes(&self) -> Vec<NodeId>;
    /// Snapshot of the backend's counters.
    fn stats(&self) -> TransportStats;
    /// Stop background threads and close connections. Idempotent.
    fn shutdown(&self);
}

/// Shared blocking inbox: reader threads push, the runtime pops.
struct Inbox<M> {
    q: Mutex<VecDeque<NetEvent<M>>>,
    cv: Condvar,
}

impl<M> Inbox<M> {
    fn new() -> Self {
        Inbox { q: Mutex::new(VecDeque::new()), cv: Condvar::new() }
    }

    fn push(&self, ev: NetEvent<M>) {
        self.q.lock().expect("inbox lock").push_back(ev);
        self.cv.notify_one();
    }

    fn pop_timeout(&self, timeout: Duration) -> Option<NetEvent<M>> {
        let mut q = self.q.lock().expect("inbox lock");
        if let Some(ev) = q.pop_front() {
            return Some(ev);
        }
        let (mut q, _) = self.cv.wait_timeout(q, timeout).expect("inbox lock");
        q.pop_front()
    }
}

// ---------------------------------------------------------------------------
// In-process backend
// ---------------------------------------------------------------------------

/// Registry connecting [`MemTransport`] endpoints in one process.
pub struct MemHub<M> {
    routes: Mutex<HashMap<NodeId, Arc<Inbox<M>>>>,
}

impl<M> Default for MemHub<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> MemHub<M> {
    /// An empty hub.
    pub fn new() -> Self {
        MemHub { routes: Mutex::new(HashMap::new()) }
    }

    /// Create an endpoint hosting `local` actor ids on `hub`.
    pub fn endpoint(self: &Arc<Self>, local: Vec<NodeId>) -> MemTransport<M> {
        let inbox = Arc::new(Inbox::new());
        let mut routes = self.routes.lock().expect("hub lock");
        for &id in &local {
            routes.insert(id, inbox.clone());
        }
        drop(routes);
        MemTransport { hub: self.clone(), inbox, stats: Arc::new(StatCells::default()) }
    }
}

/// In-process [`Transport`] backend used by tests: no sockets, no
/// threads, routing by destination id through a shared [`MemHub`].
pub struct MemTransport<M> {
    hub: Arc<MemHub<M>>,
    inbox: Arc<Inbox<M>>,
    stats: Arc<StatCells>,
}

impl<M: Clone + Send> Transport<M> for MemTransport<M>
where
    M: 'static,
{
    fn send(&self, from: NodeId, to: NodeId, body: Packet<M>) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        let dest = self.hub.routes.lock().expect("hub lock").get(&to).cloned();
        match dest {
            Some(inbox) => {
                self.stats.received.fetch_add(1, Ordering::Relaxed);
                inbox.push(NetEvent::Packet { from, to, body });
            }
            None => {
                self.stats.tx_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<NetEvent<M>> {
        self.inbox.pop_timeout(timeout)
    }

    fn known_nodes(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> =
            self.hub.routes.lock().expect("hub lock").keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn shutdown(&self) {}
}

// ---------------------------------------------------------------------------
// TCP backend
// ---------------------------------------------------------------------------

/// Reconnect backoff start (doubles per failure up to [`BACKOFF_MAX`]).
const BACKOFF_START: Duration = Duration::from_millis(50);
/// Reconnect backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_secs(2);
/// Poll interval at which blocked reader/sender threads re-check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(100);

/// Configuration for [`TcpTransport::start`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Address this process listens on.
    pub listen: SocketAddr,
    /// Actor ids hosted by this process (its primary id is the lowest).
    pub local: Vec<NodeId>,
    /// Peer table: every remote actor id and the address of the process
    /// hosting it. Many ids may map to one address.
    pub peers: Vec<(NodeId, SocketAddr)>,
    /// Cluster/genesis digest for the session handshake.
    pub cluster: Hash,
    /// Bound on each per-address outbound queue (frames); overflow drops.
    pub queue_capacity: usize,
}

impl TcpConfig {
    /// Config with the default queue bound (1024 frames per peer).
    pub fn new(listen: SocketAddr, local: Vec<NodeId>, peers: Vec<(NodeId, SocketAddr)>) -> Self {
        TcpConfig { listen, local, peers, cluster: Hash::ZERO, queue_capacity: 1024 }
    }
}

/// Bounded queue of encoded frames feeding one sender thread.
struct SendQueue {
    buf: Mutex<VecDeque<Vec<u8>>>,
    cv: Condvar,
    capacity: usize,
}

impl SendQueue {
    fn new(capacity: usize) -> Self {
        SendQueue { buf: Mutex::new(VecDeque::new()), cv: Condvar::new(), capacity }
    }

    /// Push a frame; returns false (dropping it) when the queue is full.
    fn push(&self, frame: Vec<u8>) -> bool {
        let mut buf = self.buf.lock().expect("queue lock");
        if buf.len() >= self.capacity {
            return false;
        }
        buf.push_back(frame);
        self.cv.notify_one();
        true
    }

    fn pop(&self, closed: &AtomicBool) -> Option<Vec<u8>> {
        let mut buf = self.buf.lock().expect("queue lock");
        loop {
            if let Some(f) = buf.pop_front() {
                return Some(f);
            }
            if closed.load(Ordering::Relaxed) {
                return None;
            }
            let (b, _) = self.cv.wait_timeout(buf, POLL).expect("queue lock");
            buf = b;
        }
    }
}

/// Threaded `std::net` TCP backend. See the module docs for the thread
/// and connection model.
pub struct TcpTransport<M> {
    inbox: Arc<Inbox<M>>,
    stats: Arc<StatCells>,
    closed: Arc<AtomicBool>,
    /// Destination actor id → sender queue (shared per remote address).
    routes: HashMap<NodeId, Arc<SendQueue>>,
    local: Vec<NodeId>,
    listen: SocketAddr,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Accepted inbound streams, tracked so `shutdown` can unblock their
    /// reader threads.
    accepted: Arc<Mutex<Vec<TcpStream>>>,
}

impl<M: Wire + Clone + Send + 'static> TcpTransport<M> {
    /// Bind the listener, spawn the accept loop and one sender thread per
    /// distinct remote address, and return the running transport.
    pub fn start(cfg: TcpConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(cfg.listen)?;
        // The OS may have assigned the port (listen on port 0 in tests).
        let listen = listener.local_addr()?;
        let inbox = Arc::new(Inbox::new());
        let stats = Arc::new(StatCells::default());
        let closed = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(Mutex::new(Vec::new()));
        let primary = cfg.local.iter().copied().min().unwrap_or(0);
        let hello =
            Hello { version: WIRE_VERSION, sender: primary, cluster: cfg.cluster }.to_vec();

        let mut threads = Vec::new();

        // Accept loop.
        {
            let inbox = inbox.clone();
            let stats = stats.clone();
            let closed = closed.clone();
            let accepted = accepted.clone();
            let cluster = cfg.cluster;
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, inbox, stats, closed, accepted, cluster)
            }));
        }

        // One sender thread (and queue) per distinct remote address;
        // ids hosted by this process route straight into the inbox.
        let mut by_addr: HashMap<SocketAddr, Arc<SendQueue>> = HashMap::new();
        let mut routes = HashMap::new();
        for (id, addr) in &cfg.peers {
            if cfg.local.contains(id) || *addr == listen {
                continue; // local delivery, handled in send()
            }
            let q = by_addr.entry(*addr).or_insert_with(|| {
                let q = Arc::new(SendQueue::new(cfg.queue_capacity));
                let addr = *addr;
                let hello = hello.clone();
                let stats = stats.clone();
                let closed = closed.clone();
                let inbox = inbox.clone();
                let qq = q.clone();
                threads.push(std::thread::spawn(move || {
                    sender_loop(addr, hello, qq, stats, closed, inbox)
                }));
                q
            });
            routes.insert(*id, q.clone());
        }

        Ok(TcpTransport {
            inbox,
            stats,
            closed,
            routes,
            local: cfg.local,
            listen,
            threads: Mutex::new(threads),
            accepted,
        })
    }

    /// The bound listen address (resolves port 0 to the assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listen
    }
}

impl<M: Wire + Clone + Send + 'static> Transport<M> for TcpTransport<M> {
    fn send(&self, from: NodeId, to: NodeId, body: Packet<M>) {
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        if self.local.contains(&to) {
            self.stats.received.fetch_add(1, Ordering::Relaxed);
            self.inbox.push(NetEvent::Packet { from, to, body });
            return;
        }
        let Some(q) = self.routes.get(&to) else {
            self.stats.tx_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let frame = encode_frame(&encode_payload(from, to, &body));
        if !q.push(frame) {
            self.stats.tx_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<NetEvent<M>> {
        self.inbox.pop_timeout(timeout)
    }

    fn known_nodes(&self) -> Vec<NodeId> {
        let mut ids = self.local.clone();
        ids.extend(self.routes.keys().copied());
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn stats(&self) -> TransportStats {
        self.stats.snapshot()
    }

    fn shutdown(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the accept loop awake so it observes the flag.
        let _ = TcpStream::connect(self.listen);
        for s in self.accepted.lock().expect("accepted lock").drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for q in self.routes.values() {
            q.cv.notify_all();
        }
        let threads: Vec<_> = self.threads.lock().expect("threads lock").drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl<M> Drop for TcpTransport<M> {
    fn drop(&mut self) {
        // Best-effort: signal without joining (join needs M: Wire bounds
        // satisfied by the caller's shutdown(); threads exit on the flag).
        self.closed.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.listen);
        if let Ok(mut acc) = self.accepted.lock() {
            for s in acc.drain(..) {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

fn accept_loop<M: Wire + Clone + Send + 'static>(
    listener: TcpListener,
    inbox: Arc<Inbox<M>>,
    stats: Arc<StatCells>,
    closed: Arc<AtomicBool>,
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    cluster: Hash,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if closed.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
        };
        if closed.load(Ordering::Relaxed) {
            return;
        }
        if let Ok(clone) = stream.try_clone() {
            accepted.lock().expect("accepted lock").push(clone);
        }
        let inbox = inbox.clone();
        let stats = stats.clone();
        let closed = closed.clone();
        std::thread::spawn(move || reader_loop(stream, inbox, stats, closed, cluster));
    }
}

/// Read the handshake then stream frames until EOF, error, or shutdown.
fn reader_loop<M: Wire + Clone + Send>(
    mut stream: TcpStream,
    inbox: Arc<Inbox<M>>,
    stats: Arc<StatCells>,
    closed: Arc<AtomicBool>,
    cluster: Hash,
) {
    let _ = stream.set_read_timeout(Some(POLL));
    let peer = match read_hello(&mut stream, &closed, cluster) {
        Some(h) => h.sender,
        None => {
            stats.handshake_failures.fetch_add(1, Ordering::Relaxed);
            // A clone of this stream sits in the accepted list, so drop
            // alone would leave the connection open; shut it down so the
            // dialer sees EOF instead of hanging on the ack.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    };
    if stream.write_all(&[HELLO_ACK]).is_err() {
        return;
    }
    inbox.push(NetEvent::PeerUp(peer));
    loop {
        match read_frame(&mut stream, &closed) {
            FrameRead::Frame(payload) => match decode_payload::<M>(&payload) {
                Some((from, to, body)) => {
                    stats.received.fetch_add(1, Ordering::Relaxed);
                    inbox.push(NetEvent::Packet { from, to, body });
                }
                None => {
                    stats.rx_rejected.fetch_add(1, Ordering::Relaxed);
                }
            },
            FrameRead::Corrupt => {
                // A corrupt frame desynchronizes the stream; drop the
                // connection and let the dialer reconnect cleanly.
                stats.rx_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = stream.shutdown(std::net::Shutdown::Both);
                inbox.push(NetEvent::PeerDown(peer));
                return;
            }
            FrameRead::Closed => {
                let _ = stream.shutdown(std::net::Shutdown::Both);
                inbox.push(NetEvent::PeerDown(peer));
                return;
            }
        }
    }
}

fn read_hello(stream: &mut TcpStream, closed: &AtomicBool, cluster: Hash) -> Option<Hello> {
    match read_frame(stream, closed) {
        FrameRead::Frame(payload) => {
            // Hello frames carry the raw Hello encoding (no routing header).
            let h = Hello::from_slice(&payload)?;
            (h.version == WIRE_VERSION && h.cluster == cluster).then_some(h)
        }
        _ => None,
    }
}

enum FrameRead {
    Frame(Vec<u8>),
    Corrupt,
    Closed,
}

/// Read one `[len][crc][payload]` frame, polling the shutdown flag while
/// blocked. CRC or length-prefix violations report `Corrupt`.
fn read_frame(stream: &mut TcpStream, closed: &AtomicBool) -> FrameRead {
    let mut header = [0u8; 8];
    if !read_exact_poll(stream, &mut header, closed) {
        return FrameRead::Closed;
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME {
        return FrameRead::Corrupt;
    }
    let mut payload = vec![0u8; len];
    if !read_exact_poll(stream, &mut payload, closed) {
        return FrameRead::Closed;
    }
    if crc32(&payload) != crc {
        return FrameRead::Corrupt;
    }
    FrameRead::Frame(payload)
}

/// `read_exact` that tolerates the read timeout (so shutdown is observed)
/// but fails on EOF or a real error.
fn read_exact_poll(stream: &mut TcpStream, buf: &mut [u8], closed: &AtomicBool) -> bool {
    let mut filled = 0;
    while filled < buf.len() {
        if closed.load(Ordering::Relaxed) {
            return false;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return false,
        }
    }
    true
}

/// Connect (with exponential backoff), handshake, then drain the queue
/// onto the stream; on any write failure reconnect and keep going.
fn sender_loop<M: Clone>(
    addr: SocketAddr,
    hello: Vec<u8>,
    q: Arc<SendQueue>,
    stats: Arc<StatCells>,
    closed: Arc<AtomicBool>,
    _inbox: Arc<Inbox<M>>,
) {
    let mut backoff = BACKOFF_START;
    'reconnect: while !closed.load(Ordering::Relaxed) {
        let mut stream = match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
            Ok(s) => s,
            Err(_) => {
                sleep_poll(backoff, &closed);
                backoff = (backoff * 2).min(BACKOFF_MAX);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL));
        // Handshake: framed Hello out, one ack byte back.
        if stream.write_all(&encode_frame(&hello)).is_err() {
            sleep_poll(backoff, &closed);
            backoff = (backoff * 2).min(BACKOFF_MAX);
            continue;
        }
        let mut ack = [0u8; 1];
        if !read_exact_deadline(&mut stream, &mut ack, &closed, Duration::from_secs(5))
            || ack[0] != HELLO_ACK
        {
            sleep_poll(backoff, &closed);
            backoff = (backoff * 2).min(BACKOFF_MAX);
            continue;
        }
        stats.connects.fetch_add(1, Ordering::Relaxed);
        backoff = BACKOFF_START;
        while let Some(frame) = q.pop(&closed) {
            if stream.write_all(&frame).is_err() {
                // The frame is lost with the connection (consensus
                // tolerates message loss; retransmit is its job).
                stats.tx_failed.fetch_add(1, Ordering::Relaxed);
                continue 'reconnect;
            }
        }
        return; // queue closed
    }
}

/// [`read_exact_poll`] with an overall deadline, for handshake steps
/// where a silent peer must not wedge the thread.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    closed: &AtomicBool,
    deadline: Duration,
) -> bool {
    let start = std::time::Instant::now();
    let mut filled = 0;
    while filled < buf.len() {
        if closed.load(Ordering::Relaxed) || start.elapsed() > deadline {
            return false;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return false,
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return false,
        }
    }
    true
}

fn sleep_poll(total: Duration, closed: &AtomicBool) {
    let mut left = total;
    while left > Duration::ZERO && !closed.load(Ordering::Relaxed) {
        let step = left.min(POLL);
        std::thread::sleep(step);
        left -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_wal::codec::{Reader, Writer};

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);

    impl Wire for Num {
        fn encode(&self, w: &mut Writer) {
            w.u64(self.0);
        }
        fn decode(r: &mut Reader<'_>) -> Option<Self> {
            r.u64().map(Num)
        }
    }

    fn local(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().expect("addr")
    }

    fn drain_until_packet<M: Clone>(t: &dyn Transport<M>, secs: u64) -> Option<(NodeId, NodeId, Packet<M>)> {
        let deadline = std::time::Instant::now() + Duration::from_secs(secs);
        while std::time::Instant::now() < deadline {
            match t.recv_timeout(Duration::from_millis(100)) {
                Some(NetEvent::Packet { from, to, body }) => return Some((from, to, body)),
                Some(_) => continue,
                None => continue,
            }
        }
        None
    }

    #[test]
    fn mem_transport_routes_by_destination() {
        let hub: Arc<MemHub<Num>> = Arc::new(MemHub::new());
        let a = hub.endpoint(vec![0, 1]);
        let b = hub.endpoint(vec![2]);
        a.send(0, 2, Packet::App(Num(7)));
        let (from, to, body) = drain_until_packet(&b, 2).expect("delivered");
        assert_eq!((from, to), (0, 2));
        assert!(matches!(body, Packet::App(Num(7))));
        // Unknown destination counts as a drop.
        a.send(0, 99, Packet::App(Num(1)));
        assert_eq!(a.stats().tx_dropped, 1);
        assert_eq!(b.known_nodes(), vec![0, 1, 2]);
    }

    #[test]
    fn tcp_roundtrip_and_peer_events() {
        let ta = TcpTransport::<Num>::start(TcpConfig::new(local(0), vec![0], vec![])).expect("a");
        let peers = vec![(0, ta.local_addr())];
        let tb =
            TcpTransport::<Num>::start(TcpConfig::new(local(0), vec![1], peers)).expect("b");
        tb.send(1, 0, Packet::App(Num(41)));
        tb.send(1, 0, Packet::Control(crate::wire::Control::Status));
        let (from, to, body) = drain_until_packet(&ta, 10).expect("app frame");
        assert_eq!((from, to), (1, 0));
        assert!(matches!(body, Packet::App(Num(41))));
        let (_, _, body) = drain_until_packet(&ta, 10).expect("control frame");
        assert!(matches!(body, Packet::Control(crate::wire::Control::Status)));
        assert!(tb.stats().connects >= 1);
        tb.shutdown();
        ta.shutdown();
    }

    #[test]
    fn tcp_local_delivery_short_circuits() {
        let t = TcpTransport::<Num>::start(TcpConfig::new(local(0), vec![3, 4], vec![]))
            .expect("transport");
        t.send(3, 4, Packet::App(Num(5)));
        let (from, to, _) = drain_until_packet(&t, 2).expect("loopback");
        assert_eq!((from, to), (3, 4));
        t.shutdown();
    }

    #[test]
    fn tcp_reconnects_after_receiver_restart() {
        let ta = TcpTransport::<Num>::start(TcpConfig::new(local(0), vec![0], vec![])).expect("a");
        let addr = ta.local_addr();
        let tb = TcpTransport::<Num>::start(TcpConfig::new(local(0), vec![1], vec![(0, addr)]))
            .expect("b");
        tb.send(1, 0, Packet::App(Num(1)));
        assert!(drain_until_packet(&ta, 10).is_some());
        ta.shutdown();
        drop(ta);
        // Restart the receiver on the same address; the dialer must
        // reconnect with backoff and deliver again.
        let ta2 = TcpTransport::<Num>::start(TcpConfig::new(addr, vec![0], vec![])).expect("a2");
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        let mut delivered = false;
        while std::time::Instant::now() < deadline {
            tb.send(1, 0, Packet::App(Num(2)));
            if drain_until_packet(&ta2, 1).is_some() {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "dialer reconnected after receiver restart");
        assert!(tb.stats().connects >= 2);
        tb.shutdown();
        ta2.shutdown();
    }

    #[test]
    fn handshake_rejects_cluster_mismatch() {
        let mut cfg_a = TcpConfig::new(local(0), vec![0], vec![]);
        cfg_a.cluster = ahl_crypto::sha256(b"cluster-a");
        let ta = TcpTransport::<Num>::start(cfg_a).expect("a");
        let mut cfg_b = TcpConfig::new(local(0), vec![1], vec![(0, ta.local_addr())]);
        cfg_b.cluster = ahl_crypto::sha256(b"cluster-b");
        let tb = TcpTransport::<Num>::start(cfg_b).expect("b");
        tb.send(1, 0, Packet::App(Num(9)));
        // Give the dialer time to attempt handshakes; nothing may arrive.
        assert!(drain_until_packet(&ta, 2).is_none(), "mismatched cluster must not deliver");
        assert!(ta.stats().handshake_failures >= 1);
        tb.shutdown();
        ta.shutdown();
    }

    #[test]
    fn bounded_queue_drops_overflow_while_disconnected() {
        // Peer address that nothing listens on: frames pile up in the
        // bounded queue and overflow is counted.
        let mut cfg = TcpConfig::new(local(0), vec![0], vec![(1, local(1))]);
        cfg.queue_capacity = 4;
        let t = TcpTransport::<Num>::start(cfg).expect("t");
        for i in 0..20 {
            t.send(0, 1, Packet::App(Num(i)));
        }
        let s = t.stats();
        assert!(s.tx_dropped >= 16 - 4, "tx_dropped = {}", s.tx_dropped);
        t.shutdown();
    }
}
