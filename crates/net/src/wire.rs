//! Wire format shared by every transport backend.
//!
//! Reuses the WAL's framing discipline (`[u32 len][u32 crc][payload]`,
//! big-endian, CRC-32 of the payload — [`ahl_wal::codec`]): the length
//! prefix delimits frames on the stream and the CRC rejects torn or
//! corrupted bytes, exactly as it does for on-disk records. Inside a
//! frame the payload is
//!
//! ```text
//! [kind u8][from u64][to u64][body ...]
//! ```
//!
//! so one OS process can host several logical actors (a driver hosting k
//! clients, a replica hosting one node) behind a single socket. `kind`
//! separates application messages from the session handshake and the
//! small control plane (status / shutdown).

use ahl_crypto::Hash;
use ahl_simkit::NodeId;
use ahl_wal::codec::{Reader, Writer};

/// Protocol version carried in the session handshake. Bump on any frame
/// or codec layout change; mismatched peers refuse the session instead
/// of mis-parsing each other.
pub const WIRE_VERSION: u16 = 1;

/// Handshake magic: "AHL1" big-endian.
pub const WIRE_MAGIC: u32 = 0x4148_4C31;

/// Byte the acceptor writes back after validating a [`Hello`]; the dialer
/// waits for it before streaming frames.
pub const HELLO_ACK: u8 = 0xA5;

/// Frame kind: application message (body = `M` via [`Wire`]).
pub const FRAME_APP: u8 = 0;
/// Frame kind: session handshake (body = [`Hello`]); first frame on a
/// stream, never repeated.
pub const FRAME_HELLO: u8 = 1;
/// Frame kind: control-plane message (body = [`Control`]).
pub const FRAME_CONTROL: u8 = 2;

/// Hand-rolled binary serialization for a message type, in the style of
/// `ledger::persist`: fixed-width big-endian integers and length-prefixed
/// byte strings over the WAL's [`Writer`]/[`Reader`] pair. `decode` must
/// fail closed (return `None`) on any truncation or unknown tag.
pub trait Wire: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decode one value from `r`, or `None` if the bytes are malformed.
    fn decode(r: &mut Reader<'_>) -> Option<Self>;

    /// Encode into a fresh byte vector.
    fn to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode from a byte slice, requiring every byte to be consumed.
    fn from_slice(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.is_done().then_some(v)
    }
}

/// Session handshake, sent as the first frame on every connection. The
/// acceptor validates magic, version, and cluster digest before acking;
/// anything else is a handshake failure and the connection is refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version of the dialer ([`WIRE_VERSION`]).
    pub version: u16,
    /// The dialer's primary node id (lowest actor id it hosts).
    pub sender: NodeId,
    /// Digest identifying the cluster/genesis both sides must share;
    /// prevents two different deployments from cross-talking.
    pub cluster: Hash,
}

impl Wire for Hello {
    fn encode(&self, w: &mut Writer) {
        w.u32(WIRE_MAGIC);
        w.u16(self.version);
        w.u64(self.sender as u64);
        w.hash(&self.cluster);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        if r.u32()? != WIRE_MAGIC {
            return None;
        }
        Some(Hello {
            version: r.u16()?,
            sender: r.u64()? as NodeId,
            cluster: r.hash()?,
        })
    }
}

/// Control-plane messages exchanged beside the consensus traffic: the
/// cluster driver uses them to probe replica state and to stop nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Control {
    /// Ask the receiving process to report its primary actor's state.
    Status,
    /// Answer to [`Control::Status`].
    StatusReply {
        /// Highest executed sequence/height of the primary actor.
        height: u64,
        /// State digest at that height.
        digest: Hash,
        /// Transactions committed so far (monotone counter).
        committed: u64,
    },
    /// Ask the receiving process to shut down cleanly.
    Shutdown,
}

impl Wire for Control {
    fn encode(&self, w: &mut Writer) {
        match self {
            Control::Status => w.u8(0),
            Control::StatusReply { height, digest, committed } => {
                w.u8(1);
                w.u64(*height);
                w.hash(digest);
                w.u64(*committed);
            }
            Control::Shutdown => w.u8(2),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match r.u8()? {
            0 => Some(Control::Status),
            1 => Some(Control::StatusReply {
                height: r.u64()?,
                digest: r.hash()?,
                committed: r.u64()?,
            }),
            2 => Some(Control::Shutdown),
            _ => None,
        }
    }
}

/// Either half of a transport payload: a consensus/application message or
/// a control-plane message.
#[derive(Clone, Debug)]
pub enum Packet<M> {
    /// An application message (the actor's `Msg` type).
    App(M),
    /// A control-plane message.
    Control(Control),
}

/// Encode one complete frame payload (`[kind][from][to][body]`).
pub fn encode_payload<M: Wire>(from: NodeId, to: NodeId, pkt: &Packet<M>) -> Vec<u8> {
    let mut w = Writer::new();
    match pkt {
        Packet::App(m) => {
            w.u8(FRAME_APP);
            w.u64(from as u64);
            w.u64(to as u64);
            m.encode(&mut w);
        }
        Packet::Control(c) => {
            w.u8(FRAME_CONTROL);
            w.u64(from as u64);
            w.u64(to as u64);
            c.encode(&mut w);
        }
    }
    w.into_bytes()
}

/// Decode a frame payload produced by [`encode_payload`]. Returns
/// `(from, to, packet)`, or `None` for malformed bytes or a non-routable
/// kind (hello frames are handled during the handshake, not here).
pub fn decode_payload<M: Wire>(bytes: &[u8]) -> Option<(NodeId, NodeId, Packet<M>)> {
    let mut r = Reader::new(bytes);
    let kind = r.u8()?;
    let from = r.u64()? as NodeId;
    let to = r.u64()? as NodeId;
    let pkt = match kind {
        FRAME_APP => Packet::App(M::decode(&mut r)?),
        FRAME_CONTROL => Packet::Control(Control::decode(&mut r)?),
        _ => return None,
    };
    r.is_done().then_some((from, to, pkt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Probe(u64, String);

    impl Wire for Probe {
        fn encode(&self, w: &mut Writer) {
            w.u64(self.0);
            w.str(&self.1);
        }
        fn decode(r: &mut Reader<'_>) -> Option<Self> {
            Some(Probe(r.u64()?, r.str()?))
        }
    }

    #[test]
    fn hello_roundtrip() {
        let h = Hello { version: WIRE_VERSION, sender: 3, cluster: ahl_crypto::sha256(b"g") };
        assert_eq!(Hello::from_slice(&h.to_vec()), Some(h));
    }

    #[test]
    fn hello_rejects_bad_magic() {
        let h = Hello { version: WIRE_VERSION, sender: 0, cluster: Hash::ZERO };
        let mut bytes = h.to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(Hello::from_slice(&bytes), None);
    }

    #[test]
    fn control_roundtrip() {
        let msgs = [
            Control::Status,
            Control::StatusReply {
                height: 17,
                digest: ahl_crypto::sha256(b"s"),
                committed: 4242,
            },
            Control::Shutdown,
        ];
        for m in msgs {
            assert_eq!(Control::from_slice(&m.to_vec()), Some(m));
        }
    }

    #[test]
    fn payload_roundtrip_and_trailing_bytes_rejected() {
        let pkt = Packet::App(Probe(9, "hi".into()));
        let bytes = encode_payload(2, 5, &pkt);
        let (from, to, got) = decode_payload::<Probe>(&bytes).expect("decodes");
        assert_eq!((from, to), (2, 5));
        match got {
            Packet::App(p) => assert_eq!(p, Probe(9, "hi".into())),
            _ => panic!("wrong kind"),
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_payload::<Probe>(&long).is_none(), "trailing byte");
        assert!(decode_payload::<Probe>(&bytes[..bytes.len() - 1]).is_none(), "truncated");
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut w = Writer::new();
        w.u8(9);
        w.u64(0);
        w.u64(1);
        assert!(decode_payload::<Probe>(&w.into_bytes()).is_none());
    }
}
