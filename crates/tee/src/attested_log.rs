//! Attested append-only memory (A2M) — the trusted log of Chun et al. that
//! AHL uses to remove equivocation (paper §4.1).
//!
//! Each consensus message type (pre-prepare / prepare / commit / ...) gets
//! its own log. Before a node sends a message it must *bind* the message
//! digest to the log slot for that consensus position; the enclave signs an
//! attestation of the binding. Because a slot can hold exactly one digest,
//! a Byzantine node cannot produce two conflicting signed messages for the
//! same position — receivers reject any message lacking a valid attestation.
//!
//! Rollback defense (paper Appendix A): after a crash the enclave refuses
//! new appends until it has re-established an upper bound `HM = L + ckpM` on
//! the highest sequence number it may have attested before the crash, where
//! `ckpM` is derived from `2f + 1` peer checkpoint reports, and it has been
//! shown a stable checkpoint at or above `HM`.

use std::collections::HashMap;

use ahl_crypto::{sha256_parts, Hash, KeyRegistry, Signature, SigningKey};

/// Identifies one log within a node's enclave (one per message type).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LogId(pub u32);

/// A slot within a log: the consensus position the message binds to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Slot {
    /// Consensus view the message belongs to.
    pub view: u64,
    /// Consensus sequence number.
    pub seq: u64,
}

/// An enclave-signed proof that `digest` is bound to `slot` of `log`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attestation {
    /// The log this attestation belongs to.
    pub log: LogId,
    /// The bound slot.
    pub slot: Slot,
    /// The bound message digest.
    pub digest: Hash,
    /// Enclave signature over (log, slot, digest).
    pub sig: Signature,
}

/// Errors from attested-log operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogError {
    /// A different digest is already bound to this slot (equivocation).
    Equivocation,
    /// The enclave is recovering from a crash and has not yet been presented
    /// a sufficiently recent stable checkpoint (Appendix A).
    Recovering,
    /// The slot is at or below the truncation (checkpoint) horizon.
    Truncated,
}

fn attestation_digest(log: LogId, slot: Slot, digest: &Hash) -> Hash {
    sha256_parts(&[
        b"ahl-a2m",
        &log.0.to_be_bytes(),
        &slot.view.to_be_bytes(),
        &slot.seq.to_be_bytes(),
        &digest.0,
    ])
}

/// The attested append-only memory, held inside a node's enclave.
///
/// The host (possibly Byzantine) can call any method with any argument, but
/// cannot forge the enclave signature, so safety reduces to this state
/// machine's behaviour.
#[derive(Debug)]
pub struct AttestedLog {
    key: SigningKey,
    /// Per-log slot bindings.
    bindings: HashMap<(LogId, Slot), Hash>,
    /// Highest attested seq per log (for checkpoint estimation).
    high: HashMap<LogId, u64>,
    /// Sequence horizon below which slots were garbage collected.
    truncated_below: u64,
    /// Set while recovering; appends refused until recovery completes.
    recovery_floor: Option<u64>,
}

impl AttestedLog {
    /// Create the log with the enclave's signing key.
    pub fn new(key: SigningKey) -> Self {
        AttestedLog {
            key,
            bindings: HashMap::new(),
            high: HashMap::new(),
            truncated_below: 0,
            recovery_floor: None,
        }
    }

    /// Bind `digest` to `slot` of `log` and return the attestation.
    ///
    /// Re-binding the *same* digest is idempotent (the node may resend).
    /// Binding a *different* digest fails with [`LogError::Equivocation`].
    pub fn append(&mut self, log: LogId, slot: Slot, digest: Hash) -> Result<Attestation, LogError> {
        if self.recovery_floor.is_some() {
            return Err(LogError::Recovering);
        }
        if slot.seq < self.truncated_below {
            return Err(LogError::Truncated);
        }
        match self.bindings.get(&(log, slot)) {
            Some(existing) if *existing != digest => return Err(LogError::Equivocation),
            Some(_) => {}
            None => {
                self.bindings.insert((log, slot), digest);
                let h = self.high.entry(log).or_insert(0);
                *h = (*h).max(slot.seq);
            }
        }
        Ok(Attestation {
            log,
            slot,
            digest,
            sig: self.key.sign(&attestation_digest(log, slot, &digest)),
        })
    }

    /// Garbage-collect slots below `seq` (called at stable checkpoints).
    pub fn truncate(&mut self, seq: u64) {
        self.truncated_below = self.truncated_below.max(seq);
        self.bindings.retain(|(_, slot), _| slot.seq >= seq);
    }

    /// Highest sequence attested on `log` (0 if none).
    pub fn high_watermark(&self, log: LogId) -> u64 {
        self.high.get(&log).copied().unwrap_or(0)
    }

    /// Number of live (non-truncated) bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when no bindings are live.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    // ----- crash recovery (Appendix A) -----

    /// Simulate an enclave restart: volatile bindings are lost and the
    /// enclave enters recovery. `peer_checkpoints` are the `ckp` sequence
    /// numbers reported by the other replicas; `f` is the fault threshold
    /// and `log_window` the PBFT watermark window `L`.
    ///
    /// Returns the computed recovery floor `HM`.
    pub fn restart_and_estimate(
        &mut self,
        peer_checkpoints: &[u64],
        f: usize,
        log_window: u64,
    ) -> u64 {
        self.bindings.clear();
        self.high.clear();
        let ckp_m = estimate_ckp_m(peer_checkpoints, f);
        let hm = ckp_m + log_window;
        self.recovery_floor = Some(hm);
        hm
    }

    /// Present a stable checkpoint (sequence `seq`, certified by a quorum —
    /// verification of the certificate is the caller's responsibility, as in
    /// the paper's protocol where the quorum proof accompanies it). Recovery
    /// completes once `seq >= HM`; appends are then accepted again for slots
    /// above the checkpoint.
    pub fn complete_recovery(&mut self, stable_checkpoint_seq: u64) -> bool {
        match self.recovery_floor {
            Some(hm) if stable_checkpoint_seq >= hm => {
                self.recovery_floor = None;
                self.truncated_below = self.truncated_below.max(stable_checkpoint_seq);
                true
            }
            _ => false,
        }
    }

    /// Whether the enclave is still refusing appends after a restart.
    pub fn is_recovering(&self) -> bool {
        self.recovery_floor.is_some()
    }
}

/// Appendix A estimation: choose `ckpM` as a reported value from some node
/// `j` such that at least `f` replicas *other than j* report values ≤ it.
/// Among the values satisfying the test, the largest is chosen (an upper
/// bound is safe; a lower bound is not).
pub fn estimate_ckp_m(peer_checkpoints: &[u64], f: usize) -> u64 {
    let mut best = 0u64;
    for (j, &cand) in peer_checkpoints.iter().enumerate() {
        let supporters = peer_checkpoints
            .iter()
            .enumerate()
            .filter(|(i, &v)| *i != j && v <= cand)
            .count();
        if supporters >= f && cand > best {
            best = cand;
        }
    }
    best
}

/// Verify an attestation against the enclave key registry.
pub fn verify_attestation(registry: &KeyRegistry, att: &Attestation) -> bool {
    registry.verify(&attestation_digest(att.log, att.slot, &att.digest), &att.sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_crypto::sha256;

    const PREPARE: LogId = LogId(1);
    const COMMIT: LogId = LogId(2);

    fn setup() -> (AttestedLog, KeyRegistry) {
        let mut reg = KeyRegistry::new();
        let key = reg.generate(42);
        (AttestedLog::new(key), reg)
    }

    fn slot(view: u64, seq: u64) -> Slot {
        Slot { view, seq }
    }

    #[test]
    fn append_and_verify() {
        let (mut log, reg) = setup();
        let d = sha256(b"prepare v0 s1 block");
        let att = log.append(PREPARE, slot(0, 1), d).expect("first append");
        assert!(verify_attestation(&reg, &att));
        assert_eq!(att.digest, d);
    }

    #[test]
    fn equivocation_rejected() {
        let (mut log, _) = setup();
        let d1 = sha256(b"digest-1");
        let d2 = sha256(b"digest-2");
        log.append(PREPARE, slot(0, 5), d1).expect("first bind");
        assert_eq!(log.append(PREPARE, slot(0, 5), d2), Err(LogError::Equivocation));
        // Same digest is idempotent (resend).
        assert!(log.append(PREPARE, slot(0, 5), d1).is_ok());
    }

    #[test]
    fn logs_are_independent() {
        let (mut log, _) = setup();
        let d1 = sha256(b"d1");
        let d2 = sha256(b"d2");
        log.append(PREPARE, slot(0, 5), d1).expect("prepare bind");
        // Same slot on a different log is a different binding.
        assert!(log.append(COMMIT, slot(0, 5), d2).is_ok());
        // Different views are different slots.
        assert!(log.append(PREPARE, slot(1, 5), d2).is_ok());
    }

    #[test]
    fn attestation_does_not_verify_under_other_key() {
        let (mut log, _) = setup();
        let mut other_reg = KeyRegistry::new();
        let _other = other_reg.generate(7);
        let att = log
            .append(PREPARE, slot(0, 1), sha256(b"m"))
            .expect("append");
        assert!(!verify_attestation(&other_reg, &att));
    }

    #[test]
    fn tampered_attestation_rejected() {
        let (mut log, reg) = setup();
        let mut att = log
            .append(PREPARE, slot(0, 1), sha256(b"m"))
            .expect("append");
        att.slot.seq = 2;
        assert!(!verify_attestation(&reg, &att));
    }

    #[test]
    fn truncate_rejects_old_slots() {
        let (mut log, _) = setup();
        log.append(PREPARE, slot(0, 10), sha256(b"a")).expect("append");
        log.truncate(100);
        assert_eq!(
            log.append(PREPARE, slot(0, 99), sha256(b"b")),
            Err(LogError::Truncated)
        );
        assert!(log.append(PREPARE, slot(0, 100), sha256(b"c")).is_ok());
        assert!(log.is_empty() || log.len() == 1);
    }

    #[test]
    fn high_watermark_tracks_max() {
        let (mut log, _) = setup();
        log.append(PREPARE, slot(0, 3), sha256(b"a")).expect("append");
        log.append(PREPARE, slot(0, 9), sha256(b"b")).expect("append");
        log.append(PREPARE, slot(0, 5), sha256(b"c")).expect("append");
        assert_eq!(log.high_watermark(PREPARE), 9);
        assert_eq!(log.high_watermark(COMMIT), 0);
    }

    #[test]
    fn recovery_blocks_appends_until_checkpoint() {
        let (mut log, _) = setup();
        log.append(PREPARE, slot(0, 50), sha256(b"pre-crash")).expect("append");
        // Crash. Peers report checkpoints; f = 2, watermark window L = 100.
        let hm = log.restart_and_estimate(&[40, 38, 45, 42, 40], 2, 100);
        assert_eq!(hm, 145); // ckpM = 45, HM = 45 + 100
        assert!(log.is_recovering());
        assert_eq!(
            log.append(PREPARE, slot(0, 60), sha256(b"x")),
            Err(LogError::Recovering)
        );
        // Too-old checkpoint does not complete recovery.
        assert!(!log.complete_recovery(100));
        assert!(log.is_recovering());
        // A checkpoint at HM completes it.
        assert!(log.complete_recovery(145));
        assert!(!log.is_recovering());
        // Slots below the checkpoint stay refused — no equivocation window.
        assert_eq!(
            log.append(PREPARE, slot(0, 60), sha256(b"x")),
            Err(LogError::Truncated)
        );
        assert!(log.append(PREPARE, slot(0, 150), sha256(b"y")).is_ok());
    }

    #[test]
    fn ckp_estimate_requires_f_supporters() {
        // One Byzantine peer reports an absurdly high checkpoint; with f = 2
        // it lacks 2 other supporters ≤ it only if... it actually gains
        // supporters (all values are ≤ 10_000). The estimator is an *upper*
        // bound chooser — over-estimating HM is safe (it only delays
        // recovery); under-estimating would be unsafe. Verify the chosen
        // value is ≥ every honest stable checkpoint.
        let honest_ckp = 45;
        let est = estimate_ckp_m(&[40, 38, 45, 42, 10_000], 2);
        assert!(est >= honest_ckp);
    }

    #[test]
    fn ckp_estimate_low_reports_bounded() {
        // Byzantine peers report 0 to drag the estimate down; the honest
        // majority keeps ckpM at an honest value.
        let est = estimate_ckp_m(&[0, 0, 45, 42, 40], 2);
        assert_eq!(est, 45);
    }

    #[test]
    fn ckp_estimate_empty_or_insufficient() {
        assert_eq!(estimate_ckp_m(&[], 2), 0);
        assert_eq!(estimate_ckp_m(&[10], 2), 0); // not enough supporters
    }

    proptest::proptest! {
        /// The estimator never returns less than the f+1-th largest honest
        /// report (safety: HM must upper-bound any stable checkpoint).
        #[test]
        fn estimate_upper_bounds_supported_value(
            mut vals in proptest::collection::vec(0u64..1000, 5..12),
        ) {
            let f = 2usize;
            let est = estimate_ckp_m(&vals, f);
            vals.sort_unstable();
            // The (f+1)-th smallest value has at least f values ≤ it, so the
            // estimator must have found a candidate at least that large.
            let floor = vals[f];
            proptest::prop_assert!(est >= floor);
        }

        /// No equivocation is ever attestable: binding two different digests
        /// to the same slot always fails, regardless of interleaving.
        #[test]
        fn no_equivocation_prop(ops in proptest::collection::vec((0u64..4, 0u64..4, 0u8..4), 1..64)) {
            let mut reg = KeyRegistry::new();
            let key = reg.generate(0);
            let mut log = AttestedLog::new(key);
            let mut first_bind: std::collections::HashMap<(u64, u64), u8> = std::collections::HashMap::new();
            for (view, seq, dbyte) in ops {
                let digest = sha256([dbyte]);
                let res = log.append(PREPARE, Slot { view, seq }, digest);
                match first_bind.get(&(view, seq)) {
                    None => {
                        proptest::prop_assert!(res.is_ok());
                        first_bind.insert((view, seq), dbyte);
                    }
                    Some(prev) if *prev == dbyte => proptest::prop_assert!(res.is_ok()),
                    Some(_) => proptest::prop_assert_eq!(res, Err(LogError::Equivocation)),
                }
            }
        }
    }
}
