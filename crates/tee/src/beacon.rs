//! The RandomnessBeacon enclave (paper §5.1 + Appendix A).
//!
//! At each epoch `e`, a node invokes its beacon enclave. The enclave draws
//! two independent random values `q` (l bits) and `rnd`, and returns a
//! signed certificate `⟨e, rnd⟩` **iff q == 0**. The enclave answers at most
//! once per epoch, so the host cannot selectively discard outputs to bias
//! the network-wide choice (nodes lock in the lowest received `rnd` after a
//! synchrony bound Δ).
//!
//! Rollback defense (Appendix A): restarting the enclave must not allow a
//! second draw for the same epoch. The enclave therefore refuses to serve
//! any epoch `e != 0` for a duration Δ after (re)instantiation, and the
//! genesis epoch is protected by a monotonic hardware counter.

use ahl_crypto::{sha256_parts, Hash, KeyRegistry, Signature, SigningKey};
use ahl_simkit::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A signed beacon certificate `⟨e, rnd⟩`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BeaconCert {
    /// Epoch this randomness is valid for.
    pub epoch: u64,
    /// The random value. Nodes adopt the lowest `rnd` network-wide.
    pub rnd: u64,
    /// Enclave signature over (epoch, rnd).
    pub sig: Signature,
}

fn cert_digest(epoch: u64, rnd: u64) -> Hash {
    sha256_parts(&[b"ahl-beacon", &epoch.to_be_bytes(), &rnd.to_be_bytes()])
}

/// Verify a beacon certificate against the enclave key registry.
pub fn verify_cert(registry: &KeyRegistry, cert: &BeaconCert) -> bool {
    registry.verify(&cert_digest(cert.epoch, cert.rnd), &cert.sig)
}

/// Outcome of a beacon invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeaconOutcome {
    /// `q == 0`: the enclave released a certificate.
    Certified(BeaconCert),
    /// `q != 0`: no certificate this epoch (the common case; with l bits the
    /// release probability is 2^-l).
    Silent,
    /// The epoch was already served once — replay refused.
    AlreadyInvoked,
    /// Within Δ of (re)instantiation — refusal defeats restart attacks.
    TooSoonAfterRestart,
}

/// The RandomnessBeacon enclave state.
#[derive(Debug)]
pub struct RandomnessBeacon {
    key: SigningKey,
    /// Bit length of the release filter `q`.
    l_bits: u32,
    rng: SmallRng,
    /// Epochs already served (volatile; the Δ rule covers restarts).
    served_through: Option<u64>,
    /// Instantiation instant, for the Δ refusal window.
    instantiated_at: SimTime,
    /// The synchrony bound Δ.
    delta: SimDuration,
    /// Monotonic counter protecting the genesis epoch across restarts.
    genesis_served: bool,
}

impl RandomnessBeacon {
    /// Instantiate the enclave at simulated time `now` with filter length
    /// `l_bits` and synchrony bound `delta`.
    pub fn new(key: SigningKey, seed: u64, l_bits: u32, delta: SimDuration, now: SimTime) -> Self {
        RandomnessBeacon {
            key,
            l_bits,
            rng: SmallRng::seed_from_u64(seed),
            served_through: None,
            instantiated_at: now,
            delta,
            genesis_served: false,
        }
    }

    /// The probability that one invocation yields a certificate: `2^-l`.
    pub fn release_probability(&self) -> f64 {
        2f64.powi(-(self.l_bits as i32))
    }

    /// Invoke the beacon for `epoch` at time `now`.
    pub fn invoke(&mut self, epoch: u64, now: SimTime) -> BeaconOutcome {
        // Appendix A: refuse non-genesis epochs within Δ of instantiation so
        // a restart cannot re-roll an epoch the network is still locking.
        if epoch != 0 && now.since(self.instantiated_at) < self.delta {
            return BeaconOutcome::TooSoonAfterRestart;
        }
        if epoch == 0 && self.genesis_served {
            return BeaconOutcome::AlreadyInvoked;
        }
        if let Some(served) = self.served_through {
            if epoch <= served {
                return BeaconOutcome::AlreadyInvoked;
            }
        }
        if epoch == 0 {
            self.genesis_served = true;
        }
        self.served_through = Some(self.served_through.map_or(epoch, |s| s.max(epoch)));

        // Two independent draws, as in the paper (two sgx_read_rand calls).
        let q: u64 = if self.l_bits == 0 {
            0
        } else if self.l_bits >= 64 {
            self.rng.gen::<u64>()
        } else {
            self.rng.gen::<u64>() & ((1u64 << self.l_bits) - 1)
        };
        let rnd: u64 = self.rng.gen();
        if q != 0 {
            return BeaconOutcome::Silent;
        }
        BeaconOutcome::Certified(BeaconCert {
            epoch,
            rnd,
            sig: self.key.sign(&cert_digest(epoch, rnd)),
        })
    }

    /// Simulate an enclave restart at `now` (volatile state lost except the
    /// genesis monotonic counter).
    pub fn restart(&mut self, now: SimTime, reseed: u64) {
        self.served_through = None;
        self.instantiated_at = now;
        self.rng = SmallRng::seed_from_u64(reseed);
        // genesis_served persists: it is backed by the CPU monotonic counter.
    }

    /// Probability that **no** node in a network of `n` obtains a
    /// certificate in one round: `(1 - 2^-l)^n` (paper §5.1).
    pub fn repeat_probability(l_bits: u32, n: usize) -> f64 {
        (1.0 - 2f64.powi(-(l_bits as i32))).powi(n as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon(l_bits: u32) -> (RandomnessBeacon, KeyRegistry) {
        let mut reg = KeyRegistry::new();
        let key = reg.generate(9);
        let b = RandomnessBeacon::new(key, 77, l_bits, SimDuration::from_secs(4), SimTime::ZERO);
        (b, reg)
    }

    #[test]
    fn l_zero_always_certifies_genesis() {
        let (mut b, reg) = beacon(0);
        match b.invoke(0, SimTime::ZERO) {
            BeaconOutcome::Certified(cert) => {
                assert_eq!(cert.epoch, 0);
                assert!(verify_cert(&reg, &cert));
            }
            other => panic!("expected certificate, got {other:?}"),
        }
    }

    #[test]
    fn one_invocation_per_epoch() {
        let (mut b, _) = beacon(0);
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert!(matches!(b.invoke(1, t), BeaconOutcome::Certified(_)));
        assert_eq!(b.invoke(1, t), BeaconOutcome::AlreadyInvoked);
        // Serving epoch e also burns all earlier epochs (monotone).
        assert!(matches!(b.invoke(3, t), BeaconOutcome::Certified(_)));
        assert_eq!(b.invoke(2, t), BeaconOutcome::AlreadyInvoked);
    }

    #[test]
    fn silent_when_q_nonzero() {
        // With l = 30 the chance of q == 0 is ~1e-9; one draw is Silent.
        let (mut b, _) = beacon(30);
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(b.invoke(1, t), BeaconOutcome::Silent);
        // And the epoch is still burned — no re-roll.
        assert_eq!(b.invoke(1, t), BeaconOutcome::AlreadyInvoked);
    }

    #[test]
    fn restart_attack_blocked_by_delta_window() {
        let (mut b, _) = beacon(4);
        let t1 = SimTime::ZERO + SimDuration::from_secs(10);
        let _first = b.invoke(5, t1);
        // Adversary restarts the enclave hoping for a fresh draw of epoch 5.
        b.restart(t1, 1234);
        assert_eq!(b.invoke(5, t1), BeaconOutcome::TooSoonAfterRestart);
        // Even just before Δ elapses it is refused.
        let almost = t1 + SimDuration::from_millis(3_999);
        assert_eq!(b.invoke(5, almost), BeaconOutcome::TooSoonAfterRestart);
        // After Δ the epoch may be served — but by then honest nodes have
        // locked rnd for epoch 5, so the attacker gains nothing.
        let after = t1 + SimDuration::from_secs(4);
        assert!(!matches!(b.invoke(5, after), BeaconOutcome::TooSoonAfterRestart));
    }

    #[test]
    fn genesis_protected_across_restart() {
        let (mut b, _) = beacon(0);
        assert!(matches!(b.invoke(0, SimTime::ZERO), BeaconOutcome::Certified(_)));
        b.restart(SimTime::ZERO + SimDuration::from_secs(100), 555);
        let later = SimTime::ZERO + SimDuration::from_secs(200);
        assert_eq!(b.invoke(0, later), BeaconOutcome::AlreadyInvoked);
    }

    #[test]
    fn tampered_cert_rejected() {
        let (mut b, reg) = beacon(0);
        let BeaconOutcome::Certified(mut cert) = b.invoke(0, SimTime::ZERO) else {
            panic!("expected cert");
        };
        cert.rnd ^= 1;
        assert!(!verify_cert(&reg, &cert));
    }

    #[test]
    fn repeat_probability_formula() {
        // l = log2(N) gives Prepeat ≈ e^-1 (paper §5.1).
        let p = RandomnessBeacon::repeat_probability(7, 128);
        assert!((p - (1.0f64 - 1.0 / 128.0).powi(128)).abs() < 1e-12);
        assert!((p - (-1.0f64).exp()).abs() < 0.01);
        // l = constant makes Prepeat ≈ 0 for large N.
        assert!(RandomnessBeacon::repeat_probability(4, 512) < 1e-14);
    }

    #[test]
    fn release_rate_matches_l() {
        // Statistical check: with l = 3 the release rate is ≈ 1/8.
        let mut hits = 0;
        let total = 2000;
        for i in 0..total {
            let mut reg = KeyRegistry::new();
            let key = reg.generate(i);
            let mut b = RandomnessBeacon::new(
                key,
                i,
                3,
                SimDuration::from_secs(1),
                SimTime::ZERO,
            );
            if matches!(b.invoke(0, SimTime::ZERO), BeaconOutcome::Certified(_)) {
                hits += 1;
            }
        }
        let rate = hits as f64 / total as f64;
        assert!((rate - 0.125).abs() < 0.03, "rate {rate}");
    }
}
