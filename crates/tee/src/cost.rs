//! The enclave-operation cost model (paper Table 2).
//!
//! The paper ran the SGX SDK in simulation mode on SGX-less machines and
//! injected operation latencies measured on a Skylake 6970HQ with SGX
//! enabled. We reproduce exactly that methodology: every enclave operation
//! charges its Table 2 latency to the simulated clock via
//! [`CostModel::cost`].

use ahl_simkit::SimDuration;

/// Enclave/crypto operations with measured costs (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TeeOp {
    /// ECDSA signature creation: 458.4 µs.
    EcdsaSign,
    /// ECDSA signature verification: 844.2 µs.
    EcdsaVerify,
    /// SHA-256 of a message: 2.5 µs.
    Sha256,
    /// Attested-log append (sign + bookkeeping inside the enclave): 465.3 µs.
    AhlAppend,
    /// AHLR quorum-message aggregation for a given `f` (verify f+1
    /// signatures and emit one proof). Table 2 reports 8031.2 µs at f = 8.
    MessageAggregation {
        /// Fault threshold: the enclave verifies `f + 1` signed messages.
        f: usize,
    },
    /// RandomnessBeacon invocation (two `sgx_read_rand` calls + certificate
    /// signing): 482.2 µs.
    RandomnessBeacon,
    /// Enclave ECALL/OCALL boundary crossing: 2.7 µs.
    EnclaveSwitch,
    /// Remote attestation handshake (executed once per epoch between
    /// committee members; results cached): ~2 ms.
    RemoteAttestation,
}

/// Latencies charged for each [`TeeOp`], defaulting to the paper's Table 2.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// ECDSA signing cost.
    pub ecdsa_sign: SimDuration,
    /// ECDSA verification cost.
    pub ecdsa_verify: SimDuration,
    /// SHA-256 cost.
    pub sha256: SimDuration,
    /// Attested append cost.
    pub ahl_append: SimDuration,
    /// Fixed part of message aggregation (the per-signature part is
    /// `(f + 1) * ecdsa_verify`). Calibrated so `f = 8` reproduces the
    /// measured 8031.2 µs.
    pub aggregation_base: SimDuration,
    /// Beacon invocation cost.
    pub beacon: SimDuration,
    /// Enclave boundary crossing cost.
    pub enclave_switch: SimDuration,
    /// Remote attestation cost.
    pub remote_attestation: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ecdsa_sign: SimDuration::from_micros_f64(458.4),
            ecdsa_verify: SimDuration::from_micros_f64(844.2),
            sha256: SimDuration::from_micros_f64(2.5),
            ahl_append: SimDuration::from_micros_f64(465.3),
            // 8031.2 µs = 9 * 844.2 µs + base  =>  base = 433.4 µs
            aggregation_base: SimDuration::from_micros_f64(433.4),
            beacon: SimDuration::from_micros_f64(482.2),
            enclave_switch: SimDuration::from_micros_f64(2.7),
            remote_attestation: SimDuration::from_millis(2),
        }
    }
}

impl CostModel {
    /// A zero-cost model (for unit tests that assert pure protocol logic).
    pub fn free() -> Self {
        CostModel {
            ecdsa_sign: SimDuration::ZERO,
            ecdsa_verify: SimDuration::ZERO,
            sha256: SimDuration::ZERO,
            ahl_append: SimDuration::ZERO,
            aggregation_base: SimDuration::ZERO,
            beacon: SimDuration::ZERO,
            enclave_switch: SimDuration::ZERO,
            remote_attestation: SimDuration::ZERO,
        }
    }

    /// The simulated latency of `op`, including the enclave switch for
    /// operations that cross the enclave boundary.
    pub fn cost(&self, op: TeeOp) -> SimDuration {
        match op {
            TeeOp::EcdsaSign => self.ecdsa_sign,
            TeeOp::EcdsaVerify => self.ecdsa_verify,
            TeeOp::Sha256 => self.sha256,
            TeeOp::AhlAppend => self.enclave_switch + self.ahl_append,
            TeeOp::MessageAggregation { f } => {
                self.enclave_switch
                    + self.aggregation_base
                    + self.ecdsa_verify.saturating_mul((f + 1) as u64)
            }
            TeeOp::RandomnessBeacon => self.enclave_switch + self.beacon,
            TeeOp::EnclaveSwitch => self.enclave_switch,
            TeeOp::RemoteAttestation => self.remote_attestation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let m = CostModel::default();
        assert_eq!(m.cost(TeeOp::EcdsaSign).as_nanos(), 458_400);
        assert_eq!(m.cost(TeeOp::EcdsaVerify).as_nanos(), 844_200);
        assert_eq!(m.cost(TeeOp::Sha256).as_nanos(), 2_500);
        // Enclave-crossing ops include the 2.7 µs switch.
        assert_eq!(m.cost(TeeOp::AhlAppend).as_nanos(), 2_700 + 465_300);
        assert_eq!(m.cost(TeeOp::RandomnessBeacon).as_nanos(), 2_700 + 482_200);
    }

    #[test]
    fn aggregation_matches_table2_at_f8() {
        let m = CostModel::default();
        let c = m.cost(TeeOp::MessageAggregation { f: 8 });
        // Table 2: 8031.2 µs (+ the 2.7 µs switch the table excludes).
        assert_eq!(c.as_nanos(), 8_031_200 + 2_700);
    }

    #[test]
    fn aggregation_scales_with_f() {
        let m = CostModel::default();
        let c1 = m.cost(TeeOp::MessageAggregation { f: 1 });
        let c16 = m.cost(TeeOp::MessageAggregation { f: 16 });
        assert!(c16 > c1);
        let delta = c16 - c1;
        assert_eq!(delta.as_nanos(), 15 * 844_200);
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::free();
        assert_eq!(m.cost(TeeOp::MessageAggregation { f: 8 }), SimDuration::ZERO);
        assert_eq!(m.cost(TeeOp::EcdsaSign), SimDuration::ZERO);
    }
}
