//! Data sealing and monotonic counters (paper §2.3 + Appendix A).
//!
//! Sealing lets an enclave persist state across crashes, encrypted and
//! authenticated under a key bound to the enclave measurement. The host
//! controls persistent storage, so it can *replay stale blobs* (rollback
//! attack, Matetic et al.); the tests demonstrate the attack and the
//! monotonic-counter defense.

use ahl_crypto::{hmac_sha256, mac_eq, sha256_parts, Hash};

/// The enclave measurement a sealing key is bound to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Measurement(pub Hash);

/// A sealed blob as it sits on (host-controlled) persistent storage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBlob {
    /// Version stamp chosen by the sealing enclave (e.g. a counter value).
    pub version: u64,
    /// The enclosed state (kept in clear in the simulation — the TEE threat
    /// model here is integrity-only / seal-glassed, see paper §3.3).
    pub data: Vec<u8>,
    mac: Hash,
}

/// The sealing facility of one enclave.
#[derive(Clone, Debug)]
pub struct Sealer {
    measurement: Measurement,
    sealing_key: [u8; 32],
}

/// Why unsealing failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsealError {
    /// MAC mismatch: tampered data or a blob sealed by another enclave.
    BadMac,
    /// Blob authentic but older than the expected version (rollback).
    Stale {
        /// Version found in the blob.
        found: u64,
        /// Minimum version the caller required.
        required: u64,
    },
}

impl Sealer {
    /// Derive a sealer for the enclave with `measurement` (key derivation
    /// stands in for `sgx_get_seal_key`, deterministic per measurement and
    /// platform seed).
    pub fn new(measurement: Measurement, platform_seed: u64) -> Self {
        let key = sha256_parts(&[b"ahl-seal-key", &measurement.0 .0, &platform_seed.to_be_bytes()]);
        Sealer {
            measurement,
            sealing_key: key.0,
        }
    }

    /// The measurement this sealer is bound to.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Seal `data` with a `version` stamp.
    pub fn seal(&self, version: u64, data: &[u8]) -> SealedBlob {
        let mac = self.compute_mac(version, data);
        SealedBlob {
            version,
            data: data.to_vec(),
            mac,
        }
    }

    fn compute_mac(&self, version: u64, data: &[u8]) -> Hash {
        let framed = sha256_parts(&[b"ahl-seal", &version.to_be_bytes(), data]);
        hmac_sha256(&self.sealing_key, &framed.0)
    }

    /// Unseal `blob`, requiring `min_version` freshness. Callers that cannot
    /// establish freshness (no counter) pass 0 — and are then vulnerable to
    /// rollback, as the tests demonstrate.
    pub fn unseal(&self, blob: &SealedBlob, min_version: u64) -> Result<Vec<u8>, UnsealError> {
        if !mac_eq(&self.compute_mac(blob.version, &blob.data), &blob.mac) {
            return Err(UnsealError::BadMac);
        }
        if blob.version < min_version {
            return Err(UnsealError::Stale {
                found: blob.version,
                required: min_version,
            });
        }
        Ok(blob.data.clone())
    }
}

/// A hardware monotonic counter (`sgx_increment_monotonic_counter`): the
/// anti-rollback anchor. Unlike sealed blobs it survives host interference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonotonicCounter {
    value: u64,
}

impl MonotonicCounter {
    /// A fresh counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment and return the new value.
    pub fn increment(&mut self) -> u64 {
        self.value += 1;
        self.value
    }

    /// Read without incrementing.
    pub fn read(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_crypto::sha256;

    fn sealer() -> Sealer {
        Sealer::new(Measurement(sha256(b"beacon-enclave-v1")), 1)
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let s = sealer();
        let blob = s.seal(3, b"log heads: 42");
        assert_eq!(s.unseal(&blob, 0).expect("authentic"), b"log heads: 42");
        assert_eq!(s.unseal(&blob, 3).expect("fresh enough"), b"log heads: 42");
    }

    #[test]
    fn tampered_blob_rejected() {
        let s = sealer();
        let mut blob = s.seal(1, b"state");
        blob.data[0] ^= 0xff;
        assert_eq!(s.unseal(&blob, 0), Err(UnsealError::BadMac));
    }

    #[test]
    fn version_tamper_rejected() {
        let s = sealer();
        let mut blob = s.seal(1, b"state");
        blob.version = 99; // host inflates the freshness stamp
        assert_eq!(s.unseal(&blob, 0), Err(UnsealError::BadMac));
    }

    #[test]
    fn cross_enclave_blob_rejected() {
        let a = Sealer::new(Measurement(sha256(b"enclave-a")), 1);
        let b = Sealer::new(Measurement(sha256(b"enclave-b")), 1);
        let blob = a.seal(1, b"secret state");
        assert_eq!(b.unseal(&blob, 0), Err(UnsealError::BadMac));
    }

    #[test]
    fn cross_platform_blob_rejected() {
        // Same enclave code, different machine: different platform seed.
        let a = Sealer::new(Measurement(sha256(b"enclave")), 1);
        let b = Sealer::new(Measurement(sha256(b"enclave")), 2);
        let blob = a.seal(1, b"state");
        assert_eq!(b.unseal(&blob, 0), Err(UnsealError::BadMac));
    }

    /// The rollback attack of Matetic et al.: a properly sealed but stale
    /// blob passes MAC verification. Without a counter the enclave accepts
    /// it; with one it does not.
    #[test]
    fn rollback_attack_and_counter_defense() {
        let s = sealer();
        let mut counter = MonotonicCounter::new();

        let v1 = counter.increment();
        let old_blob = s.seal(v1, b"heads=10");
        let v2 = counter.increment();
        let _new_blob = s.seal(v2, b"heads=20");

        // Attack: host serves the old blob on recovery.
        // (a) Enclave without freshness tracking: accepted — attack works.
        assert!(s.unseal(&old_blob, 0).is_ok());
        // (b) Enclave consults its monotonic counter: rejected.
        assert_eq!(
            s.unseal(&old_blob, counter.read()),
            Err(UnsealError::Stale { found: v1, required: v2 })
        );
    }

    #[test]
    fn counter_is_monotone() {
        let mut c = MonotonicCounter::new();
        assert_eq!(c.read(), 0);
        assert_eq!(c.increment(), 1);
        assert_eq!(c.increment(), 2);
        assert_eq!(c.read(), 2);
    }
}
