//! Remote attestation (paper §2.3): verifying that a peer runs the correct
//! enclave before trusting its attested messages.
//!
//! The CPU measures the enclave at initialization (hash of its initial
//! state) and signs quotes over (measurement, report data) with a
//! platform key. Committee members attest each other once per epoch
//! (cost ≈ 2 ms, Table 2) and cache the result.

use ahl_crypto::{sha256_parts, Hash, KeyRegistry, Signature, SigningKey};

use crate::sealing::Measurement;

/// A signed attestation quote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quote {
    /// Measurement of the attested enclave.
    pub measurement: Measurement,
    /// Caller-chosen report data (e.g. a nonce plus the enclave's key id).
    pub report_data: Hash,
    /// Platform (CPU) signature over the quote body.
    pub sig: Signature,
}

fn quote_digest(measurement: &Measurement, report_data: &Hash) -> Hash {
    sha256_parts(&[b"ahl-quote", &measurement.0 .0, &report_data.0])
}

/// The platform's quoting identity (stands in for the CPU attestation key
/// and the Intel Attestation Service round-trip).
#[derive(Debug)]
pub struct QuotingEnclave {
    platform_key: SigningKey,
}

impl QuotingEnclave {
    /// Create a quoting enclave whose platform key is registered in `registry`.
    pub fn new(registry: &mut KeyRegistry, platform_seed: u64) -> Self {
        QuotingEnclave {
            platform_key: registry.generate(platform_seed),
        }
    }

    /// Produce a quote for a local enclave with `measurement` and
    /// `report_data`.
    pub fn quote(&self, measurement: Measurement, report_data: Hash) -> Quote {
        Quote {
            measurement,
            report_data,
            sig: self.platform_key.sign(&quote_digest(&measurement, &report_data)),
        }
    }
}

/// Verify `quote` against the platform key registry and an expected
/// measurement (the known-good enclave build).
pub fn verify_quote(registry: &KeyRegistry, expected: Measurement, quote: &Quote) -> bool {
    quote.measurement == expected
        && registry.verify(&quote_digest(&quote.measurement, &quote.report_data), &quote.sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_crypto::sha256;

    fn setup() -> (QuotingEnclave, KeyRegistry, Measurement) {
        let mut reg = KeyRegistry::new();
        let qe = QuotingEnclave::new(&mut reg, 1);
        (qe, reg, Measurement(sha256(b"ahl-consensus-enclave-v1")))
    }

    #[test]
    fn quote_verifies() {
        let (qe, reg, m) = setup();
        let nonce = sha256(b"nonce-123");
        let q = qe.quote(m, nonce);
        assert!(verify_quote(&reg, m, &q));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (qe, reg, m) = setup();
        let q = qe.quote(m, sha256(b"nonce"));
        let evil = Measurement(sha256(b"trojaned-enclave"));
        assert!(!verify_quote(&reg, evil, &q));
    }

    #[test]
    fn forged_measurement_claim_rejected() {
        // Attacker runs a trojaned enclave but claims the good measurement.
        let (qe, reg, good) = setup();
        let mut q = qe.quote(Measurement(sha256(b"trojaned")), sha256(b"nonce"));
        q.measurement = good;
        assert!(!verify_quote(&reg, good, &q));
    }

    #[test]
    fn replayed_report_data_detectable() {
        // Verifiers bind quotes to fresh nonces; a quote over an old nonce
        // fails the (external) nonce check — here we just confirm the
        // report data is covered by the signature.
        let (qe, reg, m) = setup();
        let mut q = qe.quote(m, sha256(b"nonce-old"));
        q.report_data = sha256(b"nonce-new");
        assert!(!verify_quote(&reg, m, &q));
    }

    #[test]
    fn cross_platform_quote_rejected() {
        let (qe_a, _reg_a, m) = setup();
        let mut reg_b = KeyRegistry::new();
        let _qe_b = QuotingEnclave::new(&mut reg_b, 2);
        let q = qe_a.quote(m, sha256(b"n"));
        assert!(!verify_quote(&reg_b, m, &q));
    }
}
