//! # ahl-tee — trusted execution environment substrate
//!
//! A software simulation of the Intel SGX facilities the paper builds on,
//! mirroring the authors' own methodology (SGX SDK in *simulation mode*
//! plus injected operation latencies measured on real SGX hardware —
//! Table 2).
//!
//! Components:
//!
//! * [`CostModel`] / [`TeeOp`] — the Table 2 latencies charged to the
//!   simulated clock for every enclave operation.
//! * [`AttestedLog`] — attested append-only memory (Chun et al.): binds one
//!   message digest per consensus slot, removing equivocation and raising
//!   BFT tolerance from N = 3f+1 to N = 2f+1. Includes the Appendix A
//!   crash-recovery estimation that defeats rollback attacks.
//! * [`RandomnessBeacon`] — the shard-formation randomness enclave: signed
//!   `⟨e, rnd⟩` certificates released with probability 2^-l, at most once
//!   per epoch, with the Δ-window restart defense.
//! * [`Sealer`] / [`MonotonicCounter`] — data sealing with rollback-attack
//!   demonstration and counter-based defense.
//! * [`QuotingEnclave`] — remote attestation quotes over enclave
//!   measurements.
//!
//! Threat model (paper §3.3): integrity-only, "seal-glassed" enclaves —
//! execution is transparent to the adversary, but tampering with enclave
//! state transitions or forging enclave signatures is impossible. In the
//! simulation this is enforced structurally: hosts can call enclave entry
//! points with arbitrary arguments but cannot mutate enclave-private fields
//! or mint [`ahl_crypto::Signature`]s for enclave keys they do not hold.

#![warn(missing_docs)]

mod attestation;
mod attested_log;
mod beacon;
mod cost;
mod sealing;

pub use attestation::{verify_quote, Quote, QuotingEnclave};
pub use attested_log::{
    estimate_ckp_m, verify_attestation, Attestation, AttestedLog, LogError, LogId, Slot,
};
pub use beacon::{verify_cert, BeaconCert, BeaconOutcome, RandomnessBeacon};
pub use cost::{CostModel, TeeOp};
pub use sealing::{Measurement, MonotonicCounter, SealedBlob, Sealer, UnsealError};
