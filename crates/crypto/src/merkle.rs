//! Binary Merkle trees for block transaction roots and state roots.
//!
//! Leaves are hashed with a `0x00` prefix and interior nodes with `0x01`
//! (second-preimage-resistance domain separation, as in RFC 6962). Odd
//! levels promote the last node unchanged.

use crate::sha256::{Hash, Sha256};

fn leaf_hash(data: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update([0x00u8]);
    h.update(data);
    h.finalize()
}

fn node_hash(left: &Hash, right: &Hash) -> Hash {
    let mut h = Sha256::new();
    h.update([0x01u8]);
    h.update(left.0);
    h.update(right.0);
    h.finalize()
}

/// A Merkle tree over a list of byte-string leaves.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels[0] = leaf hashes, levels.last() = [root].
    levels: Vec<Vec<Hash>>,
}

/// An inclusion proof: sibling hashes from leaf to root, with direction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// (sibling, sibling_is_right) from bottom to top. Levels where the node
    /// is promoted without a sibling are skipped.
    pub path: Vec<(Hash, bool)>,
}

impl MerkleTree {
    /// Build a tree over `leaves`. An empty list yields the zero root.
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        if leaves.is_empty() {
            return MerkleTree { levels: vec![vec![]] };
        }
        let mut levels = vec![leaves.iter().map(|l| leaf_hash(l.as_ref())).collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [l, r] => next.push(node_hash(l, r)),
                    [l] => next.push(*l), // odd node promoted unchanged
                    _ => unreachable!("chunks(2) yields 1..=2 items"),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root hash ([`Hash::ZERO`] for an empty tree).
    pub fn root(&self) -> Hash {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or(Hash::ZERO)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map(Vec::len).unwrap_or(0)
    }

    /// True when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce an inclusion proof for leaf `index`, or `None` out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push((level[sibling], sibling > idx));
            }
            idx /= 2;
        }
        Some(MerkleProof { leaf_index: index, path })
    }
}

/// Verify `proof` that `leaf_data` is included under `root`.
pub fn verify_proof(root: &Hash, leaf_data: &[u8], proof: &MerkleProof) -> bool {
    let mut acc = leaf_hash(leaf_data);
    for (sibling, sibling_is_right) in &proof.path {
        acc = if *sibling_is_right {
            node_hash(&acc, sibling)
        } else {
            node_hash(sibling, &acc)
        };
    }
    acc == *root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("txn-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_zero_root() {
        let t = MerkleTree::build::<Vec<u8>>(&[]);
        assert_eq!(t.root(), Hash::ZERO);
        assert!(t.is_empty());
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::build(&[b"a".to_vec()]);
        assert_eq!(t.root(), leaf_hash(b"a"));
        let p = t.prove(0).expect("leaf 0");
        assert!(p.path.is_empty());
        assert!(verify_proof(&t.root(), b"a", &p));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=33 {
            let data = leaves(n);
            let t = MerkleTree::build(&data);
            for (i, leaf) in data.iter().enumerate() {
                let p = t.prove(i).expect("in range");
                assert!(verify_proof(&t.root(), leaf, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let data = leaves(8);
        let t = MerkleTree::build(&data);
        let p = t.prove(3).expect("leaf 3");
        assert!(!verify_proof(&t.root(), b"txn-4", &p));
    }

    #[test]
    fn tampered_root_rejected() {
        let data = leaves(8);
        let t = MerkleTree::build(&data);
        let p = t.prove(3).expect("leaf 3");
        let mut bad_root = t.root();
        bad_root.0[0] ^= 1;
        assert!(!verify_proof(&bad_root, &data[3], &p));
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::build(&leaves(8));
        let mut modified = leaves(8);
        modified[7] = b"txn-7-evil".to_vec();
        let b = MerkleTree::build(&modified);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // A two-leaf tree's root must differ from a single leaf whose data is
        // the concatenation of the two leaf hashes (classic CVE-2012-2459
        // style ambiguity).
        let t = MerkleTree::build(&[b"a".to_vec(), b"b".to_vec()]);
        let concat: Vec<u8> = leaf_hash(b"a").0.iter().chain(leaf_hash(b"b").0.iter()).copied().collect();
        let fake = MerkleTree::build(&[concat]);
        assert_ne!(t.root(), fake.root());
    }

    proptest::proptest! {
        #[test]
        fn all_proofs_verify(n in 1usize..64, pick in 0usize..64) {
            let pick = pick % n;
            let data = leaves(n);
            let t = MerkleTree::build(&data);
            let p = t.prove(pick).expect("in range");
            proptest::prop_assert!(verify_proof(&t.root(), &data[pick], &p));
        }

        #[test]
        fn proof_does_not_transfer(n in 2usize..64, a in 0usize..64, b in 0usize..64) {
            let a = a % n;
            let b = b % n;
            if a != b {
                let data = leaves(n);
                let t = MerkleTree::build(&data);
                let p = t.prove(a).expect("in range");
                proptest::prop_assert!(!verify_proof(&t.root(), &data[b], &p));
            }
        }
    }
}
