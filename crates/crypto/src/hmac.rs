//! HMAC-SHA256 (RFC 2104), the MAC underlying the simulated signature
//! scheme in [`crate::sig`].

use crate::sha256::{Hash, Sha256};

const BLOCK: usize = 64;

/// Compute HMAC-SHA256 of `msg` under `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Hash {
    // Keys longer than the block size are hashed first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kh = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        k[..32].copy_from_slice(&kh.0);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let inner = {
        let mut h = Sha256::new();
        h.update(ipad);
        h.update(msg);
        h.finalize()
    };
    let mut h = Sha256::new();
    h.update(opad);
    h.update(inner.0);
    h.finalize()
}

/// Constant-shape equality check for MACs. (Timing attacks are outside the
/// simulation threat model, but branch-free comparison is still the correct
/// idiom to expose.)
pub fn mac_eq(a: &Hash, b: &Hash) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.0.iter().zip(b.0.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: Hash) -> String {
        h.to_hex()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let out = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(out),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let out = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn mac_eq_detects_differences() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(mac_eq(&a, &b));
        b.0[31] ^= 1;
        assert!(!mac_eq(&a, &b));
    }

    proptest::proptest! {
        #[test]
        fn different_keys_different_macs(k1: Vec<u8>, k2: Vec<u8>, msg: Vec<u8>) {
            if k1 != k2 {
                proptest::prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
            }
        }
    }
}
