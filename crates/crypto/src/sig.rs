//! Digital signatures with simulated ECDSA cost.
//!
//! ## Substitution note (see DESIGN.md §2)
//!
//! The behavioural content of a signature in the paper's protocols is
//! (a) *unforgeability* — a Byzantine node cannot produce valid messages on
//! behalf of another node or of an enclave — and (b) *CPU cost* (Table 2:
//! signing 458.4 µs, verification 844.2 µs). This module provides (a)
//! structurally: signing requires holding the [`SigningKey`] object, and the
//! verifying side only ever holds a [`KeyRegistry`] oracle that answers
//! valid/invalid without exposing secrets. MACs are HMAC-SHA256 over the
//! message digest, so forging without the secret requires breaking the hash.
//! Cost (b) is charged by callers through the `ahl-tee` cost model.

use crate::hmac::{hmac_sha256, mac_eq};
use crate::sha256::{sha256_parts, Hash};

/// Identifies a key pair in the registry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct KeyId(pub u64);

/// The private half of a key pair. Possession of this object is the
/// capability to sign.
#[derive(Clone, Debug)]
pub struct SigningKey {
    id: KeyId,
    secret: [u8; 32],
}

impl SigningKey {
    /// The registry id of this key.
    pub fn id(&self) -> KeyId {
        self.id
    }

    /// Sign a message digest.
    pub fn sign(&self, digest: &Hash) -> Signature {
        Signature {
            signer: self.id,
            mac: hmac_sha256(&self.secret, &digest.0),
        }
    }

    /// Sign raw bytes (digest computed internally with domain framing).
    pub fn sign_bytes(&self, domain: &str, msg: &[u8]) -> Signature {
        self.sign(&sha256_parts(&[domain.as_bytes(), msg]))
    }
}

/// A signature: the signer's key id plus a MAC over the digest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Claimed signer.
    pub signer: KeyId,
    mac: Hash,
}

impl Signature {
    /// Serialized length of [`Signature::to_bytes`].
    pub const BYTES: usize = 40;

    /// Serialize for durable storage (checkpoint certificates persisted in
    /// a node's manifest must survive a restart). This exposes no signing
    /// capability: a deserialized MAC still has to match the registry's
    /// HMAC to verify, so fabricated bytes fail verification exactly like
    /// any other forgery.
    pub fn to_bytes(&self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        out[..8].copy_from_slice(&self.signer.0.to_be_bytes());
        out[8..].copy_from_slice(&self.mac.0);
        out
    }

    /// Deserialize a signature previously produced by
    /// [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8; Self::BYTES]) -> Self {
        let mut id = [0u8; 8];
        id.copy_from_slice(&bytes[..8]);
        let mut mac = Hash::ZERO;
        mac.0.copy_from_slice(&bytes[8..]);
        Signature { signer: KeyId(u64::from_be_bytes(id)), mac }
    }
}

/// Verification oracle. Holds secrets internally; exposes only yes/no
/// verification, mirroring a public-key directory.
#[derive(Default, Debug)]
pub struct KeyRegistry {
    secrets: Vec<[u8; 32]>,
}

impl KeyRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generate a new key pair from seed material. Returns the private half;
    /// the registry retains what it needs for verification.
    pub fn generate(&mut self, seed: u64) -> SigningKey {
        let id = KeyId(self.secrets.len() as u64);
        let secret = sha256_parts(&[b"ahl-keygen", &seed.to_be_bytes(), &id.0.to_be_bytes()]).0;
        self.secrets.push(secret);
        SigningKey { id, secret }
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// True when no keys have been generated.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Verify `sig` over `digest` for the claimed signer.
    pub fn verify(&self, digest: &Hash, sig: &Signature) -> bool {
        let Some(secret) = self.secrets.get(sig.signer.0 as usize) else {
            return false;
        };
        mac_eq(&hmac_sha256(secret, &digest.0), &sig.mac)
    }

    /// Verify a signature over raw bytes with domain framing (the dual of
    /// [`SigningKey::sign_bytes`]).
    pub fn verify_bytes(&self, domain: &str, msg: &[u8], sig: &Signature) -> bool {
        self.verify(&sha256_parts(&[domain.as_bytes(), msg]), sig)
    }

    /// Verify a batch of signatures over one shared `digest` — the shape
    /// of a quorum certificate, where every vote signs the same checkpoint
    /// or commit digest. Each `(expected, sig)` pair checks that the
    /// signature claims the expected signer *and* verifies; the whole
    /// batch must pass. Amortizations over the per-vote loop: the digest
    /// and its framing are computed once (callers of
    /// [`KeyRegistry::verify_bytes_batch`] would otherwise re-hash the
    /// message per vote), duplicate `(signer, mac)` pairs verify once, and
    /// the scan short-circuits on the first failure. (With real ECDSA/BLS
    /// this is where batch verification or signature aggregation slots
    /// in — the call shape is already the batched one.)
    pub fn verify_batch<'a, I>(&self, digest: &Hash, sigs: I) -> bool
    where
        I: IntoIterator<Item = (KeyId, &'a Signature)>,
    {
        // Certificates are small (≤ committee size), so the dedup memo is
        // a linear scan — no allocation-heavy set for a few dozen votes.
        let mut seen: Vec<(KeyId, Hash)> = Vec::new();
        for (expected, sig) in sigs {
            if sig.signer != expected {
                return false;
            }
            if seen.iter().any(|(id, mac)| *id == sig.signer && *mac == sig.mac) {
                continue;
            }
            if !self.verify(digest, sig) {
                return false;
            }
            seen.push((sig.signer, sig.mac));
        }
        true
    }

    /// Batch form of [`KeyRegistry::verify_bytes`]: frame and hash the
    /// message once, then [`KeyRegistry::verify_batch`] the vote set
    /// against it.
    pub fn verify_bytes_batch<'a, I>(&self, domain: &str, msg: &[u8], sigs: I) -> bool
    where
        I: IntoIterator<Item = (KeyId, &'a Signature)>,
    {
        self.verify_batch(&sha256_parts(&[domain.as_bytes(), msg]), sigs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    #[test]
    fn sign_verify_roundtrip() {
        let mut reg = KeyRegistry::new();
        let key = reg.generate(1);
        let digest = sha256(b"block 42");
        let sig = key.sign(&digest);
        assert!(reg.verify(&digest, &sig));
    }

    #[test]
    fn wrong_digest_rejected() {
        let mut reg = KeyRegistry::new();
        let key = reg.generate(1);
        let sig = key.sign(&sha256(b"block 42"));
        assert!(!reg.verify(&sha256(b"block 43"), &sig));
    }

    #[test]
    fn cross_signer_claims_rejected() {
        let mut reg = KeyRegistry::new();
        let k0 = reg.generate(1);
        let _k1 = reg.generate(2);
        let digest = sha256(b"m");
        let mut sig = k0.sign(&digest);
        // A Byzantine node relabels its own signature as another node's.
        sig.signer = KeyId(1);
        assert!(!reg.verify(&digest, &sig));
    }

    #[test]
    fn unknown_signer_rejected() {
        let mut reg = KeyRegistry::new();
        let key = reg.generate(1);
        let digest = sha256(b"m");
        let mut sig = key.sign(&digest);
        sig.signer = KeyId(999);
        assert!(!reg.verify(&digest, &sig));
    }

    #[test]
    fn domain_separation() {
        let mut reg = KeyRegistry::new();
        let key = reg.generate(1);
        let sig = key.sign_bytes("prepare", b"m");
        assert!(reg.verify_bytes("prepare", b"m", &sig));
        assert!(!reg.verify_bytes("commit", b"m", &sig));
    }

    #[test]
    fn deterministic_keygen() {
        let mut r1 = KeyRegistry::new();
        let mut r2 = KeyRegistry::new();
        let k1 = r1.generate(7);
        let k2 = r2.generate(7);
        let d = sha256(b"x");
        assert_eq!(k1.sign(&d), k2.sign(&d));
    }

    #[test]
    fn registry_len() {
        let mut reg = KeyRegistry::new();
        assert!(reg.is_empty());
        reg.generate(0);
        reg.generate(1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn batch_accepts_full_quorum() {
        let mut reg = KeyRegistry::new();
        let keys: Vec<SigningKey> = (0..7).map(|i| reg.generate(i)).collect();
        let digest = sha256(b"checkpoint 9");
        let sigs: Vec<Signature> = keys.iter().map(|k| k.sign(&digest)).collect();
        let pairs: Vec<(KeyId, &Signature)> =
            keys.iter().zip(&sigs).map(|(k, s)| (k.id(), s)).collect();
        assert!(reg.verify_batch(&digest, pairs));
    }

    #[test]
    fn batch_rejects_single_forgery() {
        let mut reg = KeyRegistry::new();
        let keys: Vec<SigningKey> = (0..5).map(|i| reg.generate(i)).collect();
        let digest = sha256(b"checkpoint 9");
        let mut sigs: Vec<Signature> = keys.iter().map(|k| k.sign(&digest)).collect();
        // One vote signs a different digest — the whole cert must fail.
        sigs[3] = keys[3].sign(&sha256(b"checkpoint 10"));
        let pairs: Vec<(KeyId, &Signature)> =
            keys.iter().zip(&sigs).map(|(k, s)| (k.id(), s)).collect();
        assert!(!reg.verify_batch(&digest, pairs));
    }

    #[test]
    fn batch_enforces_signer_binding() {
        // A valid signature attributed to the wrong slot must fail even
        // though it would verify standalone under its true signer.
        let mut reg = KeyRegistry::new();
        let k0 = reg.generate(1);
        let k1 = reg.generate(2);
        let digest = sha256(b"m");
        let s0 = k0.sign(&digest);
        assert!(reg.verify(&digest, &s0));
        assert!(!reg.verify_batch(&digest, [(k1.id(), &s0)]));
    }

    #[test]
    fn batch_memoizes_duplicate_votes() {
        // Duplicate (signer, mac) pairs verify once and still pass; a
        // duplicate of a *bad* signature still fails on first sight.
        let mut reg = KeyRegistry::new();
        let key = reg.generate(1);
        let digest = sha256(b"m");
        let sig = key.sign(&digest);
        assert!(reg.verify_batch(&digest, [(key.id(), &sig), (key.id(), &sig)]));
        let bad = key.sign(&sha256(b"other"));
        assert!(!reg.verify_batch(&digest, [(key.id(), &bad), (key.id(), &bad)]));
    }

    #[test]
    fn batch_bytes_matches_per_vote_verify_bytes() {
        let mut reg = KeyRegistry::new();
        let keys: Vec<SigningKey> = (0..4).map(|i| reg.generate(i)).collect();
        let sigs: Vec<Signature> =
            keys.iter().map(|k| k.sign_bytes("commit", b"blk")).collect();
        let pairs: Vec<(KeyId, &Signature)> =
            keys.iter().zip(&sigs).map(|(k, s)| (k.id(), s)).collect();
        assert!(reg.verify_bytes_batch("commit", b"blk", pairs.clone()));
        assert!(!reg.verify_bytes_batch("prepare", b"blk", pairs));
        for (k, s) in keys.iter().zip(&sigs) {
            assert!(reg.verify_bytes("commit", b"blk", s));
            assert_eq!(k.id(), s.signer);
        }
    }

    #[test]
    fn empty_batch_is_vacuously_valid() {
        // Quorum-size enforcement lives with the certificate, not here.
        let reg = KeyRegistry::new();
        assert!(reg.verify_batch(&sha256(b"m"), std::iter::empty()));
    }

    proptest::proptest! {
        #[test]
        fn verify_only_accepts_genuine(msg: Vec<u8>, tamper in 0usize..32) {
            let mut reg = KeyRegistry::new();
            let key = reg.generate(3);
            let digest = sha256(&msg);
            let sig = key.sign(&digest);
            proptest::prop_assert!(reg.verify(&digest, &sig));
            let mut bad = digest;
            bad.0[tamper] ^= 0x01;
            proptest::prop_assert!(!reg.verify(&bad, &sig));
        }
    }
}
