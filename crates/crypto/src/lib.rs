//! # ahl-crypto — cryptographic substrate
//!
//! Dependency-free implementations of the primitives the AHL protocols use:
//!
//! * [`sha256`] / [`Sha256`] — FIPS 180-4 SHA-256, validated against NIST
//!   vectors. Every consensus message, block and state tuple is hashed.
//! * [`hmac_sha256`] — RFC 2104 HMAC, the MAC under the signature scheme.
//! * [`SigningKey`] / [`KeyRegistry`] — signatures with *structural*
//!   unforgeability and simulated ECDSA cost (see DESIGN.md §2: the
//!   simulation charges Table 2 latencies for sign/verify; elliptic-curve
//!   arithmetic itself would not change any measured shape).
//! * [`MerkleTree`] — RFC 6962-style domain-separated binary Merkle trees
//!   for transaction and state roots.

#![warn(missing_docs)]

mod hmac;
mod merkle;
mod sha256;
mod sig;

pub use hmac::{hmac_sha256, mac_eq};
pub use merkle::{verify_proof, MerkleProof, MerkleTree};
pub use sha256::{sha256, sha256_parts, Hash, Sha256};
pub use sig::{KeyId, KeyRegistry, Signature, SigningKey};
