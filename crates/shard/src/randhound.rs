//! RandHound-style distributed randomness baseline (OmniLedger's beacon,
//! used for the Figure 11 comparison).
//!
//! RandHound (Syta et al., IEEE S&P 2017) partitions the N participants
//! into groups of `c` (OmniLedger suggests c = 16). Within each group,
//! every member deals a PVSS sharing to the others; members verify the
//! share commitments; group secrets are recovered and the client/leader
//! aggregates them into the final random value. Communication is
//! `O(N · c²)` and each node performs `O(c)`-to-`O(c²)` public-key
//! operations — the cost gap the paper's TEE beacon exploits (§7.2:
//! 32× / 21× faster).
//!
//! This implementation reproduces the protocol's *communication and
//! computation pattern* (grouping, deal, verify, recover, aggregate) with
//! measured-cost placeholders for the PVSS cryptography; the actual
//! polynomial commitments are out of scope (DESIGN.md §2).

use ahl_crypto::{sha256_parts, Hash};
use ahl_simkit::{
    Actor, Ctx, MsgClass, Network, NodeId, QueueConfig, Sim, SimConfig, SimDuration, SimTime,
};

/// RandHound protocol messages.
#[derive(Clone, Debug)]
pub enum RhMsg {
    /// Leader → all: session start + group assignment.
    Start {
        /// Session nonce.
        session: u64,
        /// Group index of the recipient.
        group: usize,
        /// Members of that group.
        members: Vec<NodeId>,
    },
    /// Dealer → group member: one PVSS share + commitment vector.
    Deal {
        /// Dealer node.
        dealer: NodeId,
        /// Commitment digest (stands in for the polynomial commitments).
        commitment: Hash,
    },
    /// Member → group: share validity vote.
    Validate {
        /// Voting node.
        voter: NodeId,
        /// Dealer being validated.
        dealer: NodeId,
        /// Vote.
        ok: bool,
    },
    /// Member → leader: recovered group secret contribution.
    GroupSecret {
        /// Contributing group.
        group: usize,
        /// The contribution.
        secret: u64,
    },
    /// Leader → all: final aggregated randomness.
    Final {
        /// The collective random output.
        rnd: u64,
    },
}

impl RhMsg {
    fn wire_size(&self) -> usize {
        match self {
            RhMsg::Start { members, .. } => 64 + members.len() * 8,
            // A PVSS deal carries c shares + commitments (~100 B each).
            RhMsg::Deal { .. } => 2048,
            RhMsg::Validate { .. } => 96,
            RhMsg::GroupSecret { .. } => 128,
            RhMsg::Final { .. } => 64,
        }
    }
}

/// PVSS cryptographic cost model (public-key heavy; measured-cost
/// placeholders in the range reported for Ed25519-based PVSS).
#[derive(Clone, Debug)]
pub struct RhCosts {
    /// Creating one dealer's sharing for a group of c (c polynomial
    /// evaluations + c commitments).
    pub deal_per_member: SimDuration,
    /// Verifying one received share against its commitments.
    pub verify_share: SimDuration,
    /// Recovering a group secret (c Lagrange interpolations).
    pub recover: SimDuration,
    /// Leader-side transcript verification per dealt share: the RandHound
    /// leader validates the whole protocol transcript (O(N·c) public-key
    /// operations) before publishing the randomness.
    pub transcript_per_share: SimDuration,
    /// CPU oversubscription factor: the paper ran 8 single-threaded node
    /// VMs per physical server on the cluster, so every node's crypto runs
    /// ~8x slower than bare metal.
    pub cpu_factor: f64,
}

impl Default for RhCosts {
    fn default() -> Self {
        RhCosts {
            deal_per_member: SimDuration::from_millis(2),
            verify_share: SimDuration::from_millis(3),
            recover: SimDuration::from_millis(5),
            transcript_per_share: SimDuration::from_millis(3),
            cpu_factor: 1.0,
        }
    }
}

impl RhCosts {
    /// Cluster configuration: 8x oversubscription (paper §7.2).
    pub fn cluster() -> Self {
        RhCosts { cpu_factor: 8.0, ..Self::default() }
    }

    fn scaled(&self, d: SimDuration) -> SimDuration {
        d.mul_f64(self.cpu_factor)
    }
}

struct RhNode {
    me: NodeId,
    n: usize,
    c: usize,
    costs: RhCosts,
    is_leader: bool,
    group: usize,
    members: Vec<NodeId>,
    deals_seen: usize,
    validations: usize,
    sent_secret: bool,
    // Leader state.
    secrets: Vec<u64>,
    groups_done: usize,
    num_groups: usize,
    done_at: Option<SimTime>,
}

impl RhNode {
    fn leader_assign(&mut self, ctx: &mut Ctx<'_, RhMsg>) {
        let num_groups = self.n.div_ceil(self.c);
        self.num_groups = num_groups;
        for g in 0..num_groups {
            let members: Vec<NodeId> = (0..self.n)
                .filter(|node| node % num_groups == g)
                .collect();
            for &m in &members {
                ctx.send(
                    m,
                    RhMsg::Start { session: 1, group: g, members: members.clone() },
                );
            }
        }
    }

    fn quorum(&self) -> usize {
        // Two-thirds of the group must validate.
        (self.members.len() * 2).div_ceil(3)
    }
}

impl Actor for RhNode {
    type Msg = RhMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, RhMsg>) {
        if self.is_leader {
            self.leader_assign(ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: RhMsg, ctx: &mut Ctx<'_, RhMsg>) {
        match msg {
            RhMsg::Start { session, group, members } => {
                self.group = group;
                self.members = members;
                // Deal a PVSS sharing to every group member.
                let cost = self
                    .costs
                    .deal_per_member
                    .saturating_mul(self.members.len() as u64);
                ctx.consume_cpu(self.costs.scaled(cost));
                let commitment = sha256_parts(&[
                    b"rh-deal",
                    &session.to_be_bytes(),
                    &(self.me as u64).to_be_bytes(),
                ]);
                let peers: Vec<NodeId> =
                    self.members.iter().copied().filter(|&m| m != self.me).collect();
                ctx.multicast(peers, RhMsg::Deal { dealer: self.me, commitment });
            }
            RhMsg::Deal { dealer, .. } => {
                // Verify the share against its commitment vector.
                ctx.consume_cpu(self.costs.scaled(self.costs.verify_share));
                self.deals_seen += 1;
                let peers: Vec<NodeId> =
                    self.members.iter().copied().filter(|&m| m != self.me).collect();
                ctx.multicast(peers, RhMsg::Validate { voter: self.me, dealer, ok: true });
            }
            RhMsg::Validate { .. } => {
                ctx.consume_cpu(self.costs.scaled(SimDuration::from_micros(50)));
                self.validations += 1;
                // Once enough deals are validated, the lowest-id member
                // recovers and reports the group secret.
                let needed = self.quorum() * self.members.len().saturating_sub(1);
                if !self.sent_secret
                    && self.validations >= needed
                    && self.members.first() == Some(&self.me)
                {
                    self.sent_secret = true;
                    ctx.consume_cpu(self.costs.scaled(self.costs.recover));
                    let secret = sha256_parts(&[
                        b"rh-secret",
                        &(self.group as u64).to_be_bytes(),
                    ])
                    .prefix_u64();
                    ctx.send(0, RhMsg::GroupSecret { group: self.group, secret });
                }
            }
            RhMsg::GroupSecret { secret, .. } => {
                if !self.is_leader {
                    return;
                }
                // Transcript verification for this group's c shares.
                let transcript = self
                    .costs
                    .transcript_per_share
                    .saturating_mul(self.c as u64 * self.c as u64);
                ctx.consume_cpu(self.costs.scaled(transcript));
                self.secrets.push(secret);
                self.groups_done += 1;
                if self.groups_done == self.num_groups {
                    let rnd = self.secrets.iter().fold(0u64, |acc, s| acc ^ s);
                    let everyone: Vec<NodeId> = (1..self.n).collect();
                    ctx.multicast(everyone, RhMsg::Final { rnd });
                    self.done_at = Some(ctx.now());
                    ctx.stats().inc("randhound.done", 1);
                }
            }
            RhMsg::Final { .. } => {
                ctx.consume_cpu(SimDuration::from_micros(200));
                ctx.stats().inc("randhound.received_final", 1);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Result of a RandHound execution.
#[derive(Clone, Debug)]
pub struct RandhoundResult {
    /// Time until all nodes received the final randomness.
    pub completion: SimDuration,
    /// Total messages.
    pub messages: u64,
}

/// Run RandHound with group size `c` (OmniLedger: 16) over `network` with
/// default (bare-metal) costs.
pub fn run_randhound(
    n: usize,
    c: usize,
    network: Box<dyn Network>,
    uplink_bps: Option<f64>,
    seed: u64,
) -> RandhoundResult {
    run_randhound_with(n, c, RhCosts::default(), network, uplink_bps, seed)
}

/// Run RandHound with explicit costs (e.g. [`RhCosts::cluster`]).
pub fn run_randhound_with(
    n: usize,
    c: usize,
    costs: RhCosts,
    network: Box<dyn Network>,
    uplink_bps: Option<f64>,
    seed: u64,
) -> RandhoundResult {
    fn classify(_m: &RhMsg) -> MsgClass {
        MsgClass::CONSENSUS
    }
    fn size_of(m: &RhMsg) -> usize {
        m.wire_size()
    }
    let mut cfg = SimConfig::new(seed);
    cfg.network = network;
    cfg.classify = classify;
    cfg.size_of = size_of;
    cfg.uplink_bps = uplink_bps;
    let mut sim: Sim<RhMsg> = Sim::new(cfg);
    for i in 0..n {
        sim.add_actor(
            Box::new(RhNode {
                me: i,
                n,
                c,
                costs: costs.clone(),
                is_leader: i == 0,
                group: 0,
                members: Vec::new(),
                deals_seen: 0,
                validations: 0,
                sent_secret: false,
                secrets: Vec::new(),
                groups_done: 0,
                num_groups: 0,
                done_at: None,
            }),
            QueueConfig::unbounded(),
        );
    }
    let end = sim.run();
    assert_eq!(
        sim.stats().counter("randhound.done"),
        1,
        "randhound must complete"
    );
    RandhoundResult {
        completion: end.since(SimTime::ZERO),
        messages: sim.stats().counter("net.messages_sent"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_net::ClusterNetwork;

    fn run(n: usize) -> RandhoundResult {
        run_randhound(n, 16, Box::new(ClusterNetwork::new()), Some(1e9), 5)
    }

    #[test]
    fn completes_and_distributes() {
        let r = run(32);
        assert!(r.completion > SimDuration::ZERO);
        assert!(r.messages > 32);
    }

    #[test]
    fn message_complexity_order_nc2() {
        // Within-group traffic dominates: ~N·c messages of deals plus
        // ~N·c² validations.
        let small = run(64);
        let big = run(256);
        let ratio = big.messages as f64 / small.messages as f64;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn completion_grows_with_n() {
        let small = run(32);
        let big = run(512);
        assert!(big.completion > small.completion);
    }
}
