//! Epoch transitions / shard reconfiguration (paper §5.3).
//!
//! A new epoch's beacon output yields a fresh assignment; *transitioning
//! nodes* move committees. Moving everyone at once halts the system for
//! the state-fetch period (the paper's Figure 12 "Swap all" throughput
//! hole), so nodes move in batches of `B` per committee, with `B = log(n)`
//! balancing the safety exposure of Equation 2 against the liveness
//! requirement `B ≤ f`.

use crate::assign::Assignment;
use crate::hypergeom::Resilience;

/// The paper's batch-size choice: `B = log2(n)` (natural-log rounded in the
/// paper's example; log2 keeps B ≤ f comfortably for all n ≥ 4).
pub fn paper_batch_size(n: usize) -> usize {
    ((usize::BITS - 1 - n.max(2).leading_zeros()) as usize).max(1)
}

/// Whether batch size `b` preserves liveness for committees of `n` under
/// `rule`: the `b` nodes out for state fetch must leave a quorum,
/// i.e. `b ≤ f` (paper §5.3 liveness analysis).
pub fn batch_preserves_liveness(n: usize, b: usize, rule: Resilience) -> bool {
    b <= rule.max_faults(n)
}

/// One step of the transition plan: for each committee, which nodes leave
/// and which join in this batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwapStep {
    /// (node, from_committee, to_committee) moves in this batch.
    pub moves: Vec<(usize, usize, usize)>,
}

/// Plan an epoch transition from `old` to `new` with at most `batch` nodes
/// leaving any committee per step. The move order is derived from the
/// (already random) new assignment, as in the paper where `rnd` determines
/// the order.
pub fn plan_transition(old: &Assignment, new: &Assignment, batch: usize) -> Vec<SwapStep> {
    assert!(batch >= 1, "batch must be positive");
    assert_eq!(old.total(), new.total(), "same node population");
    let mut remaining: Vec<(usize, usize, usize)> = old
        .transitioning(new)
        .into_iter()
        .map(|node| {
            let from = old.committee_of(node).expect("node assigned in old");
            let to = new.committee_of(node).expect("node assigned in new");
            (node, from, to)
        })
        .collect();

    let mut steps = Vec::new();
    while !remaining.is_empty() {
        let mut step = SwapStep::default();
        let mut out_count = vec![0usize; old.k()];
        let mut i = 0;
        while i < remaining.len() {
            let (_, from, _) = remaining[i];
            if out_count[from] < batch {
                out_count[from] += 1;
                step.moves.push(remaining.swap_remove(i));
            } else {
                i += 1;
            }
        }
        steps.push(step);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_batch_sizes() {
        assert_eq!(paper_batch_size(80), 6); // the paper's B = log(80) ≈ 6
        assert_eq!(paper_batch_size(9), 3);
        assert_eq!(paper_batch_size(2), 1);
    }

    #[test]
    fn liveness_rule() {
        // n = 9 attested: f = 4; B = 3 fine, B = 5 breaks liveness.
        assert!(batch_preserves_liveness(9, 3, Resilience::OneHalf));
        assert!(!batch_preserves_liveness(9, 5, Resilience::OneHalf));
        // PBFT n = 10: f = 3.
        assert!(batch_preserves_liveness(10, 3, Resilience::OneThird));
        assert!(!batch_preserves_liveness(10, 4, Resilience::OneThird));
    }

    #[test]
    fn plan_moves_every_transitioning_node_once() {
        let old = Assignment::derive(60, 4, 1);
        let new = Assignment::derive(60, 4, 2);
        let steps = plan_transition(&old, &new, 3);
        let total_moves: usize = steps.iter().map(|s| s.moves.len()).sum();
        assert_eq!(total_moves, old.transitioning(&new).len());
        let mut seen = std::collections::HashSet::new();
        for s in &steps {
            for (node, from, to) in &s.moves {
                assert!(seen.insert(*node), "node {node} moved twice");
                assert_eq!(old.committee_of(*node), Some(*from));
                assert_eq!(new.committee_of(*node), Some(*to));
                assert_ne!(from, to);
            }
        }
    }

    #[test]
    fn batch_limit_respected_per_committee() {
        let old = Assignment::derive(80, 4, 3);
        let new = Assignment::derive(80, 4, 4);
        let b = 2;
        for step in plan_transition(&old, &new, b) {
            let mut per_committee = vec![0usize; 4];
            for (_, from, _) in &step.moves {
                per_committee[*from] += 1;
            }
            assert!(per_committee.iter().all(|&c| c <= b), "{per_committee:?}");
        }
    }

    #[test]
    fn swap_all_is_single_step() {
        let old = Assignment::derive(40, 4, 5);
        let new = Assignment::derive(40, 4, 6);
        let steps = plan_transition(&old, &new, usize::MAX >> 1);
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn identical_assignments_need_no_steps() {
        let a = Assignment::derive(40, 4, 7);
        assert!(plan_transition(&a, &a, 3).is_empty());
    }

    proptest::proptest! {
        #[test]
        fn steps_bounded_by_ceiling(total in 12usize..120, k in 2usize..6, b in 1usize..5, s1: u64, s2: u64) {
            let old = Assignment::derive(total, k, s1);
            let new = Assignment::derive(total, k, s2);
            let steps = plan_transition(&old, &new, b);
            // Worst committee loses at most its whole membership, in
            // batches of b.
            let max_committee = old.committees.iter().map(Vec::len).max().unwrap_or(0);
            proptest::prop_assert!(steps.len() <= max_committee.div_ceil(b) + 1);
        }
    }
}
