//! Node-to-committee assignment (paper §5.1): a random permutation of
//! `[0, N)` seeded by the beacon output `rnd`, cut into `k` near-equal
//! chunks.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A committee assignment: `committees[c]` lists the node indices of
/// committee `c`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Members per committee.
    pub committees: Vec<Vec<usize>>,
}

impl Assignment {
    /// Derive the assignment of `total` nodes into `k` committees from the
    /// beacon output `rnd`. All nodes compute this locally and agree.
    pub fn derive(total: usize, k: usize, rnd: u64) -> Assignment {
        assert!(k >= 1, "at least one committee");
        assert!(total >= k, "need at least one node per committee");
        let mut perm: Vec<usize> = (0..total).collect();
        let mut rng = SmallRng::seed_from_u64(rnd);
        perm.shuffle(&mut rng);
        // Cut into k chunks differing by at most one in size.
        let base = total / k;
        let extra = total % k;
        let mut committees = Vec::with_capacity(k);
        let mut it = perm.into_iter();
        for c in 0..k {
            let size = base + usize::from(c < extra);
            committees.push(it.by_ref().take(size).collect());
        }
        Assignment { committees }
    }

    /// Number of committees.
    pub fn k(&self) -> usize {
        self.committees.len()
    }

    /// Total nodes assigned.
    pub fn total(&self) -> usize {
        self.committees.iter().map(Vec::len).sum()
    }

    /// The committee index of `node`, if assigned.
    pub fn committee_of(&self, node: usize) -> Option<usize> {
        self.committees
            .iter()
            .position(|c| c.contains(&node))
    }

    /// Nodes whose committee changes from `self` to `next` (the
    /// *transitioning nodes* of §5.3).
    pub fn transitioning(&self, next: &Assignment) -> Vec<usize> {
        (0..self.total())
            .filter(|&node| self.committee_of(node) != next.committee_of(node))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn assignment_is_partition() {
        let a = Assignment::derive(100, 7, 12345);
        assert_eq!(a.k(), 7);
        assert_eq!(a.total(), 100);
        let mut seen = HashSet::new();
        for c in &a.committees {
            for &n in c {
                assert!(seen.insert(n), "node {n} assigned twice");
                assert!(n < 100);
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn sizes_near_equal() {
        let a = Assignment::derive(100, 7, 99);
        let sizes: Vec<usize> = a.committees.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().expect("non-empty");
        let min = *sizes.iter().min().expect("non-empty");
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn deterministic_in_rnd() {
        assert_eq!(Assignment::derive(50, 5, 7), Assignment::derive(50, 5, 7));
        assert_ne!(Assignment::derive(50, 5, 7), Assignment::derive(50, 5, 8));
    }

    #[test]
    fn committee_of_finds_node() {
        let a = Assignment::derive(30, 3, 1);
        for node in 0..30 {
            let c = a.committee_of(node).expect("assigned");
            assert!(a.committees[c].contains(&node));
        }
        assert_eq!(a.committee_of(1000), None);
    }

    #[test]
    fn transition_fraction_matches_theory() {
        // Re-randomizing leaves each node in its committee with probability
        // ≈ 1/k, so ≈ (k-1)/k of nodes transition (§5.3).
        let a = Assignment::derive(400, 4, 1);
        let b = Assignment::derive(400, 4, 2);
        let t = a.transitioning(&b).len();
        // Expected 300; allow generous statistical slack.
        assert!((260..=340).contains(&t), "transitioning = {t}");
    }

    #[test]
    fn single_committee_trivial() {
        let a = Assignment::derive(10, 1, 3);
        assert_eq!(a.committees[0].len(), 10);
        let b = Assignment::derive(10, 1, 4);
        assert!(a.transitioning(&b).is_empty());
    }

    proptest::proptest! {
        #[test]
        fn always_a_partition(total in 2usize..300, k in 1usize..20, rnd: u64) {
            let k = k.min(total);
            let a = Assignment::derive(total, k, rnd);
            proptest::prop_assert_eq!(a.total(), total);
            let mut seen = HashSet::new();
            for c in &a.committees {
                proptest::prop_assert!(!c.is_empty());
                for &n in c {
                    proptest::prop_assert!(seen.insert(n));
                }
            }
        }
    }
}
