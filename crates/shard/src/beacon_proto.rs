//! The distributed randomness-generation protocol (paper §5.1).
//!
//! Each node invokes its RandomnessBeacon enclave once per epoch. The
//! enclave releases a signed `⟨e, rnd⟩` certificate with probability
//! `2^-l`; holders broadcast it; after the synchrony bound Δ every node
//! locks the lowest `rnd` it received. If nobody held a certificate the
//! epoch number is bumped and the round repeats (probability
//! `(1 - 2^-l)^N`).
//!
//! The paper tunes `l = log2(N) - log2(log2(N))` so communication is
//! `O(N log N)` and `P_repeat < 2^-11`.

use ahl_crypto::KeyRegistry;
use ahl_simkit::{
    Actor, Ctx, MsgClass, Network, NodeId, QueueConfig, Sim, SimConfig, SimDuration, SimTime,
};
use ahl_tee::{BeaconCert, BeaconOutcome, CostModel, RandomnessBeacon, TeeOp};

/// The paper's choice of `l` for `n` nodes: `log2(n) - log2(log2(n))`,
/// giving expected `log2(n)` certificate holders per round.
pub fn paper_l_bits(n: usize) -> u32 {
    if n <= 2 {
        return 0;
    }
    let log_n = (usize::BITS - 1 - n.leading_zeros()) as f64;
    let l = log_n - log_n.log2();
    l.max(0.0).floor() as u32
}

/// Beacon protocol messages.
#[derive(Clone, Debug)]
pub enum BeaconMsg {
    /// Broadcast of a beacon certificate.
    Cert(BeaconCert),
}

const TIMER_DELTA: u64 = 1;

/// One protocol participant.
struct BeaconParticipant {
    n: usize,
    enclave: RandomnessBeacon,
    costs: CostModel,
    delta: SimDuration,
    epoch: u64,
    lowest: Option<u64>,
    locked: Option<u64>,
    verify_cost: SimDuration,
}

impl BeaconParticipant {
    fn start_epoch(&mut self, ctx: &mut Ctx<'_, BeaconMsg>) {
        self.lowest = None;
        ctx.consume_cpu(self.costs.cost(TeeOp::RandomnessBeacon));
        match self.enclave.invoke(self.epoch, ctx.now()) {
            BeaconOutcome::Certified(cert) => {
                ctx.stats().inc("beacon.certificates", 1);
                self.observe(cert.rnd);
                let peers: Vec<NodeId> = (0..self.n).filter(|&p| p != ctx.id()).collect();
                ctx.multicast(peers, BeaconMsg::Cert(cert));
            }
            BeaconOutcome::Silent => {}
            other => {
                // TooSoonAfterRestart / AlreadyInvoked never occur in the
                // honest protocol: epochs start at 0 (genesis) and repeats
                // land exactly at multiples of Δ.
                debug_assert!(false, "unexpected outcome {other:?}");
            }
        }
        ctx.set_timer(self.delta, TIMER_DELTA | (self.epoch << 8));
    }

    fn observe(&mut self, rnd: u64) {
        self.lowest = Some(self.lowest.map_or(rnd, |cur| cur.min(rnd)));
    }
}

impl Actor for BeaconParticipant {
    type Msg = BeaconMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BeaconMsg>) {
        self.start_epoch(ctx);
    }

    fn on_message(&mut self, _from: NodeId, msg: BeaconMsg, ctx: &mut Ctx<'_, BeaconMsg>) {
        let BeaconMsg::Cert(cert) = msg;
        if cert.epoch != self.epoch || self.locked.is_some() {
            return;
        }
        // Verify the enclave signature on the certificate.
        ctx.consume_cpu(self.verify_cost);
        self.observe(cert.rnd);
    }

    fn on_timer(&mut self, kind: u64, ctx: &mut Ctx<'_, BeaconMsg>) {
        if (kind & 0xff) != TIMER_DELTA || (kind >> 8) != self.epoch || self.locked.is_some() {
            return;
        }
        match self.lowest {
            Some(rnd) => {
                // Lock in the lowest rnd observed within Δ.
                self.locked = Some(rnd);
                let now = ctx.now();
                ctx.stats().inc("beacon.locked", 1);
                ctx.stats().record_point("beacon.lock_time", now, rnd as f64);
            }
            None => {
                // Nobody produced a certificate: bump the epoch and retry.
                self.epoch += 1;
                ctx.stats().inc("beacon.repeats", 1);
                self.start_epoch(ctx);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Result of one beacon protocol execution.
#[derive(Clone, Debug)]
pub struct BeaconRunResult {
    /// Wall-clock (simulated) until every node locked.
    pub completion: SimDuration,
    /// The agreed random value (asserted identical across nodes).
    pub rnd: u64,
    /// Rounds that produced no certificate and repeated.
    pub repeats: u64,
    /// Total certificates released.
    pub certificates: u64,
    /// Total messages sent.
    pub messages: u64,
}

/// Execute the beacon protocol over `network` for `n` nodes with filter
/// length `l_bits` and synchrony bound `delta`. Panics if honest nodes lock
/// different values (agreement violation).
pub fn run_beacon(
    n: usize,
    l_bits: u32,
    delta: SimDuration,
    network: Box<dyn Network>,
    uplink_bps: Option<f64>,
    seed: u64,
) -> BeaconRunResult {
    fn classify(_m: &BeaconMsg) -> MsgClass {
        MsgClass::CONSENSUS
    }
    fn size_of(_m: &BeaconMsg) -> usize {
        1024 // the paper measures Δ for a 1 KB message
    }
    let mut cfg = SimConfig::new(seed);
    cfg.network = network;
    cfg.classify = classify;
    cfg.size_of = size_of;
    cfg.uplink_bps = uplink_bps;
    let mut sim: Sim<BeaconMsg> = Sim::new(cfg);

    let mut registry = KeyRegistry::new();
    for i in 0..n {
        let key = registry.generate(ahl_simkit::rng::derive_seed(seed, 0x5EED ^ i as u64));
        let enclave = RandomnessBeacon::new(
            key,
            ahl_simkit::rng::derive_seed(seed, i as u64),
            l_bits,
            delta,
            SimTime::ZERO,
        );
        let p = BeaconParticipant {
            n,
            enclave,
            costs: CostModel::default(),
            delta,
            epoch: 0,
            lowest: None,
            locked: None,
            verify_cost: SimDuration::from_micros(200),
        };
        sim.add_actor(Box::new(p), QueueConfig::unbounded());
    }
    let end = sim.run();

    // Collect and check agreement.
    let locked: Vec<u64> = (0..n)
        .map(|i| {
            sim.actor(i)
                .as_any()
                .expect("inspectable")
                .downcast_ref::<BeaconParticipant>()
                .expect("participant")
                .locked
                .expect("every node locks by quiescence")
        })
        .collect();
    let rnd = locked[0];
    assert!(
        locked.iter().all(|&v| v == rnd),
        "beacon agreement violated: {locked:?}"
    );
    BeaconRunResult {
        completion: end.since(SimTime::ZERO),
        rnd,
        repeats: sim.stats().counter("beacon.repeats") / n as u64,
        certificates: sim.stats().counter("beacon.certificates"),
        messages: sim.stats().counter("net.messages_sent"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ahl_net::ClusterNetwork;

    fn cluster_beacon(n: usize, l: u32, seed: u64) -> BeaconRunResult {
        run_beacon(
            n,
            l,
            SimDuration::from_secs(2),
            Box::new(ClusterNetwork::new()),
            Some(1e9),
            seed,
        )
    }

    #[test]
    fn paper_l_values() {
        // log2(64) = 6, log2(6) ≈ 2.58 → l = 3.
        assert_eq!(paper_l_bits(64), 3);
        // log2(512) = 9, log2(9) ≈ 3.17 → l = 5.
        assert_eq!(paper_l_bits(512), 5);
        assert_eq!(paper_l_bits(2), 0);
    }

    #[test]
    fn all_nodes_agree_on_lowest() {
        let res = cluster_beacon(32, paper_l_bits(32), 7);
        assert!(res.certificates >= 1);
        // Completion is at least Δ (nodes wait the full bound).
        assert!(res.completion >= SimDuration::from_secs(2));
    }

    #[test]
    fn l_zero_always_one_round() {
        let res = cluster_beacon(16, 0, 3);
        assert_eq!(res.repeats, 0);
        assert_eq!(res.certificates, 16);
        // O(N^2) messages when everyone holds a certificate.
        assert_eq!(res.messages, 16 * 15);
    }

    #[test]
    fn high_l_repeats_then_succeeds() {
        // With l = 8 and n = 8 the per-round success probability is
        // 1-(255/256)^8 ≈ 3%; expect repeats but eventual success.
        let res = cluster_beacon(8, 8, 5);
        assert!(res.repeats > 0, "expected repeats");
        assert!(res.certificates >= 1);
    }

    #[test]
    fn message_complexity_scales_with_l() {
        // Fewer certificate holders → fewer broadcasts.
        let all = cluster_beacon(64, 0, 11);
        let filtered = cluster_beacon(64, paper_l_bits(64), 11);
        assert!(
            filtered.messages < all.messages / 2,
            "filtered {} vs all {}",
            filtered.messages,
            all.messages
        );
    }

    #[test]
    fn deterministic() {
        let a = cluster_beacon(16, 2, 9);
        let b = cluster_beacon(16, 2, 9);
        assert_eq!(a.rnd, b.rnd);
        assert_eq!(a.completion, b.completion);
    }
}
