//! # ahl-shard — secure shard formation
//!
//! The paper's §5: assigning nodes to committees so that, with
//! overwhelming probability, no committee exceeds its consensus protocol's
//! fault threshold — and keeping it that way against an adaptive adversary.
//!
//! * [`hypergeom`] — Equation 1: hypergeometric faulty-committee
//!   probability, committee sizing (80 nodes @ 25% adversary with the
//!   attested rule vs 600+ with PBFT's), and Equation 2's epoch-transition
//!   exposure bound.
//! * [`beacon_proto`] — the TEE randomness beacon protocol: one enclave
//!   invocation per node per epoch, lowest certificate wins after Δ.
//! * [`randhound`] — the RandHound-pattern baseline OmniLedger uses
//!   (grouped PVSS, O(N·c²) communication) for the Figure 11 comparison.
//! * [`assign`] — seeded-permutation committee assignment.
//! * [`reconfig`] — batched epoch transitions (B = log n) with the
//!   liveness constraint B ≤ f.

#![warn(missing_docs)]

pub mod assign;
pub mod beacon_proto;
pub mod hypergeom;
pub mod randhound;
pub mod reconfig;

pub use assign::Assignment;
pub use beacon_proto::{paper_l_bits, run_beacon, BeaconRunResult};
pub use hypergeom::{
    faulty_committee_prob, hypergeom_tail, min_committee_size, reconfig_failure_prob,
    reference_tail, LnFact,
    Resilience,
};
pub use randhound::{run_randhound, run_randhound_with, RandhoundResult, RhCosts};
pub use reconfig::{batch_preserves_liveness, paper_batch_size, plan_transition, SwapStep};
