//! Hypergeometric committee-safety analysis (paper §5.2, Equation 1).
//!
//! Committee assignment by seeded random permutation is sampling without
//! replacement, so the number of Byzantine nodes landing in a committee of
//! size `n` follows the hypergeometric distribution. A committee is
//! *faulty* when that count reaches the consensus protocol's failure
//! threshold: `⌊(n-1)/3⌋ + 1` for PBFT, `⌊(n-1)/2⌋ + 1` for the attested
//! variants — the factor-of-two that shrinks the paper's committees from
//! 600+ nodes to 80 at a 25% adversary.

/// Consensus resilience rule determining the failure threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resilience {
    /// PBFT-style: tolerate up to ⌊(n-1)/3⌋ faults.
    OneThird,
    /// Attested (AHL) style: tolerate up to ⌊(n-1)/2⌋ faults.
    OneHalf,
}

impl Resilience {
    /// Maximum tolerated Byzantine members in a committee of `n`.
    pub fn max_faults(self, n: usize) -> usize {
        match self {
            Resilience::OneThird => (n.saturating_sub(1)) / 3,
            Resilience::OneHalf => (n.saturating_sub(1)) / 2,
        }
    }

    /// Smallest Byzantine count that breaks a committee of `n`.
    pub fn failure_threshold(self, n: usize) -> usize {
        self.max_faults(n) + 1
    }
}

/// Cached table of ln(k!) values.
#[derive(Debug, Clone)]
pub struct LnFact {
    table: Vec<f64>,
}

impl LnFact {
    /// Build a table supporting arguments up to `max`.
    pub fn new(max: usize) -> Self {
        let mut table = Vec::with_capacity(max + 1);
        table.push(0.0); // ln(0!) = 0
        let mut acc = 0.0f64;
        for i in 1..=max {
            acc += (i as f64).ln();
            table.push(acc);
        }
        LnFact { table }
    }

    /// ln(k!).
    pub fn ln_fact(&self, k: usize) -> f64 {
        self.table[k]
    }

    /// ln C(n, k); `-inf` when k > n.
    pub fn ln_choose(&self, n: usize, k: usize) -> f64 {
        if k > n {
            f64::NEG_INFINITY
        } else {
            self.ln_fact(n) - self.ln_fact(k) - self.ln_fact(n - k)
        }
    }
}

/// Equation 1: `Pr[X ≥ threshold]` where `X ~ Hypergeometric(total, byz, n)`
/// is the number of Byzantine nodes drawn into one committee of size `n`
/// out of `total` nodes of which `byz` are Byzantine.
pub fn hypergeom_tail(lf: &LnFact, total: usize, byz: usize, n: usize, threshold: usize) -> f64 {
    assert!(byz <= total, "byz exceeds total");
    assert!(n <= total, "committee exceeds network");
    if threshold == 0 {
        return 1.0;
    }
    let hi = n.min(byz);
    if threshold > hi {
        return 0.0;
    }
    let denom = lf.ln_choose(total, n);
    let mut sum = 0.0f64;
    for x in threshold..=hi {
        if n - x > total - byz {
            continue; // impossible draw
        }
        let ln_p = lf.ln_choose(byz, x) + lf.ln_choose(total - byz, n - x) - denom;
        sum += ln_p.exp();
    }
    sum.min(1.0)
}

/// Independently coded reference for [`hypergeom_tail`]: the same tail
/// probability computed by direct binomial-coefficient products (no log
/// tables, no shared code path). Exists so property tests can pin the
/// fast implementation — and through it the committee sizes
/// `formation.rs` derives — against a second derivation of Equation 1.
pub fn reference_tail(total: usize, byz: usize, n: usize, threshold: usize) -> f64 {
    fn choose(n: usize, k: usize) -> f64 {
        if k > n {
            return 0.0;
        }
        let mut acc = 1.0f64;
        for i in 0..k {
            acc *= (n - i) as f64 / (i + 1) as f64;
        }
        acc
    }
    if threshold == 0 {
        return 1.0;
    }
    let hi = n.min(byz);
    if threshold > hi {
        return 0.0;
    }
    let denom = choose(total, n);
    let mut sum = 0.0f64;
    for x in threshold..=hi {
        if n - x > total - byz {
            continue;
        }
        sum += choose(byz, x) * choose(total - byz, n - x) / denom;
    }
    sum.min(1.0)
}

/// Probability that a committee of `n` drawn from `total` nodes with a
/// fraction `s` Byzantine is faulty under `rule` (Equation 1 applied to the
/// rule's failure threshold).
pub fn faulty_committee_prob(
    lf: &LnFact,
    total: usize,
    s: f64,
    n: usize,
    rule: Resilience,
) -> f64 {
    let byz = (total as f64 * s).floor() as usize;
    hypergeom_tail(lf, total, byz, n, rule.failure_threshold(n))
}

/// Smallest committee size `n ≤ total` whose faulty probability is at most
/// `2^-security_bits` (paper uses 20 bits). Returns `None` if even `n =
/// total` is unsafe.
pub fn min_committee_size(
    lf: &LnFact,
    total: usize,
    s: f64,
    rule: Resilience,
    security_bits: f64,
) -> Option<usize> {
    let target = 2f64.powf(-security_bits);
    // The tail is monotonically decreasing in n for s below the threshold,
    // but stepwise (threshold jumps every 2 or 3 nodes); scan with stride 1.
    (1..=total).find(|&n| faulty_committee_prob(lf, total, s, n, rule) <= target)
}

/// Paper §5.3, Equation 2 (with the evident intent that the batch count is
/// the number of *batches*, `⌈n(k-1)/(kB)⌉`): probability that any
/// intermediate committee during one epoch transition is faulty, by Boole's
/// inequality over the swap batches.
pub fn reconfig_failure_prob(
    lf: &LnFact,
    total: usize,
    s: f64,
    n: usize,
    k: usize,
    batch: usize,
    rule: Resilience,
) -> f64 {
    assert!(k >= 1 && batch >= 1);
    let transitioning = n * (k - 1) / k;
    let batches = transitioning.div_ceil(batch).max(1);
    let per = faulty_committee_prob(lf, total, s, n, rule);
    (batches as f64 * per).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lf() -> LnFact {
        LnFact::new(4096)
    }

    #[test]
    fn ln_choose_small_values() {
        let lf = lf();
        assert!((lf.ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((lf.ln_choose(10, 0)).abs() < 1e-12);
        assert_eq!(lf.ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn tail_exact_small_case() {
        // Urn: 10 nodes, 4 Byzantine, committee of 5, threshold 3.
        // Pr[X>=3] = [C(4,3)C(6,2) + C(4,4)C(6,1)] / C(10,5)
        //          = (4*15 + 1*6) / 252 = 66/252.
        let lf = lf();
        let p = hypergeom_tail(&lf, 10, 4, 5, 3);
        assert!((p - 66.0 / 252.0).abs() < 1e-12, "{p}");
    }

    #[test]
    fn tail_edge_cases() {
        let lf = lf();
        assert_eq!(hypergeom_tail(&lf, 10, 4, 5, 0), 1.0);
        assert_eq!(hypergeom_tail(&lf, 10, 4, 5, 6), 0.0); // > committee size
        assert_eq!(hypergeom_tail(&lf, 10, 0, 5, 1), 0.0); // no byzantine
        assert_eq!(hypergeom_tail(&lf, 10, 10, 5, 5), 1.0); // all byzantine
    }

    #[test]
    fn paper_sizing_25_percent_attested() {
        // §5.2: at s = 25% with the attested rule, n = 80 keeps
        // Pr[faulty] ≤ 2^-20 (at the scale of the paper's GCP deployment).
        let lf = LnFact::new(2048);
        let n = min_committee_size(&lf, 1000, 0.25, Resilience::OneHalf, 20.0)
            .expect("exists");
        assert!((70..=85).contains(&n), "n = {n}");
    }

    #[test]
    fn paper_sizing_25_percent_pbft() {
        // §5.2: the PBFT rule needs 600+ node committees at 25%.
        let lf = LnFact::new(4096);
        let n = min_committee_size(&lf, 2400, 0.25, Resilience::OneThird, 20.0)
            .expect("exists");
        assert!(n >= 500, "n = {n}");
    }

    #[test]
    fn paper_sizing_12_5_percent() {
        // §7.3: 12.5% adversary → 27-node committees (attested).
        let lf = LnFact::new(2048);
        let n = min_committee_size(&lf, 972, 0.125, Resilience::OneHalf, 20.0)
            .expect("exists");
        assert!((24..=31).contains(&n), "n = {n}");
    }

    #[test]
    fn attested_committees_much_smaller() {
        let lf = LnFact::new(4096);
        for s in [0.1, 0.2, 0.25] {
            let half = min_committee_size(&lf, 2400, s, Resilience::OneHalf, 20.0)
                .expect("attested size exists");
            let third = min_committee_size(&lf, 2400, s, Resilience::OneThird, 20.0)
                .expect("pbft size exists");
            assert!(third >= 2 * half, "s={s}: third={third} half={half}");
        }
    }

    #[test]
    fn size_grows_with_adversary() {
        let lf = LnFact::new(2048);
        let mut prev = 0;
        for s in [0.05, 0.1, 0.15, 0.2, 0.25] {
            let n = min_committee_size(&lf, 1600, s, Resilience::OneHalf, 20.0)
                .expect("exists");
            assert!(n >= prev, "s={s}: {n} < {prev}");
            prev = n;
        }
    }

    #[test]
    fn reconfig_probability_paper_example() {
        // §5.3: n = 80, f = (n-1)/2, k = 10, B = log(n) ≈ 6 →
        // Pr(faulty) ≈ 1e-5.
        let lf = LnFact::new(2048);
        let p = reconfig_failure_prob(&lf, 1000, 0.25, 80, 10, 6, Resilience::OneHalf);
        assert!(p < 1e-4, "p = {p}");
        assert!(p > 1e-7, "p = {p}");
    }

    #[test]
    fn reconfig_smaller_batches_more_exposure() {
        let lf = LnFact::new(2048);
        let p_small_batch =
            reconfig_failure_prob(&lf, 1000, 0.25, 80, 10, 2, Resilience::OneHalf);
        let p_big_batch =
            reconfig_failure_prob(&lf, 1000, 0.25, 80, 10, 36, Resilience::OneHalf);
        assert!(p_small_batch > p_big_batch);
    }

    /// The committee sizes the paper's table (and `formation.rs`) is
    /// built from: the log-factorial implementation must agree with the
    /// direct-product reference at every (total, s) the formation
    /// pipeline uses, and the chosen size must be *minimal* — one node
    /// fewer already violates the 2^-20 budget.
    #[test]
    fn formation_table_sizes_match_reference() {
        let target = 2f64.powf(-20.0);
        // (The direct-product reference runs out of f64 range beyond
        // ~1500-node networks — C(2400, 600) ≈ 10^600 — so the PBFT-rule
        // row uses a 600-node network; the log-factorial implementation
        // itself has no such limit.)
        for (total, s, rule) in [
            (972, 0.25, Resilience::OneHalf),  // §7.3 GCP, 25% adversary
            (972, 0.125, Resilience::OneHalf), // §7.3 GCP, 12.5% adversary
            (1000, 0.25, Resilience::OneHalf), // §5.2 running example
            (600, 0.25, Resilience::OneThird), // PBFT rule comparison
        ] {
            let lf = LnFact::new(total.max(64) + 1);
            let n = min_committee_size(&lf, total, s, rule, 20.0).expect("formable");
            let byz = (total as f64 * s).floor() as usize;
            let fast = faulty_committee_prob(&lf, total, s, n, rule);
            let exact = reference_tail(total, byz, n, rule.failure_threshold(n));
            assert!(
                (fast - exact).abs() <= 1e-9 * exact.max(1e-30),
                "total {total} s {s}: fast {fast} vs reference {exact}"
            );
            assert!(exact <= target, "chosen n = {n} must meet the budget");
            if n > 1 {
                let below =
                    reference_tail(total, byz, n - 1, rule.failure_threshold(n - 1));
                assert!(
                    below > target,
                    "n = {n} must be minimal: n-1 gives {below:e} <= {target:e}"
                );
            }
        }
    }

    proptest::proptest! {
        /// The fast (log-factorial) Equation 1 agrees with the direct
        /// product-form reference across the whole parameter box.
        #[test]
        fn tail_matches_reference_computation(
            total in 10usize..220,
            byz_frac in 0.0f64..0.6,
            n_frac in 0.05f64..1.0,
            thr_frac in 0.0f64..1.2,
        ) {
            let lf = LnFact::new(256);
            let byz = (total as f64 * byz_frac) as usize;
            let n = ((total as f64 * n_frac) as usize).clamp(1, total);
            let threshold = (n as f64 * thr_frac) as usize;
            let fast = hypergeom_tail(&lf, total, byz, n, threshold);
            let exact = reference_tail(total, byz, n, threshold);
            proptest::prop_assert!(
                (fast - exact).abs() <= 1e-9 * exact.max(1e-30) + 1e-12,
                "total {} byz {} n {} thr {}: {} vs {}",
                total, byz, n, threshold, fast, exact
            );
        }

        /// Tail probabilities are valid probabilities and monotone in the
        /// threshold.
        #[test]
        fn tail_is_monotone_probability(
            total in 20usize..200,
            byz_frac in 0.0f64..0.5,
            n in 5usize..20,
        ) {
            let lf = LnFact::new(256);
            let byz = (total as f64 * byz_frac) as usize;
            let n = n.min(total);
            let mut prev = 1.0f64;
            for thr in 0..=n + 1 {
                let p = hypergeom_tail(&lf, total, byz, n, thr);
                proptest::prop_assert!((0.0..=1.0).contains(&p));
                proptest::prop_assert!(p <= prev + 1e-12);
                prev = p;
            }
        }

        /// Complement check: Pr[X ≥ 1] = 1 - C(total-byz, n)/C(total, n).
        #[test]
        fn at_least_one_matches_complement(
            total in 20usize..150,
            byz in 1usize..10,
            n in 2usize..15,
        ) {
            let lf = LnFact::new(256);
            let n = n.min(total - byz);
            let p = hypergeom_tail(&lf, total, byz, n, 1);
            let none = (lf.ln_choose(total - byz, n) - lf.ln_choose(total, n)).exp();
            proptest::prop_assert!((p - (1.0 - none)).abs() < 1e-9);
        }
    }
}
