//! End-to-end exit-code contract of the `bench_compare` binary.
//!
//! The distinction under test: a metric that the baseline budgets but the
//! fresh report does not carry is a *budget breach* (exit 1 — CI must go
//! red, because a silently vanished metric is how a regression hides),
//! while structurally unusable input — unreadable files, non-JSON, a
//! scenario mismatch, a baseline with no budgets — is exit 2.

use std::path::PathBuf;
use std::process::Command;

fn write_tmp(name: &str, body: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_compare_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, body).expect("write report");
    path
}

fn run(baseline: &PathBuf, current: &PathBuf) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_compare"))
        .arg(baseline)
        .arg(current)
        .output()
        .expect("spawn bench_compare");
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (out.status.code(), text)
}

const BASELINE: &str = r#"{
  "scenario": "fig8",
  "metrics": { "tps": 1000.0, "latency_p99_ms": 80.0 },
  "budgets": {
    "metrics/tps": { "dir": "higher", "tol_frac": 0.10 },
    "metrics/latency_p99_ms": { "dir": "lower", "tol_frac": 0.25 }
  }
}"#;

#[test]
fn within_budget_exits_zero() {
    let baseline = write_tmp("base_ok.json", BASELINE);
    let current = write_tmp(
        "cur_ok.json",
        r#"{ "scenario": "fig8", "metrics": { "tps": 980.0, "latency_p99_ms": 85.0 } }"#,
    );
    let (code, text) = run(&baseline, &current);
    assert_eq!(code, Some(0), "{text}");
}

#[test]
fn missing_metric_is_a_breach_not_unusable_input() {
    // Negative control: the fresh report parses fine and matches the
    // scenario, but dropped a budgeted metric. That must be exit 1
    // (breach) — never exit 2 (unusable input), which CI setups often
    // treat as "skip".
    let baseline = write_tmp("base_missing.json", BASELINE);
    let current = write_tmp(
        "cur_missing.json",
        r#"{ "scenario": "fig8", "metrics": { "latency_p99_ms": 85.0 } }"#,
    );
    let (code, text) = run(&baseline, &current);
    assert_eq!(code, Some(1), "missing metric must breach: {text}");
    assert!(text.contains("metric missing from report"), "{text}");
}

#[test]
fn budget_breach_exits_one() {
    let baseline = write_tmp("base_breach.json", BASELINE);
    let current = write_tmp(
        "cur_breach.json",
        r#"{ "scenario": "fig8", "metrics": { "tps": 500.0, "latency_p99_ms": 85.0 } }"#,
    );
    let (code, text) = run(&baseline, &current);
    assert_eq!(code, Some(1), "{text}");
}

#[test]
fn unusable_input_exits_two() {
    let baseline = write_tmp("base_unusable.json", BASELINE);
    // Scenario mismatch: structurally unusable, not a breach.
    let mismatched = write_tmp(
        "cur_mismatch.json",
        r#"{ "scenario": "overload", "metrics": { "tps": 1000.0 } }"#,
    );
    let (code, text) = run(&baseline, &mismatched);
    assert_eq!(code, Some(2), "{text}");
    // Unparseable JSON: also unusable.
    let garbage = write_tmp("cur_garbage.json", "not json at all");
    let (code, text) = run(&baseline, &garbage);
    assert_eq!(code, Some(2), "{text}");
    // A missing file: unusable.
    let gone = std::env::temp_dir().join("bench_compare_cli_does_not_exist.json");
    let (code, text) = run(&baseline, &gone);
    assert_eq!(code, Some(2), "{text}");
}
