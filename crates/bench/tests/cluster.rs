//! Tier-1 localhost cluster smoke: a 4-process PBFT committee over real
//! TCP sockets commits blocks under client load, survives killing and
//! restarting one node, passes every cross-replica digest check, and
//! shuts down cleanly. Any safety violation fails the test (and CI).

use std::time::Duration;

use ahl_bench::cluster::{run_cluster, ClusterSpec};

#[test]
fn four_process_committee_commits_and_survives_restart() {
    let root = std::env::temp_dir().join(format!("ahl-cluster-test-{}", std::process::id()));
    let node_bin = std::path::PathBuf::from(env!("CARGO_BIN_EXE_node"));
    let mut spec = ClusterSpec::new(root.clone(), node_bin);
    spec.warmup = Duration::from_secs(1);
    spec.measure = Duration::from_secs(3);
    spec.clients = 2;
    spec.outstanding = 32;
    spec.kill_restart = true;
    spec.predict = false; // the sim prediction is covered by harness tests

    let report = match run_cluster(&spec) {
        Ok(r) => r,
        Err(e) => panic!("cluster run failed (logs under {}): {e}", root.display()),
    };
    assert!(report.completed > 0, "no client completions");
    assert!(report.measured_tps > 0.0, "no throughput in the measured window");
    assert_eq!(report.heights.len(), spec.n, "a replica never answered its status probe");
    // The committee made progress past the kill point (the restarted node
    // had real catch-up work to do).
    assert!(report.catchup_height > 0, "kill/restart phase saw no committed height");
    let _ = std::fs::remove_dir_all(&root);
}
