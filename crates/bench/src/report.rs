//! Plain-text table rendering for experiment output.

/// A printable results table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        println!("\n== {} ==", self.title);
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("| ");
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                line.push_str(&format!("{c:>w$} | "));
            }
            line
        };
        println!("{}", fmt_row(&self.header));
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a probability in scientific notation.
pub fn sci(v: f64) -> String {
    format!("{v:.2e}")
}

/// Render a compact sparkline for a series (throughput-over-time plots).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
    let max = values.iter().copied().fold(0.0f64, f64::max).max(1e-9);
    values
        .iter()
        .map(|v| BARS[((v / max) * 7.0).round().min(7.0) as usize])
        .collect()
}

/// Run independent experiment cells on worker threads, preserving order.
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<(T, R)>
where
    T: Send + Sync + Clone,
    R: Send,
    F: Fn(&T) -> R + Send + Sync,
{
    let results: Vec<R> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .map(|input| {
                let f = &f;
                scope.spawn(move || f(input))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment cell panicked"))
            .collect()
    });
    inputs.into_iter().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.len(), 1);
        t.print();
    }

    #[test]
    fn sparkline_shapes() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(vec![1, 2, 3], |x| format!("{}", x * 10));
        assert_eq!(out[0].1, "10");
        assert_eq!(out[2].1, "30");
    }
}
