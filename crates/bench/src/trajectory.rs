//! Bench-trajectory reports and the regression gate.
//!
//! Five scenarios — `fig8`, `overload`, `statesync`, `recovery`,
//! `byzantine` — emit machine-readable trajectory reports through
//! `experiments -- <scenario> --quick --json <path>`. Each report embeds
//! its own per-metric **budgets** (a direction plus a tolerance), so a
//! committed baseline is self-describing: [`compare_reports`] re-reads
//! the budgets from the baseline, diffs every budgeted metric of a fresh
//! report against it, and the `bench_compare` binary exits non-zero on
//! any breach. CI archives the baselines as `BENCH_<scenario>.json` at
//! the repo root and gates every push on them, which turns "the numbers
//! quietly got worse" into a red build.
//!
//! All scenario cells run fixed seeds on the deterministic simulator, so
//! a baseline regenerated on the same code is byte-stable; the budgets
//! absorb the host-speed wobble that leaks in through wall-clock-derived
//! metrics (none of the budgeted metrics depend on host speed).

use ahl_core::{RateControl, SystemConfig, SystemWorkload};
use ahl_simkit::SimDuration;
use ahl_telemetry::LivenessChecker;

use crate::figs::{self, SyncMode};
use crate::json::{system_report_json, JsonValue};

/// The scenarios with trajectory reports (and committed baselines).
pub const SCENARIOS: &[&str] = &["fig8", "overload", "statesync", "recovery", "byzantine", "soak"];

/// Build the trajectory report for `id`, or `None` for an experiment
/// that has no scenario report (those fall back to the canonical smoke
/// report). Scenario cells print their profiler attribution table (when
/// profiled) as a side effect, like the figure harnesses print theirs.
pub fn scenario_report(id: &str, quick: bool) -> Option<JsonValue> {
    let mut report = match id {
        "fig8" => fig8_report(quick),
        "overload" => overload_report(quick),
        "statesync" => statesync_report(quick),
        "recovery" => recovery_report(),
        "byzantine" => byzantine_report(quick),
        "soak" => soak_report(quick),
        _ => return None,
    };
    report.set("scenario", JsonValue::Str(id.to_string()));
    report.set("quick", JsonValue::Bool(quick));
    Some(report)
}

fn budget(dir: &str, tol_frac: f64, tol_abs: f64) -> JsonValue {
    let mut b = JsonValue::object();
    b.set("dir", JsonValue::Str(dir.to_string()))
        .set("tol_frac", JsonValue::Num(tol_frac))
        .set("tol_abs", JsonValue::Num(tol_abs));
    b
}

/// The canonical full-system cell (the one the old `--json` smoke ran),
/// now with the liveness oracle attached and the wall-clock profiler on.
fn fig8_report(quick: bool) -> JsonValue {
    let mk = || {
        let mut cfg = SystemConfig::new(if quick { 2 } else { 4 }, 3);
        cfg.clients = if quick { 4 } else { 16 };
        cfg.outstanding = if quick { 8 } else { 64 };
        cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta: 0.0 };
        cfg.duration = SimDuration::from_secs(if quick { 4 } else { 12 });
        cfg.warmup = SimDuration::from_secs(if quick { 1 } else { 3 });
        cfg.batch_size = 20;
        cfg
    };
    let mut cfg = mk();
    cfg.liveness = Some(LivenessChecker::default());
    cfg.profile = true;
    let report = ahl_core::run_system_report(cfg);
    if let Some(p) = &report.profile {
        print!("{}", p.render());
    }
    let mut json = system_report_json(&mk(), &report);
    let mut budgets = JsonValue::object();
    budgets
        .set("metrics/tps", budget("higher", 0.10, 0.0))
        .set("metrics/latency_p99_ms", budget("lower", 0.25, 0.0))
        .set("metrics/safety_violations", budget("lower", 0.0, 0.0))
        .set("metrics/liveness_violations", budget("lower", 0.0, 0.0));
    json.set("budgets", budgets);
    json
}

/// The overload sweep's most adversarial cell: a deliberately small pool
/// (cap 48) under 8 × 64 offered load with AIMD backpressure.
fn overload_report(quick: bool) -> JsonValue {
    let mk = || {
        let mut cfg = SystemConfig::new(2, 3);
        cfg.clients = 8;
        cfg.outstanding = 64;
        cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta: 0.0 };
        cfg.duration = SimDuration::from_secs(if quick { 4 } else { 12 });
        cfg.warmup = SimDuration::from_secs(if quick { 1 } else { 3 });
        cfg.batch_size = 20;
        cfg.mempool = ahl_mempool::MempoolConfig::new(48);
        cfg.rate_control = RateControl::Aimd;
        cfg
    };
    let mut cfg = mk();
    cfg.liveness = Some(LivenessChecker::default());
    cfg.profile = true;
    let report = ahl_core::run_system_report(cfg);
    if let Some(p) = &report.profile {
        print!("{}", p.render());
    }
    let mut json = system_report_json(&mk(), &report);
    let mut budgets = JsonValue::object();
    budgets
        .set("metrics/tps", budget("higher", 0.10, 0.0))
        .set("metrics/latency_p99_ms", budget("lower", 0.25, 0.0))
        .set("metrics/safety_violations", budget("lower", 0.0, 0.0))
        .set("metrics/liveness_violations", budget("lower", 0.0, 0.0));
    json.set("budgets", budgets);
    json
}

/// Crashed-replica catch-up, full transfer vs diff sync over the same
/// state, fixed seed. The headline trajectory metric is the diff
/// transfer volume: it must stay O(changed keys).
fn statesync_report(quick: bool) -> JsonValue {
    let (keys, bytes) = if quick { (500, 200_000) } else { (1_000, 500_000) };
    let chunk = 16;
    let full = figs::statesync_cell(keys, bytes, chunk, SyncMode::Full, 42);
    let diff = figs::statesync_cell(keys, bytes, chunk, SyncMode::Diff { churn_keys: 4 }, 42);

    let mut metrics = JsonValue::object();
    metrics
        .set("tps", JsonValue::Num(diff.tps))
        .set("gb_full", JsonValue::Num(full.gb_synced))
        .set("gb_diff", JsonValue::Num(diff.gb_synced))
        .set("sync_secs_full", JsonValue::Num(full.sync_secs))
        .set("sync_secs_diff", JsonValue::Num(diff.sync_secs))
        .set("chunks_full", JsonValue::UInt(full.chunks_served))
        .set("chunks_diff", JsonValue::UInt(diff.chunks_served))
        .set("syncs", JsonValue::UInt(full.syncs + diff.syncs))
        .set("diff_syncs", JsonValue::UInt(diff.diff_syncs))
        .set("proof_failures", JsonValue::UInt(full.proof_failures + diff.proof_failures))
        .set("caught_up", JsonValue::UInt((full.caught_up && diff.caught_up) as u64))
        .set("conserved", JsonValue::UInt((full.balance_ok && diff.balance_ok) as u64));

    let mut config = JsonValue::object();
    config
        .set("pad_keys", JsonValue::UInt(keys as u64))
        .set("pad_bytes", JsonValue::UInt(bytes))
        .set("chunk_target", JsonValue::UInt(chunk as u64))
        .set("churn_keys", JsonValue::UInt(4))
        .set("seed", JsonValue::UInt(42));

    let mut budgets = JsonValue::object();
    budgets
        .set("metrics/tps", budget("higher", 0.15, 0.0))
        .set("metrics/gb_full", budget("lower", 0.25, 0.0))
        .set("metrics/gb_diff", budget("lower", 0.50, 0.0))
        .set("metrics/proof_failures", budget("lower", 0.0, 0.0))
        .set("metrics/caught_up", budget("higher", 0.0, 0.0))
        .set("metrics/conserved", budget("higher", 0.0, 0.0));

    let mut root = JsonValue::object();
    root.set("report_version", JsonValue::UInt(1))
        .set("config", config)
        .set("metrics", metrics)
        .set("budgets", budgets);
    root
}

/// Crash-kill recovery, fixed seed: one scripted whole-node crash cell
/// plus one injected I/O-crash cell (kill site 120), both restarting
/// from their reopened on-disk directories.
fn recovery_report() -> JsonValue {
    let scripted = figs::recovery_cell(None, 42);
    let killed = figs::recovery_cell(Some(120), 42);

    let mut metrics = JsonValue::object();
    metrics
        .set("committed", JsonValue::UInt(killed.committed))
        .set("wal_batches", JsonValue::UInt(killed.wal_batches))
        .set("checkpoints", JsonValue::UInt(killed.checkpoints))
        .set("pages_written", JsonValue::UInt(killed.pages_written))
        .set("pages_shared", JsonValue::UInt(killed.pages_shared))
        .set("replayed", JsonValue::UInt(scripted.replayed + killed.replayed))
        .set("diff_syncs", JsonValue::UInt(scripted.diff_syncs + killed.diff_syncs))
        .set("io_crashes", JsonValue::UInt(killed.io_crashes))
        .set(
            "failures",
            JsonValue::UInt(
                scripted.proof_failures
                    + killed.proof_failures
                    + scripted.replay_mismatches
                    + killed.replay_mismatches,
            ),
        )
        .set("recovered", JsonValue::UInt((scripted.recovered && killed.recovered) as u64))
        .set("conserved", JsonValue::UInt((scripted.conserved && killed.conserved) as u64));

    let mut config = JsonValue::object();
    config.set("kill_site", JsonValue::UInt(120)).set("seed", JsonValue::UInt(42));

    let mut budgets = JsonValue::object();
    budgets
        .set("metrics/committed", budget("higher", 0.15, 0.0))
        .set("metrics/wal_batches", budget("higher", 0.25, 0.0))
        .set("metrics/replayed", budget("higher", 0.90, 0.0))
        .set("metrics/failures", budget("lower", 0.0, 0.0))
        .set("metrics/io_crashes", budget("lower", 0.0, 0.0))
        .set("metrics/recovered", budget("higher", 0.0, 0.0))
        .set("metrics/conserved", budget("higher", 0.0, 0.0));

    let mut root = JsonValue::object();
    root.set("report_version", JsonValue::UInt(1))
        .set("config", config)
        .set("metrics", metrics)
        .set("budgets", budgets);
    root
}

/// Bounded-disk soak, fixed parameters: sustained overwrite churn with a
/// durable checkpoint per round, page GC + WAL retention keeping disk
/// under a fixed multiple of the live set, one crash injected mid-GC,
/// and a lazy (fault-on-demand) final reopen. Every budgeted metric is a
/// deterministic byte/page count — nothing here depends on host speed.
fn soak_report(quick: bool) -> JsonValue {
    let p = figs::SoakParams::for_scale(if quick { crate::Scale::Quick } else { crate::Scale::Full });
    let m = figs::soak_cell(&p);

    let mut metrics = JsonValue::object();
    metrics
        .set("keys_churned", JsonValue::UInt(m.keys_churned))
        .set("bytes_churned", JsonValue::UInt(m.bytes_churned))
        .set("peak_disk_bytes", JsonValue::UInt(m.peak_disk_bytes))
        .set("final_disk_bytes", JsonValue::UInt(m.final_disk_bytes))
        .set("gc_runs", JsonValue::UInt(m.gc.runs))
        .set("gc_swept_segments", JsonValue::UInt(m.gc.swept_segments))
        .set("gc_reclaimed_bytes", JsonValue::UInt(m.gc.reclaimed_bytes))
        .set("gc_copied_pages", JsonValue::UInt(m.gc.copied_pages))
        .set("retention_unlinked", JsonValue::UInt(m.retention_unlinked))
        .set("disk_bounded", JsonValue::UInt((m.peak_disk_bytes <= m.disk_cap_bytes) as u64))
        .set("recovered_mid_gc", JsonValue::UInt(m.recovered_mid_gc as u64))
        .set("reopen_indexed", JsonValue::UInt(m.reopen_indexed))
        .set("reopen_scanned", JsonValue::UInt(m.reopen_scanned))
        .set("lazy_misses", JsonValue::UInt(m.lazy_misses))
        .set("cache_resident_bytes", JsonValue::UInt(m.cache_resident_bytes))
        .set("reads_verified", JsonValue::UInt(m.reads_ok as u64));

    let mut config = JsonValue::object();
    config
        .set("live_keys", JsonValue::UInt(p.live_keys))
        .set("rounds", JsonValue::UInt(p.rounds))
        .set("churn_per_round", JsonValue::UInt(p.churn_per_round))
        .set("value_bytes", JsonValue::UInt(p.value_bytes as u64))
        .set("kill_round", JsonValue::UInt(p.kill_round))
        .set("cache_bytes", JsonValue::UInt(p.cache_bytes))
        .set("disk_cap_bytes", JsonValue::UInt(m.disk_cap_bytes));

    let mut budgets = JsonValue::object();
    budgets
        // The bounded-disk headline: peak and steady-state disk must not
        // drift up, and the boolean cap check must stay green.
        .set("metrics/peak_disk_bytes", budget("lower", 0.15, 0.0))
        .set("metrics/final_disk_bytes", budget("lower", 0.15, 0.0))
        .set("metrics/disk_bounded", budget("higher", 0.0, 0.0))
        // GC must keep actually collecting (a silently disabled GC would
        // show up as zeros here long before the disk metrics drift).
        .set("metrics/gc_runs", budget("higher", 0.50, 0.0))
        .set("metrics/gc_reclaimed_bytes", budget("higher", 0.50, 0.0))
        .set("metrics/retention_unlinked", budget("higher", 0.50, 0.0))
        // Reopen cost: sealed segments via sidecar index, not frame scans.
        .set("metrics/reopen_indexed", budget("higher", 0.50, 0.0))
        .set("metrics/reopen_scanned", budget("lower", 0.0, 1.0))
        // O(working set) reads: the fault count is the materialization
        // canary — load_tree-style behavior would blow it up by orders.
        .set("metrics/lazy_misses", budget("lower", 0.30, 0.0))
        .set("metrics/cache_resident_bytes", budget("lower", 0.0, 4096.0))
        // Hard correctness bits.
        .set("metrics/recovered_mid_gc", budget("higher", 0.0, 0.0))
        .set("metrics/reads_verified", budget("higher", 0.0, 0.0));

    let mut root = JsonValue::object();
    root.set("report_version", JsonValue::UInt(1))
        .set("config", config)
        .set("metrics", metrics)
        .set("budgets", budgets);
    root
}

/// A full-system run with one Byzantine replica per committee (f at the
/// tolerated threshold for n = 4) mounting the default paper-flood
/// attack: throughput must hold and the safety oracle must stay clean.
fn byzantine_report(quick: bool) -> JsonValue {
    let mk = || {
        let mut cfg = SystemConfig::new(2, 4);
        cfg.byzantine = 1;
        cfg.clients = if quick { 4 } else { 8 };
        cfg.outstanding = if quick { 8 } else { 32 };
        cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta: 0.0 };
        cfg.duration = SimDuration::from_secs(if quick { 4 } else { 10 });
        cfg.warmup = SimDuration::from_secs(if quick { 1 } else { 2 });
        cfg.batch_size = 20;
        cfg
    };
    let report = ahl_core::run_system_report(mk());
    let mut json = system_report_json(&mk(), &report);
    let mut budgets = JsonValue::object();
    budgets
        .set("metrics/tps", budget("higher", 0.15, 0.0))
        .set("metrics/latency_p99_ms", budget("lower", 0.30, 0.0))
        .set("metrics/safety_violations", budget("lower", 0.0, 0.0));
    json.set("budgets", budgets);
    json
}

/// One budgeted metric's verdict from [`compare_reports`].
#[derive(Clone, Debug)]
pub struct MetricDiff {
    /// Slash-separated report path of the metric (e.g. `metrics/tps`).
    pub path: String,
    /// The baseline's value.
    pub baseline: f64,
    /// The fresh report's value.
    pub current: f64,
    /// `None` when within budget; otherwise what was breached.
    pub breach: Option<String>,
}

/// Diff `current` against `baseline` using the budgets embedded in the
/// *baseline* report (the committed file governs, so loosening a budget
/// takes a reviewed baseline change). Returns one verdict per budgeted
/// metric; a metric missing from either report is a breach. Errors on
/// structurally unusable reports: no budgets, or a scenario mismatch.
pub fn compare_reports(
    baseline: &JsonValue,
    current: &JsonValue,
) -> Result<Vec<MetricDiff>, String> {
    if let (Some(JsonValue::Str(b)), Some(JsonValue::Str(c))) =
        (baseline.get("scenario"), current.get("scenario"))
    {
        if b != c {
            return Err(format!("scenario mismatch: baseline is {b:?}, current is {c:?}"));
        }
    }
    let budgets = match baseline.get("budgets") {
        Some(JsonValue::Object(pairs)) => pairs,
        Some(_) => return Err("baseline `budgets` is not an object".into()),
        None => return Err("baseline report carries no `budgets` object".into()),
    };
    let mut out = Vec::new();
    for (path, spec) in budgets {
        let dir = match spec.get("dir") {
            Some(JsonValue::Str(d)) => d.as_str(),
            _ => return Err(format!("budget {path}: missing `dir`")),
        };
        let tol_frac = spec.get("tol_frac").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let tol_abs = spec.get("tol_abs").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let base = baseline.path(path).and_then(JsonValue::as_f64);
        let cur = current.path(path).and_then(JsonValue::as_f64);
        let (Some(base), Some(cur)) = (base, cur) else {
            out.push(MetricDiff {
                path: path.clone(),
                baseline: base.unwrap_or(f64::NAN),
                current: cur.unwrap_or(f64::NAN),
                breach: Some("metric missing from report".into()),
            });
            continue;
        };
        let breach = match dir {
            "higher" => {
                let floor = base * (1.0 - tol_frac) - tol_abs;
                (cur < floor).then(|| format!("{cur:.3} < floor {floor:.3}"))
            }
            "lower" => {
                let ceiling = base * (1.0 + tol_frac) + tol_abs;
                (cur > ceiling).then(|| format!("{cur:.3} > ceiling {ceiling:.3}"))
            }
            other => Some(format!("unknown budget direction {other:?}")),
        };
        out.push(MetricDiff { path: path.clone(), baseline: base, current: cur, breach });
    }
    Ok(out)
}

/// Render the comparison as the table `bench_compare` prints.
pub fn render_comparison(diffs: &[MetricDiff]) -> String {
    let width = diffs.iter().map(|d| d.path.len()).max().unwrap_or(6).max(6);
    let mut out = format!(
        "{:width$}  {:>14}  {:>14}  {:>9}  verdict\n",
        "metric", "baseline", "current", "delta"
    );
    for d in diffs {
        let delta = if d.baseline.abs() > 1e-12 {
            format!("{:+.1}%", (d.current - d.baseline) / d.baseline * 100.0)
        } else if d.current == d.baseline {
            "0.0%".into()
        } else {
            "n/a".into()
        };
        let verdict = match &d.breach {
            None => "ok".to_string(),
            Some(b) => format!("BREACH: {b}"),
        };
        out.push_str(&format!(
            "{:width$}  {:>14.3}  {:>14.3}  {:>9}  {verdict}\n",
            d.path, d.baseline, d.current, delta
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scenario: &str, tps: f64, p99: f64, violations: u64) -> JsonValue {
        let mut metrics = JsonValue::object();
        metrics
            .set("tps", JsonValue::Num(tps))
            .set("latency_p99_ms", JsonValue::Num(p99))
            .set("liveness_violations", JsonValue::UInt(violations));
        let mut budgets = JsonValue::object();
        budgets
            .set("metrics/tps", budget("higher", 0.10, 0.0))
            .set("metrics/latency_p99_ms", budget("lower", 0.25, 0.0))
            .set("metrics/liveness_violations", budget("lower", 0.0, 0.0));
        let mut root = JsonValue::object();
        root.set("scenario", JsonValue::Str(scenario.into()))
            .set("metrics", metrics)
            .set("budgets", budgets);
        root
    }

    #[test]
    fn within_budget_passes() {
        let baseline = report("fig8", 1000.0, 80.0, 0);
        let current = report("fig8", 950.0, 95.0, 0);
        let diffs = compare_reports(&baseline, &current).unwrap();
        assert_eq!(diffs.len(), 3);
        assert!(diffs.iter().all(|d| d.breach.is_none()), "{diffs:?}");
    }

    // The negative control: the gate must actually fire on a regression.
    #[test]
    fn throughput_collapse_breaches() {
        let baseline = report("fig8", 1000.0, 80.0, 0);
        let current = report("fig8", 850.0, 80.0, 0); // -15% > the 10% budget
        let diffs = compare_reports(&baseline, &current).unwrap();
        let tps = diffs.iter().find(|d| d.path == "metrics/tps").unwrap();
        assert!(tps.breach.is_some(), "{tps:?}");
        assert!(diffs.iter().filter(|d| d.breach.is_some()).count() == 1);
    }

    #[test]
    fn latency_and_liveness_breaches_fire() {
        let baseline = report("fig8", 1000.0, 80.0, 0);
        let current = report("fig8", 1000.0, 120.0, 1); // p99 +50%, one violation
        let diffs = compare_reports(&baseline, &current).unwrap();
        let breached: Vec<&str> = diffs
            .iter()
            .filter(|d| d.breach.is_some())
            .map(|d| d.path.as_str())
            .collect();
        assert_eq!(breached, ["metrics/latency_p99_ms", "metrics/liveness_violations"]);
    }

    #[test]
    fn missing_metric_is_a_breach() {
        let baseline = report("fig8", 1000.0, 80.0, 0);
        let mut current = report("fig8", 1000.0, 80.0, 0);
        // Drop tps from the current report.
        if let Some(JsonValue::Object(pairs)) = current.get("metrics").cloned() {
            let pruned: Vec<_> = pairs.into_iter().filter(|(k, _)| k != "tps").collect();
            current.set("metrics", JsonValue::Object(pruned));
        }
        let diffs = compare_reports(&baseline, &current).unwrap();
        let tps = diffs.iter().find(|d| d.path == "metrics/tps").unwrap();
        assert!(tps.breach.as_deref() == Some("metric missing from report"), "{tps:?}");
    }

    #[test]
    fn scenario_mismatch_and_missing_budgets_error() {
        let baseline = report("fig8", 1000.0, 80.0, 0);
        let current = report("overload", 1000.0, 80.0, 0);
        assert!(compare_reports(&baseline, &current).is_err());
        let bare = JsonValue::object();
        assert!(compare_reports(&bare, &bare).is_err());
    }

    #[test]
    fn round_trip_through_text_preserves_verdicts() {
        let baseline = report("fig8", 1234.5, 80.25, 0);
        let reparsed = JsonValue::parse(&baseline.render()).unwrap();
        let diffs = compare_reports(&reparsed, &reparsed).unwrap();
        assert!(diffs.iter().all(|d| d.breach.is_none()), "{diffs:?}");
    }
}
