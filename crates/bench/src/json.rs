//! Minimal hand-rolled JSON emitter for machine-readable run reports.
//!
//! The workspace deliberately carries no serialization dependency, so
//! reports are built from a small [`JsonValue`] tree and rendered with a
//! deterministic pretty-printer: object keys keep insertion order, floats
//! render via Rust's shortest-roundtrip formatting, and non-finite floats
//! degrade to `null` (JSON has no NaN/Infinity).
//!
//! [`system_report_json`] converts a full-system run
//! ([`ahl_core::SystemReport`]) into the stable report shape consumed by
//! CI and described in EXPERIMENTS.md: run config, aggregate metrics,
//! per-shard labeled counters, per-phase latency percentiles, raw global
//! counters, and flight-recorder occupancy.

use ahl_core::{SystemConfig, SystemReport, SystemWorkload};
use ahl_simkit::{Phase, Scope, SimDuration};
use ahl_telemetry::ProfileReport;

/// A JSON document node. Objects preserve insertion order so report
/// output is byte-stable across runs of the same build.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer number (counters can exceed `i64`).
    UInt(u64),
    /// Floating-point number; non-finite values render as `null`.
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Start an empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Insert (or overwrite) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: JsonValue) -> &mut Self {
        match self {
            JsonValue::Object(pairs) => {
                if let Some(p) = pairs.iter_mut().find(|(k, _)| k == key) {
                    p.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
            }
            _ => panic!("JsonValue::set on a non-object"),
        }
        self
    }

    /// Fetch a key from an object (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int`/`UInt`/`Num` as `f64`, `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// Counter view: non-negative integers as `u64`, `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(u) => Some(*u),
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Slash-separated path lookup through nested objects, e.g.
    /// `report.path("metrics/tps")`. Slash (not dot) because report keys
    /// like `phase.commit_exec` contain dots.
    pub fn path(&self, path: &str) -> Option<&JsonValue> {
        path.split('/').try_fold(self, |v, k| v.get(k))
    }

    /// Parse a JSON document — the inverse of [`JsonValue::render`].
    /// Numbers without a fraction or exponent come back as
    /// `UInt`/`Int`, everything else as `Num`. Errors carry the byte
    /// offset of the first problem.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => out.push_str(&i.to_string()),
            JsonValue::UInt(u) => out.push_str(&u.to_string()),
            JsonValue::Num(f) => {
                if f.is_finite() {
                    // `{:?}` gives the shortest representation that
                    // round-trips, and always includes a `.0`/exponent so
                    // the value stays a float on re-parse.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.i += 1;
                }
                // Exponent sign; a bare +/- elsewhere fails the f64 parse.
                b'+' | b'-' if float => self.i += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>().map(JsonValue::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.i + 4;
                            let cp = self
                                .b
                                .get(self.i..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            self.i = end;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence through (input is &str,
                    // so the bytes are valid).
                    let start = self.i - 1;
                    while self.peek().is_some_and(|b| b & 0xc0 == 0x80) {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| format!("bad utf-8 at byte {start}"))?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object_value(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn ms(d: SimDuration) -> JsonValue {
    JsonValue::Num(d.as_nanos() as f64 / 1e6)
}

/// The keys every system report must carry; CI fails the smoke run if one
/// goes missing. Keep in sync with [`system_report_json`].
pub const REQUIRED_REPORT_KEYS: &[&str] =
    &["report_version", "config", "metrics", "per_shard", "phases", "counters", "trace"];

/// Convert a full-system run into the stable machine-readable report.
pub fn system_report_json(cfg: &SystemConfig, report: &SystemReport) -> JsonValue {
    let m = &report.metrics;
    let stats = &report.stats;

    let mut config = JsonValue::object();
    config
        .set("shards", JsonValue::UInt(cfg.shards as u64))
        .set("committee_size", JsonValue::UInt(cfg.committee_size as u64))
        .set("with_reference", JsonValue::Bool(cfg.with_reference))
        .set("variant", JsonValue::Str(format!("{:?}", cfg.variant)))
        .set("clients", JsonValue::UInt(cfg.clients as u64))
        .set("outstanding", JsonValue::UInt(cfg.outstanding as u64))
        .set("batch_size", JsonValue::UInt(cfg.batch_size as u64))
        .set(
            "workload",
            JsonValue::Str(match &cfg.workload {
                SystemWorkload::SmallBank { accounts, theta } => {
                    format!("smallbank(accounts={accounts}, theta={theta})")
                }
                SystemWorkload::KvStore { keys, ops_per_txn } => {
                    format!("kvstore(keys={keys}, ops_per_txn={ops_per_txn})")
                }
            }),
        )
        .set("duration_s", JsonValue::Num(cfg.duration.as_secs_f64()))
        .set("warmup_s", JsonValue::Num(cfg.warmup.as_secs_f64()))
        .set("byzantine", JsonValue::UInt(cfg.byzantine as u64))
        .set("malicious_clients", JsonValue::UInt(cfg.malicious_clients as u64))
        .set("seed", JsonValue::UInt(cfg.seed));

    let mut metrics = JsonValue::object();
    metrics
        .set("tps", JsonValue::Num(m.tps))
        .set("committed", JsonValue::UInt(m.committed))
        .set("aborted", JsonValue::UInt(m.aborted))
        .set("abort_rate", JsonValue::Num(m.abort_rate))
        .set("latency_mean_ms", ms(m.latency_mean))
        .set("latency_p50_ms", ms(m.latency_p50))
        .set("latency_p99_ms", ms(m.latency_p99))
        .set("latency_p999_ms", ms(m.latency_p999))
        .set("cross_shard_fraction", JsonValue::Num(m.cross_shard_fraction))
        .set("stalled", JsonValue::UInt(m.stalled))
        .set("rejected", JsonValue::UInt(m.rejected))
        .set("pool_rejections", JsonValue::UInt(m.pool_rejections))
        .set("view_changes", JsonValue::UInt(m.view_changes))
        .set("chunks_served", JsonValue::UInt(m.chunks_served))
        .set("bytes_synced", JsonValue::UInt(m.bytes_synced))
        .set("proof_failures", JsonValue::UInt(m.proof_failures))
        .set(
            "final_balance",
            m.final_balance.map(JsonValue::Int).unwrap_or(JsonValue::Null),
        )
        .set("safety_violations", JsonValue::UInt(m.safety_violations))
        .set("liveness_violations", JsonValue::UInt(m.liveness_violations));

    // Per-shard labeled counters: one object per committee that reported
    // anything, keyed from the committee-scoped metric roll-ups.
    let committees = cfg.shards + usize::from(cfg.with_reference);
    let mut per_shard = Vec::new();
    for c in 0..committees {
        let scope = Scope::committee(c);
        let mut shard = JsonValue::object();
        shard
            .set(
                "committee",
                if c == cfg.shards {
                    JsonValue::Str("reference".into())
                } else {
                    JsonValue::UInt(c as u64)
                },
            )
            .set(
                "committed",
                JsonValue::UInt(stats.scoped_counter(ahl_consensus::stat::TXN_COMMITTED, scope)),
            )
            .set(
                "aborted",
                JsonValue::UInt(stats.scoped_counter(ahl_consensus::stat::TXN_ABORTED, scope)),
            )
            .set(
                "blocks",
                JsonValue::UInt(stats.scoped_counter(ahl_consensus::stat::BLOCKS_COMMITTED, scope)),
            )
            .set(
                "view_changes",
                JsonValue::UInt(stats.scoped_counter(ahl_consensus::stat::VIEW_CHANGES, scope)),
            );
        if let Some(h) = stats.scoped_histogram(ahl_consensus::stat::TXN_LATENCY, scope) {
            shard
                .set("latency_p50_ms", ms(h.quantile(0.50)))
                .set("latency_p99_ms", ms(h.quantile(0.99)));
        }
        per_shard.push(shard);
    }

    // Phase-latency breakdown from the flight recorder's derived
    // histograms: one entry per consensus/2PC transition that fired.
    let mut phases = JsonValue::object();
    for name in Phase::TRANSITIONS {
        if let Some(h) = stats.histogram(name) {
            let mut p = JsonValue::object();
            p.set("count", JsonValue::UInt(h.count()))
                .set("mean_ms", ms(h.mean()))
                .set("p50_ms", ms(h.quantile(0.50)))
                .set("p99_ms", ms(h.quantile(0.99)))
                .set("p999_ms", ms(h.quantile(0.999)));
            phases.set(name, p);
        }
    }

    let mut counters = JsonValue::object();
    for (name, v) in stats.counters() {
        counters.set(name, JsonValue::UInt(v));
    }

    let rec = stats.recorder();
    let mut trace = JsonValue::object();
    trace
        .set("capacity_per_node", JsonValue::UInt(rec.capacity() as u64))
        .set("events_retained", JsonValue::UInt(rec.all_events().count() as u64))
        .set("chain_overflow", JsonValue::UInt(rec.overflow()));

    let mut root = JsonValue::object();
    root.set("report_version", JsonValue::UInt(1))
        .set("config", config)
        .set("metrics", metrics)
        .set("per_shard", JsonValue::Array(per_shard))
        .set("phases", phases)
        .set("counters", counters)
        .set("trace", trace);
    if let Some(p) = &report.profile {
        root.set("profile", profile_json(p));
    }
    root
}

/// Convert a wall-clock profiler report into JSON (spans stay in the
/// report's self-time-descending order).
pub fn profile_json(p: &ProfileReport) -> JsonValue {
    let spans = p
        .spans
        .iter()
        .map(|s| {
            let mut o = JsonValue::object();
            o.set("name", JsonValue::Str(s.name.to_string()))
                .set("count", JsonValue::UInt(s.count))
                .set("self_ms", JsonValue::Num(s.self_ns as f64 / 1e6))
                .set("total_ms", JsonValue::Num(s.total_ns as f64 / 1e6));
            o
        })
        .collect();
    let mut o = JsonValue::object();
    o.set("wall_ms", JsonValue::Num(p.wall_ns as f64 / 1e6))
        .set("attributed_ms", JsonValue::Num(p.self_total_ns() as f64 / 1e6))
        .set("spans", JsonValue::Array(spans));
    o
}

/// Run the canonical full-system smoke cell behind `--json` and build the
/// machine-readable report. `quick` shrinks the grid to CI scale;
/// `experiments` records which table/figure ids ran alongside it.
pub fn smoke_report(quick: bool, experiments: &[&str]) -> JsonValue {
    let mk = || {
        let mut cfg = SystemConfig::new(if quick { 2 } else { 4 }, 3);
        cfg.clients = if quick { 4 } else { 16 };
        cfg.outstanding = if quick { 8 } else { 64 };
        cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta: 0.0 };
        cfg.duration = SimDuration::from_secs(if quick { 4 } else { 12 });
        cfg.warmup = SimDuration::from_secs(if quick { 1 } else { 3 });
        cfg.batch_size = 20;
        cfg
    };
    let report = ahl_core::run_system_report(mk());
    let mut json = system_report_json(&mk(), &report);
    json.set(
        "experiments",
        JsonValue::Array(experiments.iter().map(|e| JsonValue::Str(e.to_string())).collect()),
    );
    json.set("quick", JsonValue::Bool(quick));
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_escapes_and_nests() {
        let mut o = JsonValue::object();
        o.set("s", JsonValue::Str("a\"b\\c\nd".into()))
            .set("n", JsonValue::Num(1.5))
            .set("nan", JsonValue::Num(f64::NAN))
            .set("a", JsonValue::Array(vec![JsonValue::Int(-3), JsonValue::Bool(true)]));
        let s = o.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""), "{s}");
        assert!(s.contains("\"n\": 1.5"), "{s}");
        assert!(s.contains("\"nan\": null"), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut o = JsonValue::object();
        o.set("k", JsonValue::Int(1)).set("k2", JsonValue::Int(2)).set("k", JsonValue::Int(9));
        assert_eq!(o.get("k"), Some(&JsonValue::Int(9)));
        match o {
            JsonValue::Object(ref pairs) => assert_eq!(pairs.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_round_trips_render() {
        let mut o = JsonValue::object();
        o.set("s", JsonValue::Str("a\"b\\c\nd — π".into()))
            .set("n", JsonValue::Num(1.5))
            .set("u", JsonValue::UInt(u64::MAX))
            .set("i", JsonValue::Int(-42))
            .set("b", JsonValue::Bool(false))
            .set("z", JsonValue::Null)
            .set("a", JsonValue::Array(vec![JsonValue::Num(2e-3), JsonValue::Object(vec![])]));
        let parsed = JsonValue::parse(&o.render()).unwrap();
        assert_eq!(parsed, o);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{\"k\": }").is_err());
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn path_walks_nested_objects() {
        let v = JsonValue::parse(r#"{"metrics": {"tps": 123.5}, "phases": {"phase.commit_exec": {"p99_ms": 7}}}"#)
            .unwrap();
        assert_eq!(v.path("metrics/tps").and_then(JsonValue::as_f64), Some(123.5));
        assert_eq!(v.path("phases/phase.commit_exec/p99_ms").and_then(JsonValue::as_u64), Some(7));
        assert!(v.path("metrics/missing").is_none());
    }

    #[test]
    fn system_report_has_required_keys() {
        let mk = || {
            let mut cfg = SystemConfig::new(2, 3);
            cfg.clients = 4;
            cfg.outstanding = 8;
            cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.0 };
            cfg.duration = SimDuration::from_secs(3);
            cfg.warmup = SimDuration::from_secs(1);
            cfg.batch_size = 20;
            cfg
        };
        let report = ahl_core::run_system_report(mk());
        let json = system_report_json(&mk(), &report);
        for key in REQUIRED_REPORT_KEYS {
            assert!(json.get(key).is_some(), "missing key {key}");
        }
        // Per-shard counters must be populated and sum to the global.
        let committed: u64 = match json.get("per_shard").unwrap() {
            JsonValue::Array(shards) => shards
                .iter()
                .map(|s| match s.get("committed") {
                    Some(JsonValue::UInt(v)) => *v,
                    _ => 0,
                })
                .sum(),
            _ => 0,
        };
        assert!(committed > 0, "per-shard committed counts are empty");
        // At least the core consensus transitions must have fired.
        let phases = json.get("phases").unwrap();
        assert!(phases.get("phase.commit_exec").is_some(), "no commit→exec phase data");
    }
}
