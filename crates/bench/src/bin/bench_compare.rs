//! Diff a fresh trajectory report against its committed baseline.
//!
//! ```sh
//! cargo run --release -p ahl-bench --bin experiments -- fig8 --quick --json fresh.json
//! cargo run --release -p ahl-bench --bin bench_compare -- BENCH_fig8.json fresh.json
//! ```
//!
//! The budgets come from the *baseline* file, so loosening one requires a
//! reviewed change to the committed `BENCH_<scenario>.json`. Exit codes:
//! 0 when every budgeted metric is within budget, 1 on any breach, 2 on
//! usage or parse errors.

use ahl_bench::json::JsonValue;
use ahl_bench::trajectory::compare_reports;

fn read(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path}: {e}");
        std::process::exit(2);
    });
    JsonValue::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path}: invalid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <current.json>");
        std::process::exit(2);
    };
    let baseline = read(baseline_path);
    let current = read(current_path);
    let diffs = compare_reports(&baseline, &current).unwrap_or_else(|e| {
        eprintln!("bench_compare: {e}");
        std::process::exit(2);
    });
    print!("{}", ahl_bench::trajectory::render_comparison(&diffs));
    let breaches = diffs.iter().filter(|d| d.breach.is_some()).count();
    if breaches > 0 {
        eprintln!("bench_compare: {breaches} budget breach(es) vs {baseline_path}");
        std::process::exit(1);
    }
    println!("bench_compare: all {} budgeted metrics within budget", diffs.len());
}
