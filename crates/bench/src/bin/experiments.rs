//! Regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p ahl-bench --bin experiments -- <id>... [--quick]
//! cargo run --release -p ahl-bench --bin experiments -- all --quick
//! cargo run --release -p ahl-bench --bin experiments -- fig8 --quick --json out.json
//! cargo run --release -p ahl-bench --bin experiments -- list
//! ```
//!
//! `--json <path>` writes a machine-readable report to `path`. When the
//! single experiment id is a trajectory scenario (`fig8`, `overload`,
//! `statesync`, `recovery`, `byzantine`, `soak`) the report is that scenario's
//! bench-trajectory report — fixed-seed metrics plus embedded per-metric
//! regression budgets, comparable against the committed
//! `BENCH_<scenario>.json` baseline with the `bench_compare` binary.
//! Otherwise it falls back to the canonical full-system smoke report
//! (run config, aggregate metrics, per-shard committed counts,
//! phase-latency percentiles).

use ahl_bench::{figs, run_all, Scale};

const IDS: &[(&str, &str)] = &[
    ("table1", "methodology comparison vs other sharded blockchains"),
    ("table2", "enclave operation costs"),
    ("table3", "GCP inter-region latency matrix"),
    ("eq1", "committee sizing (Equation 1)"),
    ("eq2", "epoch-transition exposure (Equation 2)"),
    ("eq3", "cross-shard probability (Equation 3)"),
    ("fig2", "BFT comparison: HL vs Tendermint vs IBFT vs Raft"),
    ("fig8", "AHL variants on cluster (vs N, vs f)"),
    ("fig9", "AHL variants on GCP (4 & 8 regions)"),
    ("fig10", "optimization ablation"),
    ("fig11", "committee size + shard formation time vs RandHound"),
    ("fig12", "throughput during resharding"),
    ("fig13", "sharding with/without reference committee; skew"),
    ("fig14", "large-scale GCP sharding (12.5% / 25%)"),
    ("fig15", "latency vs N"),
    ("fig16", "view changes"),
    ("fig17", "consensus vs execution cost"),
    ("fig18", "sharding: KVStore vs Smallbank"),
    ("fig19", "tps vs clients on GCP"),
    ("fig20", "tps vs clients on cluster"),
    ("fig21", "PoET vs PoET+ throughput"),
    ("fig22", "PoET vs PoET+ stale rate"),
    ("byzantine", "scripted-attack matrix: PBFT/IBFT/Tendermint + 2PC under Byzantine replicas/clients, safety-checked"),
    ("overload", "mempool overload sweep: offered load past pool capacity; fixed vs AIMD"),
    ("statesync", "state-sync sweep: restarted replica catch-up, state size x chunk size"),
    ("recovery", "crash-kill recovery smoke: WAL + page checkpoints, restart-from-disk"),
    ("soak", "bounded-disk soak: sustained churn under page GC + WAL retention, crash mid-GC, lazy reopen"),
    ("parexec", "exec_workers sweep: parallel in-shard execution, results must be identical at every worker count"),
    ("cluster", "multi-process localhost PBFT committee over TCP: measured vs simkit-predicted throughput, kill/restart survival"),
];

fn usage() -> ! {
    println!("usage: experiments <id>... [--quick] [--json <path>]\n");
    println!("experiments:");
    for (id, desc) in IDS {
        println!("  {id:8} {desc}");
    }
    println!("  all      run everything");
    println!("  list     print this list");
    std::process::exit(2);
}

/// `experiments -- cluster`: spawn the localhost committee from the
/// sibling `node` binary and report measured vs predicted throughput.
/// Any safety violation or unclean node exit aborts the whole run.
fn run_cluster_cmd(quick: bool) {
    use ahl_bench::cluster::{run_cluster, ClusterSpec};
    let exe = std::env::current_exe().expect("current exe path");
    let node_bin = exe.with_file_name("node");
    let root = std::env::temp_dir().join(format!("ahl-cluster-{}", std::process::id()));
    let mut spec = ClusterSpec::new(root.clone(), node_bin);
    if quick {
        spec.warmup = std::time::Duration::from_secs(1);
        spec.measure = std::time::Duration::from_secs(3);
        spec.kill_restart = false;
    }
    println!(
        "== cluster: {} x {} over TCP (localhost), {} clients x {} outstanding ==",
        spec.n,
        spec.variant.name(),
        spec.clients,
        spec.outstanding
    );
    match run_cluster(&spec) {
        Ok(report) => {
            print!("{}", report.render());
            let _ = std::fs::remove_dir_all(&root);
        }
        Err(e) => {
            eprintln!("cluster experiment failed: {e}");
            eprintln!("(node logs left under {})", root.display());
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let json_path: Option<String> = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| usage()));
    let mut skip_next = false;
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" {
                skip_next = true;
            }
            !a.starts_with('-')
        })
        .map(String::as_str)
        .collect();
    if ids.is_empty() || ids.contains(&"list") {
        usage();
    }

    let started = std::time::Instant::now();
    for &id in &ids {
        match id {
            "all" => run_all(scale),
            "table1" => figs::table1(),
            "table2" => figs::table2(),
            "table3" => figs::table3(),
            "eq1" => figs::eq1(),
            "eq2" => figs::eq2(),
            "eq3" => figs::eq3(),
            "fig2" => figs::fig2(scale),
            "fig8" => figs::fig8(scale),
            "fig9" => figs::fig9(scale),
            "fig10" => figs::fig10(scale),
            "fig11" => figs::fig11(scale),
            "fig12" => figs::fig12(scale),
            "fig13" => figs::fig13(scale),
            "fig14" => figs::fig14(scale),
            "fig15" => figs::fig15(scale),
            "fig16" => figs::fig16(scale),
            "fig17" => figs::fig17(scale),
            "fig18" => figs::fig18(scale),
            "fig19" => figs::fig19(scale),
            "fig20" => figs::fig20(scale),
            "fig21" => figs::fig21(scale),
            "fig22" => figs::fig22(scale),
            "byzantine" => figs::byzantine(scale),
            "overload" => figs::overload(scale),
            "statesync" => figs::statesync(scale),
            "recovery" => figs::recovery(scale),
            "soak" => figs::soak(scale),
            "parexec" => figs::parexec(scale),
            "cluster" => run_cluster_cmd(quick),
            other => {
                println!("unknown experiment: {other}\n");
                usage();
            }
        }
    }
    if let Some(path) = json_path {
        // A single scenario id gets its trajectory report (with embedded
        // regression budgets); anything else gets the canonical smoke.
        let report = match ids.as_slice() {
            [id] => ahl_bench::trajectory::scenario_report(id, quick)
                .unwrap_or_else(|| ahl_bench::json::smoke_report(quick, &ids)),
            _ => ahl_bench::json::smoke_report(quick, &ids),
        };
        std::fs::write(&path, report.render()).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("\n(json report written to {path})");
    }
    println!("\n(total wall time: {:.1}s)", started.elapsed().as_secs_f64());
}
