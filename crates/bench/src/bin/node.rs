//! One real replica process: `node <cluster.cfg> <replica-index>`.
//!
//! Reads the cluster config, rebuilds the committee's key registry the
//! way `pbft::build_group` does (so every process agrees on every
//! replica's keys without any key exchange), and runs the unmodified
//! [`Replica`] on a [`NodeRuntime`] over [`TcpTransport`]. If the
//! replica's data directory already holds a journal, the process
//! self-delivers [`PbftMsg::Restart`] after startup: the replica then
//! recovers from disk and state-syncs the remainder from its peers —
//! exactly the crash/restart path the simulator batteries exercise.
//!
//! Exit status: 0 after a clean [`ahl_net::Control::Shutdown`]; any panic
//! (internal invariant violation) aborts nonzero.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ahl_bench::cluster::ClusterFile;
use ahl_consensus::pbft::{PbftMsg, Replica};
use ahl_crypto::KeyRegistry;
use ahl_net::{NodeRuntime, StatusReport, Stopped, TcpConfig, TcpTransport};
use ahl_simkit::rng::derive_seed;
use ahl_simkit::Actor;

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let (Some(cfg_path), Some(index)) = (args.next(), args.next()) else {
        return Err("usage: node <cluster.cfg> <replica-index>".into());
    };
    let me: usize = index.parse().map_err(|e| format!("bad replica index {index:?}: {e}"))?;
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("read {cfg_path:?}: {e}"))?;
    let cf = ClusterFile::parse(&text)?;
    if me >= cf.replicas.len() {
        return Err(format!("replica index {me} out of range (committee of {})", cf.replicas.len()));
    }

    let pbft = cf.pbft_config();
    let seed = cf.seed;

    // Key material: the exact `build_group` derivation — all replica
    // keys first, then all TEE keys, so key ids and public keys agree
    // across every process and with the simulator.
    let mut registry = KeyRegistry::new();
    let n = pbft.n;
    let mut keys: Vec<_> = (0..n).map(|i| registry.generate(seed ^ (i as u64) << 8)).collect();
    let mut tee_keys: Vec<_> =
        (0..n).map(|i| registry.generate(seed ^ ((i as u64) << 8) ^ 1)).collect();
    let registry = Arc::new(registry);
    let group: Vec<usize> = (0..n).collect();
    let reporter = if n == 1 { me == 0 } else { me == 1 };
    let mut rcfg = pbft.clone();
    rcfg.pool_seed = derive_seed(seed, 0x4D45_4D50 ^ me as u64);

    // Restart detection must precede Replica::new (which creates the
    // node directory when absent).
    let node_dir = rcfg.data_dir.as_ref().map(|d| d.join(format!("node-{me}")));
    let restarting = node_dir.as_ref().is_some_and(|d| {
        std::fs::read_dir(d).map(|mut it| it.next().is_some()).unwrap_or(false)
    });

    let replica = Replica::new(
        rcfg,
        group,
        me,
        keys.swap_remove(me),
        tee_keys.swap_remove(me),
        registry,
        &[],
        reporter,
    );

    let (my_id, listen) = cf.replicas[me];
    let peers: Vec<_> = cf
        .replicas
        .iter()
        .filter(|(id, _)| *id != my_id)
        .chain(cf.clients.iter())
        .cloned()
        .collect();
    let mut tcp = TcpConfig::new(listen, vec![my_id], peers);
    tcp.cluster = cf.digest();
    let transport =
        TcpTransport::start(tcp).map_err(|e| format!("listen on {listen}: {e}"))?;
    let mut rt: NodeRuntime<PbftMsg> =
        NodeRuntime::new(Box::new(transport), cf.num_nodes(), seed);
    rt.add_actor(my_id, Box::new(replica));
    rt.set_status_fn(Box::new(|a: &dyn Actor<Msg = PbftMsg>| {
        let r = a.as_any()?.downcast_ref::<Replica>()?;
        Some(StatusReport {
            height: r.exec_seq(),
            digest: r.state().state_digest(),
            committed: r.executed_len() as u64,
        })
    }));
    rt.start();
    if restarting {
        eprintln!("node {me}: non-empty data dir, recovering from disk");
        rt.transport().send(my_id, my_id, ahl_net::Packet::App(PbftMsg::Restart));
    }
    eprintln!("node {me}: listening on {listen}");

    loop {
        if rt.run_for(Duration::from_millis(500)) == Stopped::Halted {
            break;
        }
    }
    rt.shutdown_transport();
    eprintln!("node {me}: shut down cleanly");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("node: {e}");
            ExitCode::FAILURE
        }
    }
}
