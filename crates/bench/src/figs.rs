//! One function per table/figure of the paper's evaluation.

use ahl_consensus::clients::OpenLoopClient;
use ahl_consensus::common::stat;
use ahl_consensus::harness::{
    run_shard_experiment, ClientMode, NetChoice, RunMetrics, ShardExperiment,
};
use ahl_consensus::ibft::{build_ibft_group, IbftConfig};
use ahl_consensus::pbft::{BftVariant, PbftConfig};
use ahl_consensus::poet::{run_poet, PoetConfig};
use ahl_consensus::raft::{build_raft_group, RaftConfig};
use ahl_consensus::tendermint::{build_tm_group, TmConfig};
use ahl_core::{
    run_reshard, run_scale_out, run_system, RateControl, ReshardConfig, ReshardStrategy,
    ScaleOutConfig, ShardBench, SystemConfig, SystemWorkload,
};
use ahl_net::{gcp, ClusterNetwork, GcpNetwork};
use ahl_shard::{
    min_committee_size, paper_l_bits, reconfig_failure_prob, run_beacon, run_randhound_with,
    LnFact, Resilience, RhCosts,
};
use ahl_simkit::{QueueConfig, SimDuration, SimTime};
use ahl_tee::{CostModel, TeeOp};
use ahl_workload::KvStoreWorkload;

use crate::report::{f1, f3, parallel_map, sci, sparkline, Table};

/// Experiment scale: `Quick` for smoke runs, `Full` for the paper grids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced grids and durations (~seconds per figure).
    Quick,
    /// The paper's parameter grids (~minutes per figure).
    Full,
}

impl Scale {
    fn measure(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_secs(8),
            Scale::Full => SimDuration::from_secs(20),
        }
    }

    fn warmup(self) -> SimDuration {
        match self {
            Scale::Quick => SimDuration::from_secs(3),
            Scale::Full => SimDuration::from_secs(5),
        }
    }

    fn pick<T: Clone>(self, quick: &[T], full: &[T]) -> Vec<T> {
        match self {
            Scale::Quick => quick.to_vec(),
            Scale::Full => full.to_vec(),
        }
    }
}

// ---------- shared cell runners ----------

/// Format a latency as milliseconds with one decimal.
fn lat_ms(d: SimDuration) -> String {
    f1(d.as_nanos() as f64 / 1e6)
}

/// Run one single-committee cell with the standard KVStore open-loop load.
fn bft_cell(variant: BftVariant, n: usize, net: NetChoice, byz: usize, scale: Scale, seed: u64) -> RunMetrics {
    let mut pbft = PbftConfig::new(variant, n);
    pbft.byzantine = byz;
    let mut exp = ShardExperiment::new(
        pbft,
        Box::new(|client| KvStoreWorkload::single_shard().factory(client)),
    );
    exp.net = net;
    exp.clients = 10;
    exp.client_mode = ClientMode::Open { rate: 300.0 };
    exp.duration = scale.measure();
    exp.warmup = scale.warmup();
    exp.seed = seed;
    run_shard_experiment(exp)
}

fn tm_cell(n: usize, clients: usize, rate: f64, scale: Scale) -> f64 {
    let cfg = TmConfig::new(n);
    let (mut sim, group) = build_tm_group(&cfg, Box::new(ClusterNetwork::new()), Some(1e9), 7);
    let stop = SimTime::ZERO + scale.warmup() + scale.measure();
    for c in 0..clients {
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_secs_f64(1.0 / rate),
            stop,
            KvStoreWorkload::single_shard().factory(c),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
    }
    sim.run_until(stop + SimDuration::from_secs(3));
    sim.stats()
        .rate_in_window(stat::COMMIT_SERIES, SimTime::ZERO + scale.warmup(), stop)
}

fn ibft_cell(n: usize, clients: usize, rate: f64, scale: Scale) -> f64 {
    let cfg = IbftConfig::new(n);
    let (mut sim, group) = build_ibft_group(&cfg, Box::new(ClusterNetwork::new()), Some(1e9), 7);
    let stop = SimTime::ZERO + scale.warmup() + scale.measure();
    for c in 0..clients {
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_secs_f64(1.0 / rate),
            stop,
            KvStoreWorkload::single_shard().factory(c),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
    }
    sim.run_until(stop + SimDuration::from_secs(3));
    sim.stats()
        .rate_in_window(stat::COMMIT_SERIES, SimTime::ZERO + scale.warmup(), stop)
}

fn raft_cell(n: usize, clients: usize, rate: f64, scale: Scale) -> f64 {
    let cfg = RaftConfig::new(n);
    let (mut sim, group) = build_raft_group(&cfg, Box::new(ClusterNetwork::new()), Some(1e9), 7);
    let stop = SimTime::ZERO + scale.warmup() + scale.measure();
    for c in 0..clients {
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_secs_f64(1.0 / rate),
            stop,
            KvStoreWorkload::single_shard().factory(c),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
    }
    sim.run_until(stop + SimDuration::from_secs(3));
    sim.stats()
        .rate_in_window(stat::COMMIT_SERIES, SimTime::ZERO + scale.warmup(), stop)
}

// ---------- tables ----------

/// Table 1: methodology comparison.
pub fn table1() {
    let mut t = Table::new(
        "Table 1: comparison with other sharded blockchains",
        &["system", "machines", "oversub", "txn model", "distributed txns"],
    );
    for row in ahl_core::table1() {
        t.row(vec![
            row.system.into(),
            row.machines.to_string(),
            format!("{}x", row.oversubscription),
            row.txn_model.into(),
            if row.distributed_txns { "yes" } else { "no" }.into(),
        ]);
    }
    t.print();
}

/// Table 2: enclave operation costs (the configured model, which the
/// simulator charges per operation) plus host-measured software costs of
/// the real primitives for reference.
pub fn table2() {
    let m = CostModel::default();
    let mut t = Table::new(
        "Table 2: runtime costs of enclave operations",
        &["operation", "model (us)", "paper (us)"],
    );
    let rows: Vec<(&str, TeeOp, f64)> = vec![
        ("ECDSA signing", TeeOp::EcdsaSign, 458.4),
        ("ECDSA verification", TeeOp::EcdsaVerify, 844.2),
        ("SHA256", TeeOp::Sha256, 2.5),
        ("AHL append", TeeOp::AhlAppend, 465.3),
        ("AHLR aggregation (f=8)", TeeOp::MessageAggregation { f: 8 }, 8031.2),
        ("RandomnessBeacon", TeeOp::RandomnessBeacon, 482.2),
        ("Enclave switch", TeeOp::EnclaveSwitch, 2.7),
    ];
    for (name, op, paper) in rows {
        t.row(vec![
            name.into(),
            f1(m.cost(op).as_nanos() as f64 / 1000.0),
            f1(paper),
        ]);
    }
    t.print();

    // Host-measured software implementations (sanity reference).
    let start = std::time::Instant::now();
    let mut h = ahl_crypto::Hash::ZERO;
    for i in 0..10_000u32 {
        h = ahl_crypto::sha256_parts(&[&h.0, &i.to_be_bytes()]);
    }
    let sha_us = start.elapsed().as_secs_f64() * 1e6 / 10_000.0;
    println!("(host software SHA-256 chain step: {sha_us:.2} us/op)");
}

/// Table 3: GCP inter-region RTT matrix.
pub fn table3() {
    let mut t = Table::new(
        "Table 3: latency (ms RTT) between GCP regions",
        &[&"zone"]
            .into_iter().copied()
            .chain(gcp::REGION_NAMES.iter().map(|s| &s[..s.len().min(10)]))
            .collect::<Vec<_>>(),
    );
    for (i, name) in gcp::REGION_NAMES.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for j in 0..gcp::NUM_REGIONS {
            row.push(f1(gcp::rtt_ms(i, j)));
        }
        t.row(row);
    }
    t.print();
}

// ---------- equations ----------

/// §5.2 committee sizing examples (Equation 1).
pub fn eq1() {
    let lf = LnFact::new(4096);
    let mut t = Table::new(
        "Equation 1: committee sizes for Pr[faulty] <= 2^-20 (N = 2400)",
        &["adversary", "PBFT rule n", "attested rule n"],
    );
    for s in [0.05, 0.10, 0.15, 0.20, 0.25, 0.30] {
        let third = min_committee_size(&lf, 2400, s, Resilience::OneThird, 20.0)
            .map(|n| n.to_string())
            .unwrap_or_else(|| ">2400".into());
        let half = min_committee_size(&lf, 2400, s, Resilience::OneHalf, 20.0)
            .map(|n| n.to_string())
            .unwrap_or_else(|| ">2400".into());
        t.row(vec![format!("{:.0}%", s * 100.0), third, half]);
    }
    t.print();
}

/// §5.3 epoch-transition exposure (Equation 2).
pub fn eq2() {
    let lf = LnFact::new(2048);
    let mut t = Table::new(
        "Equation 2: Pr(faulty) during epoch transition (N=1000, s=25%, n=80, k=10)",
        &["batch B", "batches", "Pr(faulty)"],
    );
    for b in [1usize, 2, 4, 6, 12, 36] {
        let transitioning: usize = 80 * 9 / 10;
        let batches = transitioning.div_ceil(b);
        let p = reconfig_failure_prob(&lf, 1000, 0.25, 80, 10, b, Resilience::OneHalf);
        t.row(vec![b.to_string(), batches.to_string(), sci(p)]);
    }
    t.print();
    println!("(paper: B = log(n) = 6 gives Pr(faulty) ~ 1e-5)");
}

/// Appendix B cross-shard probability (Equation 3).
pub fn eq3() {
    let mut t = Table::new(
        "Equation 3: probability a d-argument txn is cross-shard",
        &["d", "k=4", "k=10", "k=16", "k=36"],
    );
    for d in [2usize, 3, 4, 5] {
        t.row(vec![
            d.to_string(),
            f3(ahl_txn::crossshard::prob_cross_shard(d, 4)),
            f3(ahl_txn::crossshard::prob_cross_shard(d, 10)),
            f3(ahl_txn::crossshard::prob_cross_shard(d, 16)),
            f3(ahl_txn::crossshard::prob_cross_shard(d, 36)),
        ]);
    }
    t.print();
}

// ---------- figures ----------

/// Figure 2: BFT protocol comparison (HL vs Tendermint vs Quorum IBFT vs
/// Quorum Raft), tps vs N and tps vs #clients.
pub fn fig2(scale: Scale) {
    let ns = scale.pick(&[4usize, 7, 19], &[1, 7, 19, 31, 43, 55, 67]);
    let cells = parallel_map(ns.clone(), |&n| {
        let hl = bft_cell(BftVariant::Hl, n, NetChoice::Cluster, 0, scale, 2).tps;
        let tm = tm_cell(n, 10, 200.0, scale);
        let ibft = ibft_cell(n, 10, 200.0, scale);
        let raft = raft_cell(n, 10, 200.0, scale);
        (hl, tm, ibft, raft)
    });
    let mut t = Table::new(
        "Figure 2 (left): throughput vs N (10 clients, KVStore)",
        &["N", "HL (PBFT)", "Tendermint", "Quorum IBFT", "Quorum Raft"],
    );
    for (n, (hl, tm, ibft, raft)) in cells {
        t.row(vec![n.to_string(), f1(hl), f1(tm), f1(ibft), f1(raft)]);
    }
    t.print();

    let client_counts = scale.pick(&[1usize, 8, 32], &[1, 2, 4, 8, 16, 32, 64]);
    let cells = parallel_map(client_counts, |&c| {
        let mut pbft = PbftConfig::new(BftVariant::Hl, 4);
        pbft.byzantine = 0;
        let mut exp = ShardExperiment::new(
            pbft,
            Box::new(|client| KvStoreWorkload::single_shard().factory(client)),
        );
        exp.clients = c;
        // 50 req/s per client: throughput rises with clients to the
        // saturation plateau, as in the paper's right panel.
        exp.client_mode = ClientMode::Open { rate: 50.0 };
        exp.duration = scale.measure();
        exp.warmup = scale.warmup();
        let hl = run_shard_experiment(exp).tps;
        let tm = tm_cell(4, c, 50.0, scale);
        let ibft = ibft_cell(4, c, 50.0, scale);
        let raft = raft_cell(4, c, 50.0, scale);
        (hl, tm, ibft, raft)
    });
    let mut t = Table::new(
        "Figure 2 (right): throughput vs #clients (N = 4)",
        &["clients", "HL (PBFT)", "Tendermint", "Quorum IBFT", "Quorum Raft"],
    );
    for (c, (hl, tm, ibft, raft)) in cells {
        t.row(vec![c.to_string(), f1(hl), f1(tm), f1(ibft), f1(raft)]);
    }
    t.print();
}

const VARIANTS: [BftVariant; 4] = [
    BftVariant::Hl,
    BftVariant::Ahl,
    BftVariant::AhlPlus,
    BftVariant::Ahlr,
];

/// Figure 8: AHL variants on the local cluster — throughput vs N without
/// failures, and vs f with equivocating Byzantine nodes.
pub fn fig8(scale: Scale) {
    let ns = scale.pick(&[7usize, 19, 31], &[7, 19, 31, 43, 55, 67, 79]);
    let cells = parallel_map(ns, |&n| {
        VARIANTS.map(|v| bft_cell(v, n, NetChoice::Cluster, 0, scale, 3))
    });
    let mut t = Table::new(
        "Figure 8 (left): throughput vs N on cluster, no failures",
        &["N", "HL", "AHL", "AHL+", "AHLR", "HL VCs", "AHL+ drops"],
    );
    for (n, ms) in cells {
        t.row(vec![
            n.to_string(),
            f1(ms[0].tps),
            f1(ms[1].tps),
            f1(ms[2].tps),
            f1(ms[3].tps),
            ms[0].view_changes.to_string(),
            ms[2].dropped_consensus.to_string(),
        ]);
    }
    t.print();

    let fs = scale.pick(&[1usize, 5], &[1, 5, 10, 15, 20, 25]);
    let cells = parallel_map(fs, |&f| {
        VARIANTS.map(|v| {
            // For a given f: HL runs N = 3f+1, attested variants N = 2f+1.
            let n = v.fault_model().committee_for_faults(f);
            bft_cell(v, n, NetChoice::Cluster, f, scale, 4)
        })
    });
    let mut t = Table::new(
        "Figure 8 (right): throughput vs f with Byzantine equivocation",
        &["f", "HL", "AHL", "AHL+", "AHLR"],
    );
    for (f, ms) in cells {
        t.row(vec![
            f.to_string(),
            f1(ms[0].tps),
            f1(ms[1].tps),
            f1(ms[2].tps),
            f1(ms[3].tps),
        ]);
    }
    t.print();
}

/// Figure 9: the same sweep on GCP over 4 and 8 regions.
pub fn fig9(scale: Scale) {
    for regions in [4usize, 8] {
        let ns = scale.pick(&[7usize, 19], &[7, 19, 31, 43, 55, 67, 79]);
        let cells = parallel_map(ns, |&n| {
            VARIANTS.map(|v| bft_cell(v, n, NetChoice::Gcp { regions }, 0, scale, 5).tps)
        });
        let mut t = Table::new(
            &format!("Figure 9: throughput vs N on GCP, {regions} regions"),
            &["N", "HL", "AHL", "AHL+", "AHLR"],
        );
        for (n, tps) in cells {
            t.row(vec![n.to_string(), f1(tps[0]), f1(tps[1]), f1(tps[2]), f1(tps[3])]);
        }
        t.print();
    }
}

/// Figure 10: ablation of the three optimizations.
pub fn fig10(scale: Scale) {
    // Config ladder: HL → AHL → +opt1 → +opt1,2 (AHL+) → +opt1,2,3 (AHLR).
    fn ladder(n: usize) -> Vec<(&'static str, PbftConfig)> {
        let hl = PbftConfig::new(BftVariant::Hl, n);
        let ahl = PbftConfig::new(BftVariant::Ahl, n);
        let mut op1 = PbftConfig::new(BftVariant::Ahl, n);
        op1.split_queues = true;
        let op12 = PbftConfig::new(BftVariant::AhlPlus, n);
        let op123 = PbftConfig::new(BftVariant::Ahlr, n);
        vec![
            ("HL", hl),
            ("AHL", ahl),
            ("AHL+op1", op1),
            ("AHL+op1,2 (AHL+)", op12),
            ("AHL+op1,2,3 (AHLR)", op123),
        ]
    }

    for (label, n, byz) in [("no failures, N=19", 19usize, 0usize), ("f=5 Byzantine", 11, 5)] {
        let configs = ladder(n);
        let cells = parallel_map(configs, |(_, cfg)| {
            let mut cfg = cfg.clone();
            // Byzantine count only meaningful vs the variant's tolerance.
            cfg.byzantine = byz.min(cfg.f());
            let mut exp = ShardExperiment::new(
                cfg,
                Box::new(|client| KvStoreWorkload::single_shard().factory(client)),
            );
            exp.clients = 10;
            // Saturating load: the optimizations matter under stress.
            exp.client_mode = ClientMode::Open { rate: 600.0 };
            exp.duration = scale.measure();
            exp.warmup = scale.warmup();
            run_shard_experiment(exp).tps
        });
        let mut t = Table::new(
            &format!("Figure 10: effect of optimizations ({label})"),
            &["configuration", "tps"],
        );
        for ((name, _), tps) in cells {
            t.row(vec![name.into(), f1(tps)]);
        }
        t.print();
    }
}

/// Figure 11: committee size vs adversary, and shard-formation time
/// (our beacon vs RandHound) on cluster and GCP.
pub fn fig11(scale: Scale) {
    let lf = LnFact::new(4096);
    let mut t = Table::new(
        "Figure 11 (left): committee size n vs adversary (Pr <= 2^-20, N=2400)",
        &["% byzantine", "OmniLedger (1/3)", "Ours (1/2)"],
    );
    for pct in [5u32, 10, 15, 20, 25, 30] {
        let s = pct as f64 / 100.0;
        let ol = min_committee_size(&lf, 2400, s, Resilience::OneThird, 20.0)
            .map(|n| n.to_string())
            .unwrap_or_else(|| ">N".into());
        let ours = min_committee_size(&lf, 2400, s, Resilience::OneHalf, 20.0)
            .map(|n| n.to_string())
            .unwrap_or_else(|| ">N".into());
        t.row(vec![format!("{pct}%"), ol, ours]);
    }
    t.print();

    let ns = scale.pick(&[32usize, 128], &[32, 64, 128, 256, 512]);
    let cells = parallel_map(ns, |&n| {
        // Δ = 3x the measured max propagation of a 1 KB message. The paper
        // measured 2-4.5 s on the (8x oversubscribed) cluster and 5.9-15 s
        // on GCP, growing with N; interpolate within those measured ranges.
        let frac = ((n as f64).log2() - 5.0).clamp(0.0, 4.0) / 4.0;
        let cluster_delta = SimDuration::from_secs_f64(2.0 + 2.5 * frac);
        let gcp_delta = SimDuration::from_secs_f64(5.9 + (15.0 - 5.9) * frac);
        let ours_l = run_beacon(
            n,
            paper_l_bits(n),
            cluster_delta,
            Box::new(ClusterNetwork::new()),
            Some(1e9),
            9,
        )
        .completion;
        let rh_l = run_randhound_with(
            n,
            16,
            RhCosts::cluster(),
            Box::new(ClusterNetwork::new()),
            Some(1e9),
            9,
        )
        .completion;
        let ours_g = run_beacon(
            n,
            paper_l_bits(n),
            gcp_delta,
            Box::new(GcpNetwork::new(n, 8)),
            Some(300e6),
            9,
        )
        .completion;
        let rh_g = run_randhound_with(
            n,
            16,
            RhCosts::default(),
            Box::new(GcpNetwork::new(n, 8)),
            Some(300e6),
            9,
        )
        .completion;
        (ours_l, rh_l, ours_g, rh_g)
    });
    let mut t = Table::new(
        "Figure 11 (right): shard formation time (s)",
        &["N", "ours (cluster)", "RandHound (cluster)", "ours (GCP)", "RandHound (GCP)", "speedup GCP"],
    );
    for (n, (ol, rl, og, rg)) in cells {
        t.row(vec![
            n.to_string(),
            f3(ol.as_secs_f64()),
            f3(rl.as_secs_f64()),
            f3(og.as_secs_f64()),
            f3(rg.as_secs_f64()),
            format!("{:.1}x", rg.as_secs_f64() / og.as_secs_f64().max(1e-9)),
        ]);
    }
    t.print();
}

/// Figure 12: throughput during shard reconfiguration.
pub fn fig12(scale: Scale) {
    let sizes = scale.pick(&[9usize], &[9, 17, 33]);
    let mut t = Table::new(
        "Figure 12 (left): average throughput during resharding",
        &["n", "no reshard", "swap all", "swap log(n)"],
    );
    let cells = parallel_map(sizes, |&n| {
        [ReshardStrategy::None, ReshardStrategy::SwapAll, ReshardStrategy::SwapLog].map(|s| {
            let mut cfg = ReshardConfig::new(n, s);
            if scale == Scale::Quick {
                cfg.reshard_at = vec![SimDuration::from_secs(40)];
                // ≈1 GB of shard state: a ~10 s real transfer at 1 Gbps.
                cfg.state_pad_keys = 2_000;
                cfg.state_pad_bytes = 500_000;
                cfg.duration = SimDuration::from_secs(100);
                cfg.client_rate = 100.0;
                cfg.clients = 2;
            }
            run_reshard(&cfg)
        })
    });
    let mut series_for_9 = None;
    for (n, ms) in cells {
        t.row(vec![
            n.to_string(),
            f1(ms[0].avg_tps),
            f1(ms[1].avg_tps),
            f1(ms[2].avg_tps),
        ]);
        if n == 9 {
            series_for_9 = Some(ms);
        }
    }
    t.print();
    if let Some(ms) = series_for_9 {
        println!("Figure 12 (right): throughput over time, n = 9 (5 s buckets)");
        for (name, m) in ["none", "swap-all", "swap-log"].iter().zip(ms.iter()) {
            let vals: Vec<f64> = m.series.iter().map(|(_, v)| *v).collect();
            println!("  {name:>9} | {}", sparkline(&vals));
        }
        println!("  (real transfers: swap-all {} syncs / {:.2} GB verified / {} proof failures; swap-log {} syncs / {:.2} GB)",
            ms[1].state_syncs,
            ms[1].bytes_synced as f64 / 1e9,
            ms[1].proof_failures,
            ms[2].state_syncs,
            ms[2].bytes_synced as f64 / 1e9,
        );
    }
}

/// Figure 13: sharding with/without the reference committee; abort rate vs
/// Zipf skew.
pub fn fig13(scale: Scale) {
    let shard_counts = scale.pick(&[2usize, 4], &[2, 4, 6, 9, 12]);
    let n = 3; // f = 1 attested committees, as in the paper
    let cells = parallel_map(shard_counts, |&k| {
        let mut with_r = SystemConfig::new(k, n);
        with_r.clients = 4 * k;
        with_r.outstanding = if scale == Scale::Quick { 16 } else { 64 };
        with_r.workload = SystemWorkload::SmallBank { accounts: 20_000, theta: 0.0 };
        with_r.duration = scale.measure();
        with_r.warmup = scale.warmup();
        with_r.batch_size = 30;
        let m_with = run_system(with_r);

        let mut wo = ScaleOutConfig::new(k, n);
        wo.clients_per_shard = 4;
        wo.outstanding = if scale == Scale::Quick { 16 } else { 64 };
        wo.duration = scale.measure();
        wo.warmup = scale.warmup();
        let m_wo = run_scale_out(&wo);
        (m_with, m_wo)
    });
    let mut t = Table::new(
        "Figure 13 (left): Smallbank throughput on cluster (n = 3, f = 1)",
        &["shards", "N", "AHL+ w R (tps)", "AHL+ w/o R (tps)", "abort %", "p50 (ms)", "p99 (ms)"],
    );
    for (k, (with_r, wo)) in cells {
        t.row(vec![
            k.to_string(),
            (k * n).to_string(),
            f1(with_r.tps),
            f1(wo.total_tps),
            f1(100.0 * with_r.abort_rate),
            lat_ms(with_r.latency_p50),
            lat_ms(with_r.latency_p99),
        ]);
    }
    t.print();

    let thetas = scale.pick(&[0.0f64, 0.99, 1.49], &[0.0, 0.49, 0.99, 1.49, 1.99]);
    let cells = parallel_map(thetas, |&theta| {
        let mut cfg = SystemConfig::new(4, n);
        cfg.clients = 8;
        cfg.outstanding = 16;
        // A small hot account pool makes skew-induced conflicts visible.
        cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta };
        cfg.duration = scale.measure();
        cfg.warmup = scale.warmup();
        cfg.batch_size = 30;
        run_system(cfg)
    });
    let mut t = Table::new(
        "Figure 13 (right): abort rate vs Zipf coefficient",
        &["zipf", "abort rate", "tps"],
    );
    for (theta, m) in cells {
        t.row(vec![format!("{theta:.2}"), f3(m.abort_rate), f1(m.tps)]);
    }
    t.print();
}

/// Figure 14: large-scale GCP sharding at 12.5% and 25% adversary.
pub fn fig14(scale: Scale) {
    let lf = LnFact::new(2048);
    let totals = scale.pick(&[162usize, 486], &[162, 324, 486, 648, 810, 972]);
    for (s, label) in [(0.125f64, "12.5%"), (0.25, "25%")] {
        let n = min_committee_size(&lf, 972, s, Resilience::OneHalf, 20.0)
            .expect("committee formable");
        let totals = totals.clone();
        let cells = parallel_map(totals, |&total| {
            let shards = total / n;
            if shards == 0 {
                return (0usize, 0.0);
            }
            let mut cfg = ScaleOutConfig::new(shards, n);
            cfg.net = NetChoice::Gcp { regions: 8 };
            cfg.clients_per_shard = 1;
            cfg.outstanding = 96;
            cfg.duration = scale.measure();
            cfg.warmup = scale.warmup();
            (shards, run_scale_out(&cfg).total_tps)
        });
        let mut t = Table::new(
            &format!("Figure 14: GCP sharding, {label} adversary (n = {n})"),
            &["N", "shards", "tps"],
        );
        for (total, (shards, tps)) in cells {
            t.row(vec![total.to_string(), shards.to_string(), f1(tps)]);
        }
        t.print();
    }
}

/// Figure 15: consensus latency vs N on cluster and GCP.
pub fn fig15(scale: Scale) {
    let ns = scale.pick(&[7usize, 19], &[7, 19, 31, 43, 55, 67, 79]);
    let cells = parallel_map(ns, |&n| {
        let cl: Vec<RunMetrics> = VARIANTS
            .iter()
            .map(|&v| bft_cell(v, n, NetChoice::Cluster, 0, scale, 6))
            .collect();
        let gc = bft_cell(BftVariant::AhlPlus, n, NetChoice::Gcp { regions: 8 }, 0, scale, 6)
            .latency_mean
            .as_secs_f64();
        (cl, gc)
    });
    let mut t = Table::new(
        "Figure 15: mean latency (s) vs N",
        &["N", "HL", "AHL", "AHL+", "AHLR", "AHL+ p50", "AHL+ p99", "AHL+ on GCP"],
    );
    for (n, (cl, gc)) in cells {
        t.row(vec![
            n.to_string(),
            f3(cl[0].latency_mean.as_secs_f64()),
            f3(cl[1].latency_mean.as_secs_f64()),
            f3(cl[2].latency_mean.as_secs_f64()),
            f3(cl[3].latency_mean.as_secs_f64()),
            f3(cl[2].latency_p50.as_secs_f64()),
            f3(cl[2].latency_p99.as_secs_f64()),
            f3(gc),
        ]);
    }
    t.print();
}

/// Figure 16: view changes, normal case and under Byzantine failures.
pub fn fig16(scale: Scale) {
    let ns = scale.pick(&[7usize, 19], &[7, 19, 31, 43, 55, 67, 79]);
    let cells = parallel_map(ns, |&n| {
        VARIANTS.map(|v| bft_cell(v, n, NetChoice::Cluster, 0, scale, 8).view_changes)
    });
    let mut t = Table::new(
        "Figure 16 (left): view changes, normal case",
        &["N", "HL", "AHL", "AHL+", "AHLR"],
    );
    for (n, vc) in cells {
        t.row(vec![
            n.to_string(),
            vc[0].to_string(),
            vc[1].to_string(),
            vc[2].to_string(),
            vc[3].to_string(),
        ]);
    }
    t.print();

    let fs = scale.pick(&[1usize, 5], &[1, 5, 10, 15, 20, 25]);
    let cells = parallel_map(fs, |&f| {
        VARIANTS.map(|v| {
            let n = v.fault_model().committee_for_faults(f);
            bft_cell(v, n, NetChoice::Cluster, f, scale, 8).view_changes
        })
    });
    let mut t = Table::new(
        "Figure 16 (right): view changes under Byzantine failures",
        &["f", "HL", "AHL", "AHL+", "AHLR"],
    );
    for (f, vc) in cells {
        t.row(vec![
            f.to_string(),
            vc[0].to_string(),
            vc[1].to_string(),
            vc[2].to_string(),
            vc[3].to_string(),
        ]);
    }
    t.print();
}

/// Figure 17: consensus vs execution CPU cost per block.
pub fn fig17(scale: Scale) {
    let ns = scale.pick(&[7usize, 19], &[7, 19, 31, 43, 55, 67, 79]);
    let cells = parallel_map(ns, |&n| {
        VARIANTS.map(|v| {
            let m = bft_cell(v, n, NetChoice::Cluster, 0, scale, 10);
            let blocks = m.blocks.max(1) as f64;
            // Total across replicas; normalize per block.
            (m.consensus_cpu_s / blocks, m.exec_cpu_s / blocks)
        })
    });
    let mut t = Table::new(
        "Figure 17: per-block CPU cost (s): consensus / execution",
        &["N", "HL", "AHL", "AHL+", "AHLR"],
    );
    for (n, cs) in cells {
        t.row(vec![
            n.to_string(),
            format!("{:.3}/{:.3}", cs[0].0, cs[0].1),
            format!("{:.3}/{:.3}", cs[1].0, cs[1].1),
            format!("{:.3}/{:.3}", cs[2].0, cs[2].1),
            format!("{:.3}/{:.3}", cs[3].0, cs[3].1),
        ]);
    }
    t.print();
}

/// Figure 18: sharding throughput, KVStore vs Smallbank.
pub fn fig18(scale: Scale) {
    let shard_counts = scale.pick(&[2usize, 4], &[2, 4, 6, 9, 12]);
    let cells = parallel_map(shard_counts, |&k| {
        [ShardBench::SmallBank, ShardBench::KvStore].map(|bench| {
            let mut cfg = ScaleOutConfig::new(k, 3);
            cfg.bench = bench;
            cfg.clients_per_shard = 4;
            cfg.outstanding = if scale == Scale::Quick { 16 } else { 64 };
            cfg.duration = scale.measure();
            cfg.warmup = scale.warmup();
            run_scale_out(&cfg).total_tps
        })
    });
    let mut t = Table::new(
        "Figure 18: sharded throughput, Smallbank vs KVStore (n = 3)",
        &["shards", "N", "Smallbank", "KVStore"],
    );
    for (k, tps) in cells {
        t.row(vec![k.to_string(), (k * 3).to_string(), f1(tps[0]), f1(tps[1])]);
    }
    t.print();
}

/// Figure 19: throughput vs #clients on GCP at two aggregate request rates.
pub fn fig19(scale: Scale) {
    let counts = scale.pick(&[1usize, 8, 32], &[1, 2, 4, 8, 16, 32, 64, 128]);
    for total_rate in [256.0f64, 1024.0] {
        let counts = counts.clone();
        let cells = parallel_map(counts, |&c| {
            ["HL", "AHL+", "AHLR"].map(|name| {
                let v = match name {
                    "HL" => BftVariant::Hl,
                    "AHL+" => BftVariant::AhlPlus,
                    _ => BftVariant::Ahlr,
                };
                let mut exp = ShardExperiment::new(
                    PbftConfig::new(v, 7),
                    Box::new(|client| KvStoreWorkload::single_shard().factory(client)),
                );
                exp.net = NetChoice::Gcp { regions: 4 };
                exp.clients = c;
                exp.client_mode = ClientMode::Open { rate: total_rate / c as f64 };
                exp.duration = scale.measure();
                exp.warmup = scale.warmup();
                run_shard_experiment(exp).tps
            })
        });
        let mut t = Table::new(
            &format!("Figure 19: tps vs #clients on GCP ({total_rate:.0} req/s total, N = 7)"),
            &["clients", "HL", "AHL+", "AHLR"],
        );
        for (c, tps) in cells {
            t.row(vec![c.to_string(), f1(tps[0]), f1(tps[1]), f1(tps[2])]);
        }
        t.print();
    }
}

/// Figure 20: throughput vs #clients on the cluster, Smallbank and KVStore.
pub fn fig20(scale: Scale) {
    let counts = scale.pick(&[1usize, 8, 32], &[1, 2, 4, 8, 16, 32, 64]);
    for (wl, label) in [(ShardBench::SmallBank, "Smallbank"), (ShardBench::KvStore, "KVStore")] {
        let counts = counts.clone();
        let cells = parallel_map(counts, |&c| {
            VARIANTS.map(|v| {
                let factory: Box<dyn Fn(usize) -> ahl_consensus::OpFactory> = match wl {
                    ShardBench::SmallBank => Box::new(|client| {
                        ahl_workload::SmallBankWorkload::paper(10_000, 0.0).factory(client)
                    }),
                    ShardBench::KvStore => {
                        Box::new(|client| KvStoreWorkload::single_shard().factory(client))
                    }
                };
                let mut exp = ShardExperiment::new(PbftConfig::new(v, 7), factory);
                exp.clients = c;
                exp.client_mode = ClientMode::Open { rate: 100.0 };
                exp.duration = scale.measure();
                exp.warmup = scale.warmup();
                if wl == ShardBench::SmallBank {
                    exp.genesis = ahl_workload::SmallBankWorkload::paper(10_000, 0.0).genesis();
                }
                run_shard_experiment(exp).tps
            })
        });
        let mut t = Table::new(
            &format!("Figure 20: tps vs #clients on cluster ({label}, N = 7)"),
            &["clients", "HL", "AHL", "AHL+", "AHLR"],
        );
        for (c, tps) in cells {
            t.row(vec![c.to_string(), f1(tps[0]), f1(tps[1]), f1(tps[2]), f1(tps[3])]);
        }
        t.print();
    }
}

/// Figure 21: PoET vs PoET+ throughput across block sizes and N.
pub fn fig21(scale: Scale) {
    poet_tables(scale, false);
}

/// Figure 22: PoET vs PoET+ stale block rate.
pub fn fig22(scale: Scale) {
    poet_tables(scale, true);
}

fn poet_tables(scale: Scale, stale: bool) {
    let ns = scale.pick(&[8usize, 32], &[2, 8, 32, 128]);
    let sizes: Vec<usize> = vec![2_000_000, 4_000_000, 8_000_000];
    let duration = match scale {
        Scale::Quick => SimDuration::from_secs(600),
        Scale::Full => SimDuration::from_secs(1800),
    };
    let mut inputs = Vec::new();
    for &n in &ns {
        for &size in &sizes {
            inputs.push((n, size));
        }
    }
    let cells = parallel_map(inputs, |&(n, size)| {
        let poet = run_poet(
            &PoetConfig::poet(n, size),
            Box::new(ClusterNetwork::poet_constrained()),
            Some(50e6),
            duration,
            13,
        );
        let plus = run_poet(
            &PoetConfig::poet_plus(n, size),
            Box::new(ClusterNetwork::poet_constrained()),
            Some(50e6),
            duration,
            13,
        );
        (poet, plus)
    });
    let title = if stale {
        "Figure 22: stale block rate (stale / total)"
    } else {
        "Figure 21: PoET vs PoET+ throughput (tps)"
    };
    let mut t = Table::new(title, &["N", "block", "PoET", "PoET+"]);
    for ((n, size), (poet, plus)) in cells {
        let (a, b) = if stale {
            (f3(poet.stale_rate), f3(plus.stale_rate))
        } else {
            (f1(poet.tps), f1(plus.tps))
        };
        t.row(vec![n.to_string(), format!("{}MB", size / 1_000_000), a, b]);
    }
    t.print();
}

// ---------- adversary + overload batteries (new-subsystem experiments) --

/// Byzantine adversary smoke: the scripted-attack matrix over all three
/// BFT protocols plus the cross-shard system under malicious replicas
/// *and* malicious 2PC clients, each cell watched by the global
/// [`ahl_consensus::SafetyChecker`]. Every within-bound cell is **process-fatal** on a
/// safety violation, and the over-threshold canary is process-fatal if
/// the checker does *not* fire — the battery proves itself live. Fixed
/// seeds keep every attack schedule reproducible in CI.
pub fn byzantine(scale: Scale) {
    use ahl_consensus::adversary::{Attack, SafetyChecker, Violation};
    use ahl_consensus::pbft::build_group;
    use ahl_ledger::{kvstore, Op, TxId};
    use ahl_simkit::UniformNetwork;

    let secs = match scale {
        Scale::Quick => 3,
        Scale::Full => 10,
    };
    let factory = || -> ahl_consensus::OpFactory {
        let mut i = 0u64;
        Box::new(move |_rng| {
            i += 1;
            Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 64], 16) }
        })
    };

    let mut t = Table::new(
        "Byzantine adversary matrix (f <= (n-1)/3 unless noted; fixed seeds)",
        &["protocol", "attack", "f", "tps", "commits seen", "violations", "verdict"],
    );
    let mut verify = |proto: &str,
                      attack: Attack,
                      f: usize,
                      over_bound: bool,
                      tps: f64,
                      checker: &SafetyChecker| {
        let violations = checker.violations();
        let forked = violations.iter().any(|v| matches!(v, Violation::ConflictingCommit { .. }));
        if over_bound {
            assert!(
                forked,
                "{proto}/{}: the over-threshold canary must fork — the checker is dead",
                attack.name()
            );
        } else {
            assert!(
                violations.is_empty(),
                "{proto}/{}: SAFETY VIOLATIONS: {violations:?}",
                attack.name()
            );
            assert!(checker.commit_records() > 0, "{proto}/{}: nothing observed", attack.name());
        }
        t.row(vec![
            proto.into(),
            attack.name().into(),
            if over_bound { format!("{f} (over!)") } else { f.to_string() },
            f1(tps),
            checker.commit_records().to_string(),
            violations.len().to_string(),
            if over_bound { "canary fired".into() } else { "safe".into() },
        ]);
    };

    // PBFT cells (+ the over-threshold canary last).
    for (attack, byz, over) in [
        (Attack::Equivocate, vec![0usize], false),
        (Attack::WithholdVotes, vec![3], false),
        (Attack::StaleReplay, vec![3], false),
        (Attack::BogusCheckpoint, vec![3], false),
        (Attack::Equivocate, vec![0, 3], true),
    ] {
        let checker = SafetyChecker::new();
        let mut cfg = PbftConfig::new(BftVariant::Hl, 4);
        cfg.byzantine = byz.len();
        let f = byz.len();
        cfg.byzantine_set = Some(byz);
        cfg.attack = attack;
        cfg.safety = Some(checker.clone());
        cfg.batch_size = 8;
        cfg.checkpoint_interval = 32;
        cfg.vc_timeout = SimDuration::from_millis(400);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 2026);
        let stop = SimTime::ZERO + SimDuration::from_secs(secs);
        let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, factory());
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(3));
        let tps = sim.stats().counter(stat::TXN_COMMITTED) as f64 / secs as f64;
        verify("PBFT(HL)", attack, f, over, tps, &checker);
    }

    // Tendermint and IBFT cells.
    for attack in Attack::ALL {
        let checker = SafetyChecker::new();
        let mut cfg = TmConfig::new(4);
        cfg.byzantine = 1;
        cfg.attack = attack;
        cfg.safety = Some(checker.clone());
        cfg.timeout_commit = SimDuration::from_millis(200);
        cfg.timeout_round = SimDuration::from_millis(800);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_tm_group(&cfg, net, Some(1e9), 2027);
        let stop = SimTime::ZERO + SimDuration::from_secs(secs.max(5));
        let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, factory());
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(3));
        let tps = sim.stats().counter(stat::TXN_COMMITTED) as f64 / secs.max(5) as f64;
        verify("Tendermint", attack, 1, false, tps, &checker);
    }
    for attack in Attack::ALL {
        let checker = SafetyChecker::new();
        let mut cfg = IbftConfig::new(4);
        cfg.byzantine = 1;
        cfg.attack = attack;
        cfg.safety = Some(checker.clone());
        cfg.block_period = SimDuration::from_millis(200);
        cfg.round_timeout = SimDuration::from_millis(800);
        let net = Box::new(UniformNetwork::new(SimDuration::from_micros(300)));
        let (mut sim, group) = build_ibft_group(&cfg, net, Some(1e9), 2028);
        let stop = SimTime::ZERO + SimDuration::from_secs(secs.max(5));
        let client = OpenLoopClient::new(group, SimDuration::from_millis(3), stop, factory());
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
        sim.run_until(stop + SimDuration::from_secs(3));
        let tps = sim.stats().counter(stat::TXN_COMMITTED) as f64 / secs.max(5) as f64;
        verify("IBFT", attack, 1, false, tps, &checker);
    }
    t.print();

    // Cross-shard 2PC under Byzantine replicas in every committee plus
    // Byzantine client drivers: atomicity, conservation, exactly-once.
    let checker = SafetyChecker::new();
    let mut cfg = SystemConfig::new(3, 4);
    cfg.clients = 6;
    cfg.malicious_clients = 2;
    cfg.outstanding = 12;
    cfg.byzantine = 1;
    cfg.attack = Attack::WithholdVotes;
    cfg.safety = Some(checker.clone());
    cfg.workload = SystemWorkload::SmallBank { accounts: 1_000, theta: 0.5 };
    cfg.duration = scale.measure();
    cfg.warmup = scale.warmup();
    cfg.batch_size = 20;
    let m = run_system(cfg);
    let mut t2 = Table::new(
        "Cross-shard 2PC under attack (3 shards x 4 + reference, 1 Byzantine replica each, 2 Byzantine clients)",
        &["tps", "committed", "abort rate", "cross-shard", "violations", "conserved drift"],
    );
    let initial: i64 = 2 * 1_000_000 * 1_000;
    let drift = m.final_balance.map(|b| (b - initial).abs()).unwrap_or(i64::MAX);
    assert!(
        checker.violations().is_empty(),
        "2PC SAFETY VIOLATIONS: {:?}",
        checker.violations()
    );
    assert!(m.committed > 0, "the attacked system must keep committing");
    let bound = 100 * (6 * 12) as i64;
    assert!(drift <= bound, "conservation violated under attack: drift {drift}");
    t2.row(vec![
        f1(m.tps),
        m.committed.to_string(),
        f3(m.abort_rate),
        f3(m.cross_shard_fraction),
        m.safety_violations.to_string(),
        drift.to_string(),
    ]);
    t2.print();
    println!("  every cell verified process-fatally; canary proved the checker live");
}

/// Overload sweep: fixed offered load (8 closed-loop cross-shard clients
/// × 64 outstanding ≈ 512 open transactions against 2 shards of 3), with
/// per-replica pool capacity swept from "effectively unbounded" down to a
/// small fraction of the offered load. Demonstrates that admission
/// control keeps the system live under overload: rejections engage and
/// grow, committed throughput degrades gracefully instead of deadlocking,
/// and balance conservation holds at every operating point.
pub fn overload(scale: Scale) {
    let caps: Vec<usize> =
        scale.pick(&[100_000usize, 256, 48], &[100_000, 1024, 256, 96, 48, 24]);
    let cells = parallel_map(caps, |&cap| {
        let mut cfg = SystemConfig::new(2, 3);
        cfg.clients = 8;
        cfg.outstanding = 64;
        cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta: 0.0 };
        cfg.duration = scale.measure();
        cfg.warmup = scale.warmup();
        cfg.batch_size = 20;
        cfg.mempool = ahl_mempool::MempoolConfig::new(cap);
        run_system(cfg)
    });
    let baseline = cells.first().map(|(_, m)| m.tps).unwrap_or(0.0);
    let base_balance = cells.first().and_then(|(_, m)| m.final_balance);
    let mut t = Table::new(
        "Overload: offered load past pool capacity (2 shards x 3, 512 open txns)",
        &[
            "pool cap",
            "tps",
            "vs base",
            "rejected",
            "pool rej",
            "stalled",
            "lat (ms)",
            "p50",
            "p99",
            "p999",
            "conserved",
        ],
    );
    for (cap, m) in cells {
        let conserved = m.final_balance.is_some() && m.final_balance == base_balance;
        t.row(vec![
            if cap >= 100_000 { "unbounded".into() } else { cap.to_string() },
            f1(m.tps),
            f3(m.tps / baseline.max(1e-9)),
            m.rejected.to_string(),
            m.pool_rejections.to_string(),
            m.stalled.to_string(),
            lat_ms(m.latency_mean),
            lat_ms(m.latency_p50),
            lat_ms(m.latency_p99),
            lat_ms(m.latency_p999),
            if conserved { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();

    // Second axis: goodput vs *offered load* for both backpressure
    // policies against one fixed, deliberately small pool. Fixed backoff
    // keeps offering the configured window and eats rejections forever;
    // pool-aware AIMD halves its window per rejection and creeps back up,
    // converging onto what the pool admits — goodput stays comparable
    // while rejection churn collapses.
    let offered: Vec<usize> = scale.pick(&[16usize, 64], &[8, 16, 32, 64, 128]);
    let grid: Vec<(usize, RateControl)> = offered
        .iter()
        .flat_map(|&o| [(o, RateControl::Fixed), (o, RateControl::Aimd)])
        .collect();
    let cells = parallel_map(grid, |&(outstanding, rc)| {
        let mut cfg = SystemConfig::new(2, 3);
        cfg.clients = 8;
        cfg.outstanding = outstanding;
        cfg.workload = SystemWorkload::SmallBank { accounts: 2_000, theta: 0.0 };
        cfg.duration = scale.measure();
        cfg.warmup = scale.warmup();
        cfg.batch_size = 20;
        cfg.mempool = ahl_mempool::MempoolConfig::new(48);
        cfg.rate_control = rc;
        run_system(cfg)
    });
    let mut t = Table::new(
        "Overload: goodput vs offered load, fixed backoff vs pool-aware AIMD (pool cap 48)",
        &["open txns", "policy", "goodput tps", "rejected", "stalled", "lat (ms)", "p99", "conserved"],
    );
    let mut aimd_ok = true;
    let mut by_load: std::collections::HashMap<usize, (f64, f64, u64, u64)> =
        std::collections::HashMap::new();
    for ((outstanding, rc), m) in cells {
        let conserved = m.final_balance.is_some() && m.final_balance == base_balance;
        // Conservation is the strongest invariant each cell computes —
        // a violation must fail the process, not just print "NO".
        aimd_ok &= conserved;
        let e = by_load.entry(outstanding).or_default();
        match rc {
            RateControl::Fixed => {
                e.0 = m.tps;
                e.2 = m.rejected;
            }
            RateControl::Aimd => {
                e.1 = m.tps;
                e.3 = m.rejected;
            }
        }
        t.row(vec![
            (8 * outstanding).to_string(),
            format!("{rc:?}"),
            f1(m.tps),
            m.rejected.to_string(),
            m.stalled.to_string(),
            lat_ms(m.latency_mean),
            lat_ms(m.latency_p99),
            if conserved { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    for (load, (fixed_tps, aimd_tps, fixed_rej, aimd_rej)) in &by_load {
        // Where overload actually bites (rejections under fixed backoff),
        // AIMD must not lose meaningful goodput and must cut rejections
        // (deep overload typically *gains* goodput: less retry churn).
        if *fixed_rej > 100 {
            aimd_ok &= *aimd_tps > 0.75 * fixed_tps;
            aimd_ok &= *aimd_rej * 2 < *fixed_rej;
            println!(
                "  aimd-vs-fixed @ {} open txns: goodput {:.1} vs {:.1} tps, rejected {} vs {}",
                8 * load, aimd_tps, fixed_tps, aimd_rej, fixed_rej
            );
        }
    }
    assert!(aimd_ok, "overload: AIMD lost goodput or failed to cut rejections — see table");
}

// ---------- state-sync sweep (store-subsystem experiment) ----------

/// Transfer mode of one `statesync` cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SyncMode {
    /// Diff sync disabled: the restarted replica re-fetches every chunk.
    Full,
    /// Diff sync enabled; a churn client rewrites `churn_keys` distinct
    /// bulk-state keys while the replica is down, so the diff covers about
    /// that many chunks (plus the account chunks the payment traffic
    /// touches) — the transfer is O(changed keys), not O(state).
    Diff {
        churn_keys: usize,
    },
}

impl SyncMode {
    fn label(self) -> String {
        match self {
            SyncMode::Full => "full".into(),
            SyncMode::Diff { churn_keys } => format!("diff/{churn_keys}"),
        }
    }
}

/// One `statesync` cell: a single AHL+ committee under steady load; one
/// replica crashes at t = 20 s, stays dark until t = 36 s (twice the
/// checkpoint interval — its block tail ages out of peers' retention), and
/// restarts from its durable checkpoint. Recovery runs through the
/// certificate-anchored chunk protocol: a full transfer, or — when diff
/// sync is on and peers still retain the crashed node's last certified
/// root in their snapshot windows — only the chunks that changed while it
/// was away. The cell reports how much it transferred, how long recovery
/// took, and whether it rejoined with intact state.
pub(crate) struct StatesyncCell {
    pub(crate) syncs: u64,
    pub(crate) diff_syncs: u64,
    pub(crate) chunks_served: u64,
    pub(crate) gb_synced: f64,
    pub(crate) proof_failures: u64,
    pub(crate) sync_secs: f64,
    pub(crate) caught_up: bool,
    pub(crate) balance_ok: bool,
    pub(crate) tps: f64,
}

pub(crate) fn statesync_cell(
    pad_keys: usize,
    pad_bytes: u64,
    chunk_target: usize,
    mode: SyncMode,
    seed: u64,
) -> StatesyncCell {
    use ahl_consensus::common::{CryptoMode, OpFactory};
    use ahl_consensus::harness::ControlScript;
    use ahl_consensus::pbft::{build_group, PbftMsg, Replica};
    use ahl_ledger::{Mutation, Op, StateOp, TxId, Value};
    use ahl_workload::SmallBankWorkload;

    // Few accounts: payment traffic dirties a handful of chunks, so the
    // incremental transfer is dominated by the *churned* bulk state — the
    // quantity the diff axis controls.
    const ACCOUNTS: usize = 4;
    let n = 5;
    let mut pbft = PbftConfig::new(BftVariant::AhlPlus, n);
    pbft.crypto = CryptoMode::Real;
    pbft.batch_size = 32;
    pbft.batch_timeout = SimDuration::from_millis(10);
    // ≈8 s between checkpoints at this block rate. The crashed replica is
    // down for two intervals, so its tail is gone and recovery must be
    // chunked; the 8-snapshot retention window still covers its durable
    // root, so diff mode finds an anchor.
    pbft.checkpoint_interval = 800;
    pbft.sync_chunk_target = chunk_target;
    pbft.diff_sync = !matches!(mode, SyncMode::Full);

    let mut genesis = SmallBankWorkload::paper(ACCOUNTS, 0.0).genesis();
    let expected_balance: i64 = genesis
        .iter()
        .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
        .filter_map(|(_, v)| v.as_int())
        .sum();
    for i in 0..pad_keys {
        genesis.push((format!("blob_{i}"), Value::Opaque { size: pad_bytes, tag: i as u64 }));
    }

    let (mut sim, group) =
        build_group(&pbft, Box::new(ClusterNetwork::new()), Some(1e9), &genesis, seed);
    let stop = SimTime::ZERO + SimDuration::from_secs(60);
    for c in 0..2 {
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_millis(5),
            stop,
            SmallBankWorkload::paper(ACCOUNTS, 0.0).factory(c),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
    }
    // Bulk-state churn: rewrite `churn_keys` distinct blob keys round-robin
    // (20 writes/s — every key in the set is touched during the 16 s the
    // replica is down, and no key outside it).
    let churn_keys = match mode {
        SyncMode::Full => 4,
        SyncMode::Diff { churn_keys } => churn_keys.clamp(1, pad_keys),
    };
    let mut i = 0u64;
    let churn: OpFactory = Box::new(move |_rng| {
        i += 1;
        Op::Direct {
            txid: TxId(3_000_000_000 + i),
            op: StateOp {
                conditions: vec![],
                mutations: vec![(
                    format!("blob_{}", i % churn_keys as u64),
                    Mutation::Set(Value::Opaque { size: pad_bytes, tag: 1 << 32 | i }),
                )],
            },
        }
    });
    let churn_client =
        OpenLoopClient::new(group.clone(), SimDuration::from_millis(50), stop, churn);
    sim.add_actor(Box::new(churn_client), QueueConfig::unbounded());
    // Crash at 20 s (durable checkpoint ≈ the 16 s certificate), dark for
    // two checkpoint intervals, restart at 36 s.
    let crashed = group[3];
    let script = ControlScript::new(vec![
        (SimDuration::from_secs(20), crashed, PbftMsg::Crash),
        (SimDuration::from_secs(36), crashed, PbftMsg::Restart),
    ]);
    sim.add_actor(Box::new(script), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(15));

    let replica = |id: usize| {
        sim.actor(id)
            .as_any()
            .and_then(|a| a.downcast_ref::<Replica>())
            .expect("replica actor")
    };
    let restarted = replica(crashed);
    let max_exec = group.iter().map(|&id| replica(id).exec_seq()).max().unwrap_or(0);
    let balance: i64 = restarted
        .state()
        .iter()
        .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
        .filter_map(|(_, v)| v.as_int())
        .sum();
    let stats = sim.stats();
    StatesyncCell {
        syncs: stats.counter(stat::SYNC_COMPLETED),
        diff_syncs: stats.counter(stat::SYNC_DIFFS),
        chunks_served: stats.counter(stat::SYNC_CHUNKS_SERVED),
        gb_synced: stats.counter(stat::SYNC_BYTES) as f64 / 1e9,
        proof_failures: stats.counter(stat::SYNC_PROOF_FAILURES),
        sync_secs: stats
            .histogram(stat::SYNC_DURATION)
            .map(|h| h.mean().as_secs_f64())
            .unwrap_or(0.0),
        caught_up: restarted.exec_seq() + 16 >= max_exec && max_exec > 0,
        balance_ok: balance == expected_balance,
        tps: stats.rate_in_window(stat::COMMIT_SERIES, SimTime::ZERO, stop),
    }
}

/// State-sync sweep: state size × chunk size × transfer mode. One replica
/// of a 5-node AHL+ committee crashes at t = 20 s, restarts at t = 36 s,
/// and must recover through the certificate-anchored chunk protocol while
/// the committee keeps committing. Every cell must show zero proof
/// failures and a conserved ledger. The full-mode cells expose the
/// chunk-size trade-off (fewer, larger chunks amortize round trips;
/// smaller chunks retransmit less on loss); the diff-mode cells show
/// incremental sync transferring O(changed keys): with little churn while
/// the replica was down, the transfer is a small fraction of the state,
/// and it grows with the churned-key count — never past the full
/// transfer.
pub fn statesync(scale: Scale) {
    let states: Vec<(usize, u64)> = scale.pick(
        &[(500usize, 200_000u64), (1_000, 500_000)],
        &[(500, 200_000), (1_000, 500_000), (2_000, 1_000_000)],
    );
    let chunk_targets: Vec<usize> = scale.pick(&[16usize, 256], &[16, 128, 1024]);
    let diff_chunk = chunk_targets.iter().copied().min().expect("non-empty");
    let mut grid: Vec<(usize, u64, usize, SyncMode)> = states
        .iter()
        .flat_map(|&(k, b)| {
            chunk_targets.iter().map(move |&c| (k, b, c, SyncMode::Full))
        })
        .collect();
    for &(k, b) in &states {
        grid.push((k, b, diff_chunk, SyncMode::Diff { churn_keys: 4 }));
        grid.push((k, b, diff_chunk, SyncMode::Diff { churn_keys: k / 2 }));
    }
    let cells = parallel_map(grid.clone(), |&(keys, bytes, chunk, mode)| {
        statesync_cell(keys, bytes, chunk, mode, 42)
    });
    let mut t = Table::new(
        "State sync: crashed replica recovery via cert + verified chunks (n = 5, down 16 s)",
        &[
            "state",
            "chunk tgt",
            "mode",
            "syncs",
            "diff",
            "chunks",
            "GB synced",
            "proof fails",
            "sync (s)",
            "tps",
            "caught up",
            "conserved",
        ],
    );
    let mut all_ok = true;
    let mut by_cell: std::collections::HashMap<(usize, usize, String), f64> =
        std::collections::HashMap::new();
    for ((keys, bytes, chunk, mode), m) in &cells {
        all_ok &= m.caught_up && m.balance_ok && m.proof_failures == 0 && m.syncs >= 1;
        if matches!(mode, SyncMode::Diff { .. }) {
            all_ok &= m.diff_syncs >= 1;
        }
        by_cell.insert((*keys, *chunk, mode.label()), m.gb_synced);
        t.row(vec![
            format!("{:.2}GB", *keys as f64 * *bytes as f64 / 1e9),
            chunk.to_string(),
            mode.label(),
            m.syncs.to_string(),
            m.diff_syncs.to_string(),
            m.chunks_served.to_string(),
            f3(m.gb_synced),
            m.proof_failures.to_string(),
            f3(m.sync_secs),
            f1(m.tps),
            if m.caught_up { "yes".into() } else { "NO".into() },
            if m.balance_ok { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    // Diff sync must transfer O(changed keys): with only a few churned
    // keys, well under half of the matching full transfer; and the diff
    // volume grows with churn but never exceeds full.
    for &(keys, _) in &states {
        let full = by_cell[&(keys, diff_chunk, "full".to_string())];
        let low = by_cell[&(keys, diff_chunk, format!("diff/{}", 4))];
        let high = by_cell[&(keys, diff_chunk, format!("diff/{}", keys / 2))];
        all_ok &= low * 2.0 < full;
        all_ok &= low <= high && high <= full * 1.05;
        println!(
            "  diff-vs-full @ {keys} keys: full {:.3} GB, diff/4 {:.3} GB, diff/{} {:.3} GB",
            full,
            low,
            keys / 2,
            high
        );
    }
    // The CI smoke run relies on this: a cell that fails to recover, loses
    // funds, sees a proof failure, or whose diff transfer is not
    // O(changed keys) must fail the process, not just print.
    assert!(all_ok, "statesync: some cell failed recovery/verification — see table above");
}

// ---------- crash-kill recovery smoke (wal-subsystem experiment) ----------

pub(crate) struct RecoveryCell {
    pub(crate) io_crashes: u64,
    pub(crate) wal_batches: u64,
    pub(crate) checkpoints: u64,
    pub(crate) pages_written: u64,
    pub(crate) pages_shared: u64,
    pub(crate) replayed: u64,
    pub(crate) diff_syncs: u64,
    pub(crate) proof_failures: u64,
    pub(crate) replay_mismatches: u64,
    pub(crate) committed: u64,
    pub(crate) recovered: bool,
    pub(crate) conserved: bool,
}

/// One `recovery` cell: a 5-node AHL+ committee journaling every executed
/// batch to a real per-node WAL and persisting certified checkpoints as
/// page-backed snapshots, with a SIGKILL-style crash injected at write
/// site `kill_site` (`None` = a scripted whole-node crash instead). All
/// five nodes are restarted mid-run and must recover by *reopening their
/// node directories* — manifest, WAL-tail replay, then (diff) sync.
pub(crate) fn recovery_cell(kill_site: Option<u64>, seed: u64) -> RecoveryCell {
    use ahl_consensus::common::CryptoMode;
    use ahl_consensus::harness::ControlScript;
    use ahl_consensus::pbft::{build_group, PbftMsg, Replica};
    use ahl_ledger::Value;
    use ahl_wal::TempDir;
    use ahl_workload::SmallBankWorkload;

    const ACCOUNTS: usize = 8;
    let dir = TempDir::new("recovery-exp");
    let n = 5;
    let mut pbft = PbftConfig::new(BftVariant::AhlPlus, n);
    pbft.crypto = CryptoMode::Real;
    pbft.batch_size = 16;
    pbft.batch_timeout = SimDuration::from_millis(5);
    pbft.checkpoint_interval = 100;
    pbft.sync_chunk_target = 64;
    pbft.data_dir = Some(dir.path().to_path_buf());
    if let Some(site) = kill_site {
        pbft.wal.kill.arm(site);
    }
    let mut genesis = SmallBankWorkload::paper(ACCOUNTS, 0.0).genesis();
    let expected_balance: i64 = genesis
        .iter()
        .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
        .filter_map(|(_, v)| v.as_int())
        .sum();
    for i in 0..120 {
        genesis.push((format!("blob_{i}"), Value::Opaque { size: 40_000, tag: i as u64 }));
    }
    let (mut sim, group) =
        build_group(&pbft, Box::new(ClusterNetwork::new()), Some(1e9), &genesis, seed);
    let stop = SimTime::ZERO + SimDuration::from_secs(8);
    let client = OpenLoopClient::new(
        group.clone(),
        SimDuration::from_millis(2),
        stop,
        SmallBankWorkload::paper(ACCOUNTS, 0.0).factory(0),
    );
    sim.add_actor(Box::new(client), QueueConfig::unbounded());
    let mut schedule: Vec<(SimDuration, usize, PbftMsg)> = Vec::new();
    if kill_site.is_none() {
        // No injected I/O crash: kill one node the scripted way instead.
        schedule.push((SimDuration::from_secs(2), group[3], PbftMsg::Crash));
    }
    // Restart everyone at t = 5 s: whichever node crashed (injected or
    // scripted) recovers from its reopened directory; healthy nodes
    // reopen theirs too.
    for &id in &group {
        schedule.push((SimDuration::from_secs(5), id, PbftMsg::Restart));
    }
    sim.add_actor(Box::new(ControlScript::new(schedule)), QueueConfig::unbounded());
    sim.run_until(stop + SimDuration::from_secs(4));

    let replica = |id: usize| {
        sim.actor(id)
            .as_any()
            .and_then(|a| a.downcast_ref::<Replica>())
            .expect("replica actor")
    };
    let max_exec = group.iter().map(|&id| replica(id).exec_seq()).max().unwrap_or(0);
    let top: Vec<&Replica> =
        group.iter().map(|&id| replica(id)).filter(|r| r.exec_seq() == max_exec).collect();
    let digest_agree = top
        .iter()
        .all(|r| r.state().state_digest() == top[0].state().state_digest());
    let conserved = top.iter().all(|r| {
        let balance: i64 = r
            .state()
            .iter()
            .filter(|(k, _)| k.starts_with("ck_") || k.starts_with("sv_"))
            .filter_map(|(_, v)| v.as_int())
            .sum();
        balance == expected_balance
    });
    let stats = sim.stats();
    RecoveryCell {
        io_crashes: stats.counter(stat::WAL_IO_CRASHES),
        wal_batches: stats.counter(stat::WAL_BATCHES),
        checkpoints: stats.counter(stat::WAL_CHECKPOINTS),
        pages_written: stats.counter(stat::WAL_PAGES_WRITTEN),
        pages_shared: stats.counter(stat::WAL_PAGES_SHARED),
        replayed: stats.counter(stat::WAL_REPLAYED),
        diff_syncs: stats.counter(stat::SYNC_DIFFS),
        proof_failures: stats.counter(stat::SYNC_PROOF_FAILURES),
        replay_mismatches: stats.counter(stat::WAL_REPLAY_MISMATCHES),
        committed: stats.counter(stat::TXN_COMMITTED),
        recovered: max_exec > 0 && top.len() >= 2 && digest_agree,
        conserved,
    }
}

/// Crash-kill recovery smoke: real on-disk WAL + page-store persistence
/// under a live committee, with crashes injected at sampled durable-write
/// sites (plus one scripted whole-node crash). Every cell must recover to
/// agreeing certified state with zero proof failures and zero replay
/// mismatches — process-fatally, which is what the CI recovery job runs.
pub fn recovery(scale: Scale) {
    let sites: Vec<Option<u64>> = scale.pick(
        &[None, Some(120)],
        &[None, Some(0), Some(120), Some(800), Some(2500)],
    );
    let cells = parallel_map(sites, |&site| recovery_cell(site, 42));
    let mut t = Table::new(
        "Crash-kill recovery: per-node WAL + page checkpoints, restart-from-disk (n = 5)",
        &[
            "kill",
            "io crashes",
            "wal batches",
            "ckpts",
            "pages w",
            "pages shared",
            "replayed",
            "diffs",
            "proof fails",
            "recovered",
            "conserved",
        ],
    );
    let mut all_ok = true;
    for (site, m) in &cells {
        let label = match site {
            None => "scripted".to_string(),
            Some(s) => format!("site {s}"),
        };
        all_ok &= m.recovered && m.conserved;
        all_ok &= m.proof_failures == 0 && m.replay_mismatches == 0;
        all_ok &= m.wal_batches > 0 && m.checkpoints > 0 && m.pages_shared > 0;
        all_ok &= m.replayed > 0; // recovery really went through the WAL
        all_ok &= m.committed > 0;
        if site.is_some() {
            all_ok &= m.io_crashes == 1;
        }
        t.row(vec![
            label,
            m.io_crashes.to_string(),
            m.wal_batches.to_string(),
            m.checkpoints.to_string(),
            m.pages_written.to_string(),
            m.pages_shared.to_string(),
            m.replayed.to_string(),
            m.diff_syncs.to_string(),
            m.proof_failures.to_string(),
            if m.recovered { "yes".into() } else { "NO".into() },
            if m.conserved { "yes".into() } else { "NO".into() },
        ]);
    }
    t.print();
    assert!(all_ok, "recovery: some cell failed to recover cleanly — see table above");
}

/// `parexec`: the `exec_workers` sweep. Runs the same small sharded
/// system at several worker counts and verifies the engine's contract
/// end-to-end: every logical metric (commits, aborts, latency, the
/// conservation audit, safety/liveness counts) must be identical in every
/// cell — worker threads change host wall-clock only, never simulated
/// outcomes. The printed host-time column is where the speedup shows up.
pub fn parexec(scale: Scale) {
    let workers = scale.pick(&[1usize, 4], &[1, 2, 4, 8]);
    let make = move || {
        let mut cfg = SystemConfig::new(2, 4);
        cfg.workload = SystemWorkload::SmallBank { accounts: 5_000, theta: 0.0 };
        cfg.clients = 4;
        cfg.outstanding = 32;
        cfg.duration = match scale {
            Scale::Quick => SimDuration::from_secs(4),
            Scale::Full => SimDuration::from_secs(12),
        };
        cfg.warmup = SimDuration::from_secs(1);
        cfg.seed = 11;
        cfg
    };
    let mut rows = Vec::new();
    let mut host = Vec::new();
    for &w in &workers {
        let started = std::time::Instant::now();
        let mut cells = ahl_core::run_exec_sweep(make, &[w]);
        host.push(started.elapsed().as_secs_f64());
        rows.push(cells.remove(0));
    }
    let mut t = Table::new(
        "parexec: exec_workers sweep (identical results, host time varies)",
        &["workers", "tps", "committed", "aborted", "p50 lat", "p99 lat", "host s"],
    );
    for (row, h) in rows.iter().zip(&host) {
        t.row(vec![
            row.workers.to_string(),
            f1(row.metrics.tps),
            row.metrics.committed.to_string(),
            row.metrics.aborted.to_string(),
            lat_ms(row.metrics.latency_p50),
            lat_ms(row.metrics.latency_p99),
            format!("{h:.2}"),
        ]);
    }
    t.print();
    assert!(rows[0].metrics.committed > 0, "parexec sweep committed nothing");
    assert!(
        ahl_core::sweep_cells_identical(&rows),
        "exec_workers leaked into simulated results — determinism broken"
    );
    println!("  all {} cells byte-identical in logical metrics ✓", rows.len());
}

// ---------- bounded-disk soak (storage-subsystem experiment) ----------

/// Knobs for one [`soak_cell`] run. Everything is deterministic: the key
/// sequence, the values, the kill site, and the working set all derive
/// from the parameters, so a cell is byte-reproducible.
pub(crate) struct SoakParams {
    /// Size of the live key set (steady state).
    pub(crate) live_keys: u64,
    /// Churn rounds; each round ends in a durable checkpoint.
    pub(crate) rounds: u64,
    /// Keys overwritten per round (a sliding window over the live set).
    pub(crate) churn_per_round: u64,
    /// Payload bytes per value (leaf page weight).
    pub(crate) value_bytes: usize,
    /// Round at which a crash is injected *inside* a forced GC pass,
    /// followed by a reopen-and-continue restart.
    pub(crate) kill_round: u64,
    /// Byte budget for the lazy page cache at reopen.
    pub(crate) cache_bytes: u64,
    /// Keys read through the lazy snapshot after the final reopen.
    pub(crate) working_set: u64,
}

impl SoakParams {
    pub(crate) fn for_scale(scale: Scale) -> SoakParams {
        match scale {
            Scale::Quick => SoakParams {
                live_keys: 2_000,
                rounds: 12,
                churn_per_round: 500,
                value_bytes: 64,
                kill_round: 8,
                cache_bytes: 64 << 10,
                working_set: 300,
            },
            Scale::Full => SoakParams {
                live_keys: 50_000,
                rounds: 100,
                churn_per_round: 20_000,
                value_bytes: 256,
                kill_round: 60,
                cache_bytes: 1 << 20,
                working_set: 2_000,
            },
        }
    }
}

pub(crate) struct SoakCell {
    pub(crate) keys_churned: u64,
    pub(crate) bytes_churned: u64,
    pub(crate) peak_disk_bytes: u64,
    pub(crate) final_disk_bytes: u64,
    pub(crate) disk_cap_bytes: u64,
    pub(crate) gc: ahl_wal::GcStats,
    pub(crate) retention_unlinked: u64,
    pub(crate) retention_bytes: u64,
    pub(crate) recovered_mid_gc: bool,
    pub(crate) reopen_indexed: u64,
    pub(crate) reopen_scanned: u64,
    pub(crate) lazy_misses: u64,
    pub(crate) lazy_hits: u64,
    pub(crate) cache_resident_bytes: u64,
    pub(crate) cache_evictions: u64,
    pub(crate) final_page_count: u64,
    pub(crate) reads_ok: bool,
}

/// One bounded-disk soak cell: sustained overwrite churn against a real
/// node directory, a durable checkpoint (pages → sync → manifest → WAL
/// compaction + retention → page GC) every round, one SIGKILL-style crash
/// injected *mid-GC* with a reopen-and-continue restart, and a final
/// cold reopen whose reads go through the lazy, byte-bounded page cache
/// instead of materializing the tree.
pub(crate) fn soak_cell(p: &SoakParams) -> SoakCell {
    use ahl_ledger::persist::open_snapshot_lazy;
    use ahl_ledger::{StateSidecar, Value};
    use ahl_store::SparseMerkleTree;
    use ahl_wal::{open_node_dir, write_manifest, GcStats, Manifest, TempDir, WalConfig, WalStats};

    let key = |i: u64| format!("soak-key-{i:08}");
    // Deterministic value of key `i` as of round `r` (distinct per round,
    // so every overwrite really deadens the previous leaf page).
    let val = |r: u64, i: u64| -> Value {
        let h = ahl_crypto::sha256_parts(&[&r.to_be_bytes()[..], &i.to_be_bytes()[..]]);
        let mut b = vec![0u8; p.value_bytes];
        for (dst, src) in b.iter_mut().zip(h.0.iter().cycle()) {
            *dst = *src;
        }
        Value::Bytes(b)
    };
    // Round `r` overwrites the churn-sized cyclic window starting at
    // `r * churn` — the last round that touched key `i` is therefore
    // recomputable, which is what the read-back verification needs.
    let touched = |r: u64, i: u64| {
        (i + p.live_keys - (r * p.churn_per_round) % p.live_keys) % p.live_keys
            < p.churn_per_round
    };
    let last_round = |i: u64| (1..=p.rounds).rev().find(|&r| touched(r, i)).unwrap_or(0);

    // Rough on-disk weight of one live key (leaf frame + its share of
    // branch frames + framing overhead) — sizes the segment/GC/cap knobs
    // relative to the live set instead of hard-coding byte counts.
    let per_key = p.value_bytes as u64 + 240;
    let live_est = p.live_keys * per_key;
    let cfg = WalConfig {
        segment_bytes: (live_est / 8).max(32 << 10),
        gc_trigger_bytes: live_est * 2,
        gc_live_frac: 0.5,
        retain_wal_segments: 1,
        ..WalConfig::default()
    };
    // The bounded-disk acceptance cap: trigger level plus the churn that
    // can land before the next checkpoint-driven collection.
    let disk_cap = live_est * 8;

    let dir = TempDir::new("soak-exp");
    let mut node = open_node_dir(dir.path(), &cfg).expect("open node dir");
    let mut tree: SparseMerkleTree<Value> = SparseMerkleTree::new();
    for i in 0..p.live_keys {
        tree.insert(&key(i), val(0, i));
    }

    let mut keys_churned = 0u64;
    let mut bytes_churned = 0u64;
    let mut peak_disk = 0u64;
    let mut recovered_mid_gc = false;
    // GC totals and WAL retention stats reset when the directory reopens
    // mid-run, so accumulate across generations.
    let mut gc_acc = GcStats::default();
    let mut ret_acc = WalStats::default();

    for r in 1..=p.rounds {
        for j in 0..p.churn_per_round {
            let i = ((r * p.churn_per_round) % p.live_keys + j) % p.live_keys;
            tree.insert(&key(i), val(r, i));
            keys_churned += 1;
            node.wal.append(format!("churn r{r} j{j}").into_bytes());
        }
        node.wal.commit().expect("wal commit");
        let stats = node.pages.persist_tree(&tree).expect("persist");
        bytes_churned += stats.bytes_written;
        node.pages.sync().expect("page sync");
        let root = tree.root_hash();
        write_manifest(dir.path(), &Manifest { seq: r, root, meta: vec![] }, &cfg.kill)
            .expect("manifest");
        // Space reclamation strictly after the manifest is durable.
        node.wal.rotate_keep(2).expect("rotate");
        if r == p.kill_round {
            // Force a collection with the kill switch armed so the crash
            // lands inside GC (mid-copy or mid-sweep) — the hardest spot:
            // some segments are gone, some live pages exist twice.
            cfg.kill.arm(1);
            let crashed = node.pages.gc(&[root]).is_err();
            cfg.kill.disarm();
            gc_acc.absorb(&node.pages.gc_totals());
            ret_acc.retention_unlinked += node.wal.stats().retention_unlinked;
            ret_acc.retention_bytes += node.wal.stats().retention_bytes;
            // "SIGKILL": drop every handle, reopen the directory, and
            // demand the durable checkpoint published just before the
            // crash anchors recovery.
            node = open_node_dir(dir.path(), &cfg).expect("reopen after mid-GC crash");
            recovered_mid_gc = crashed
                && node.manifest.as_ref().is_some_and(|m| m.seq == r && m.root == root);
        } else {
            node.pages.maybe_gc(&[root]).expect("gc");
        }
        peak_disk = peak_disk.max(node.pages.total_bytes() + node.wal.disk_bytes());
    }

    gc_acc.absorb(&node.pages.gc_totals());
    ret_acc.retention_unlinked += node.wal.stats().retention_unlinked;
    ret_acc.retention_bytes += node.wal.stats().retention_bytes;
    let final_disk = node.pages.total_bytes() + node.wal.disk_bytes();
    let final_root = tree.root_hash();
    drop(tree);
    drop(node);

    // Cold reopen: sealed segments must come back through their sidecar
    // indexes (no frame scans), and reads must go through the bounded
    // lazy cache without materializing the tree.
    let node = open_node_dir(dir.path(), &cfg).expect("final reopen");
    let os = node.pages.open_stats();
    let manifest = node.manifest.as_ref().expect("final manifest");
    assert_eq!(manifest.root, final_root, "final manifest anchors the last checkpoint");
    let mut lazy = open_snapshot_lazy(manifest.root, StateSidecar::default(), p.cache_bytes);
    let mut reads_ok = true;
    for w in 0..p.working_set {
        let i = (w * 7919) % p.live_keys;
        let expect = val(last_round(i), i);
        match lazy.get(&node.pages, &key(i)) {
            Ok(Some(v)) => reads_ok &= v == expect,
            _ => reads_ok = false,
        }
    }
    let cs = lazy.cache_stats();
    reads_ok &= cs.resident_bytes <= p.cache_bytes;

    SoakCell {
        keys_churned,
        bytes_churned,
        peak_disk_bytes: peak_disk,
        final_disk_bytes: final_disk,
        disk_cap_bytes: disk_cap,
        gc: gc_acc,
        retention_unlinked: ret_acc.retention_unlinked,
        retention_bytes: ret_acc.retention_bytes,
        recovered_mid_gc,
        reopen_indexed: os.segments_indexed,
        reopen_scanned: os.segments_scanned,
        lazy_misses: cs.misses,
        lazy_hits: cs.hits,
        cache_resident_bytes: cs.resident_bytes,
        cache_evictions: cs.evictions,
        final_page_count: node.pages.page_count() as u64,
        reads_ok,
    }
}

/// `soak`: the bounded-disk long-churn experiment. A node directory
/// absorbs sustained overwrite churn (hundreds of MB to GBs of page
/// writes at full scale) with a durable checkpoint every round; page GC,
/// WAL compaction, and the retention caps must hold total disk below a
/// fixed multiple of the live set the whole time, a crash injected
/// mid-GC must recover, and the final reopen must serve verified reads
/// through the bounded lazy cache without materializing the tree.
pub fn soak(scale: Scale) {
    let p = SoakParams::for_scale(scale);
    let m = soak_cell(&p);
    let mut t = Table::new(
        "Bounded-disk soak: page GC + WAL retention + lazy reopen",
        &["metric", "value"],
    );
    let mb = |b: u64| format!("{:.1} MB", b as f64 / 1e6);
    t.row(vec!["keys churned".into(), m.keys_churned.to_string()]);
    t.row(vec!["bytes churned".into(), mb(m.bytes_churned)]);
    t.row(vec!["peak disk".into(), mb(m.peak_disk_bytes)]);
    t.row(vec!["final disk".into(), mb(m.final_disk_bytes)]);
    t.row(vec!["disk cap".into(), mb(m.disk_cap_bytes)]);
    t.row(vec!["gc runs".into(), m.gc.runs.to_string()]);
    t.row(vec!["gc swept segments".into(), m.gc.swept_segments.to_string()]);
    t.row(vec!["gc reclaimed".into(), mb(m.gc.reclaimed_bytes)]);
    t.row(vec!["gc copied pages".into(), m.gc.copied_pages.to_string()]);
    t.row(vec!["wal retention unlinks".into(), m.retention_unlinked.to_string()]);
    t.row(vec!["wal retention reclaimed".into(), mb(m.retention_bytes)]);
    t.row(vec![
        "recovered mid-GC crash".into(),
        if m.recovered_mid_gc { "yes".into() } else { "NO".into() },
    ]);
    t.row(vec!["reopen: segments via index".into(), m.reopen_indexed.to_string()]);
    t.row(vec!["reopen: segments scanned".into(), m.reopen_scanned.to_string()]);
    t.row(vec!["lazy faults (misses)".into(), m.lazy_misses.to_string()]);
    t.row(vec!["lazy hits".into(), m.lazy_hits.to_string()]);
    t.row(vec!["cache resident".into(), mb(m.cache_resident_bytes)]);
    t.row(vec!["cache evictions".into(), m.cache_evictions.to_string()]);
    t.row(vec![
        "reads verified".into(),
        if m.reads_ok { "yes".into() } else { "NO".into() },
    ]);
    t.print();
    // Process-fatal acceptance, mirroring the other subsystem smokes.
    assert!(m.reads_ok, "soak: lazy read-back failed verification");
    assert!(m.recovered_mid_gc, "soak: mid-GC crash did not recover cleanly");
    assert!(m.gc.runs > 0 && m.gc.swept_segments > 0, "soak: GC never collected");
    assert!(m.gc.reclaimed_bytes > 0, "soak: GC reclaimed nothing");
    assert!(m.retention_unlinked > 0, "soak: WAL retention never fired");
    assert!(
        m.peak_disk_bytes <= m.disk_cap_bytes,
        "soak: disk exceeded the cap ({} > {})",
        m.peak_disk_bytes,
        m.disk_cap_bytes
    );
    assert!(m.reopen_indexed > 0, "soak: reopen never used a sidecar index");
    assert!(
        m.reopen_scanned <= 1 + m.reopen_indexed / 4,
        "soak: reopen fell back to frame scans ({} scanned)",
        m.reopen_scanned
    );
    assert!(
        m.lazy_misses < m.final_page_count / 2,
        "soak: lazy reopen faulted {} of {} pages — that is a materialization, not a working set",
        m.lazy_misses,
        m.final_page_count
    );
    println!(
        "  disk stayed <= {} across {} churn rounds; reopen faulted {} / {} pages ✓",
        mb(m.disk_cap_bytes),
        p.rounds,
        m.lazy_misses,
        m.final_page_count
    );
}
