//! Multi-process localhost cluster: the real-node counterpart of
//! [`run_shard_experiment`].
//!
//! The driver writes a cluster config file, spawns one `node` process per
//! replica (each runs the *unmodified* [`ahl_consensus::pbft::Replica`]
//! over [`ahl_net::TcpTransport`]), hosts the closed-loop clients on its
//! own [`NodeRuntime`], drives load for a measured window, optionally
//! kills and restarts one node (exercising reconnect + state sync), and
//! compares the measured throughput against the simkit prediction for
//! the same configuration — same [`committee_config`]-derived replica
//! settings, same client mode, same operation factory.
//!
//! Safety is checked from the outside: every [`Control::Status`] probe
//! reports `(height, state digest)`, and two replicas reporting different
//! digests at the same height is a violation (the experiment then fails,
//! and `experiments -- cluster` exits nonzero).

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ahl_consensus::harness::{run_shard_experiment, ClientMode, NetChoice, ShardExperiment};
use ahl_consensus::pbft::{BftVariant, PbftConfig, PbftMsg};
use ahl_consensus::{ClosedLoopClient, OpFactory};
use ahl_core::{committee_config, SystemConfig};
use ahl_crypto::{sha256, Hash};
use ahl_ledger::{kvstore, Op, TxId};
use ahl_net::wire::Control;
use ahl_net::{runtime::wall_now, NodeRuntime, StatusReport, TcpConfig, TcpTransport};
use ahl_simkit::{NodeId, SimDuration};

/// Parameters of one localhost-cluster run.
pub struct ClusterSpec {
    /// Committee size (one OS process per replica).
    pub n: usize,
    /// Protocol variant.
    pub variant: BftVariant,
    /// Transactions per block.
    pub batch_size: usize,
    /// Stable checkpoint interval (drives state-sync anchoring).
    pub checkpoint_interval: u64,
    /// Execution worker threads per replica.
    pub exec_workers: usize,
    /// Closed-loop client actors hosted by the driver.
    pub clients: usize,
    /// Outstanding requests per client.
    pub outstanding: usize,
    /// RNG seed (keys, pools, client streams — shared with the sim run).
    pub seed: u64,
    /// Load before the measured window opens.
    pub warmup: Duration,
    /// Measured window.
    pub measure: Duration,
    /// Kill one follower mid-run and verify it restarts, reconnects and
    /// catches back up from disk + state sync.
    pub kill_restart: bool,
    /// Scratch directory for config, node data dirs, and node logs.
    pub root: PathBuf,
    /// Path of the `node` binary to spawn.
    pub node_bin: PathBuf,
    /// Also run the simkit prediction for the same configuration.
    pub predict: bool,
}

impl ClusterSpec {
    /// Defaults: a 4-process AHL+ committee under 2 clients × 64
    /// outstanding, 2 s warmup + 5 s measured, with the kill/restart
    /// phase on.
    pub fn new(root: PathBuf, node_bin: PathBuf) -> Self {
        ClusterSpec {
            n: 4,
            variant: BftVariant::AhlPlus,
            batch_size: 64,
            checkpoint_interval: 32,
            exec_workers: 1,
            clients: 2,
            outstanding: 64,
            seed: 42,
            warmup: Duration::from_secs(2),
            measure: Duration::from_secs(5),
            kill_restart: true,
            root,
            node_bin,
            predict: true,
        }
    }
}

/// What one cluster run produced.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Client-observed completions per second over the measured window.
    pub measured_tps: f64,
    /// Simkit-predicted completions per second (same configuration);
    /// `None` when prediction was skipped.
    pub predicted_tps: Option<f64>,
    /// Total client completions over the whole run.
    pub completed: u64,
    /// Final `(replica, height)` from the last status sweep.
    pub heights: Vec<(NodeId, u64)>,
    /// Height the killed replica had to re-reach (kill/restart runs).
    pub catchup_height: u64,
}

impl ClusterReport {
    /// Human-readable summary lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "measured   {:>10.1} tx/s  ({} completions)\n",
            self.measured_tps, self.completed
        ));
        if let Some(p) = self.predicted_tps {
            let ratio = if p > 0.0 { self.measured_tps / p } else { f64::NAN };
            out.push_str(&format!("simkit     {p:>10.1} tx/s  (measured/predicted = {ratio:.2})\n"));
        }
        for (id, h) in &self.heights {
            out.push_str(&format!("replica {id}: height {h}\n"));
        }
        out
    }
}

/// The cluster config file: everything a `node` process needs to run one
/// replica, and everything the driver needs to reach it. Hand-parsed
/// `key value` lines (the workspace has no serde).
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterFile {
    /// Shared RNG seed (key generation must agree across processes).
    pub seed: u64,
    /// Protocol variant.
    pub variant: BftVariant,
    /// Transactions per block.
    pub batch_size: usize,
    /// Stable checkpoint interval.
    pub checkpoint_interval: u64,
    /// Execution worker threads.
    pub exec_workers: usize,
    /// Persistence root; each replica journals under `node-<id>`.
    pub data_dir: Option<PathBuf>,
    /// Committee: `(actor id, listen address)` per replica, id order.
    pub replicas: Vec<(NodeId, SocketAddr)>,
    /// Driver-hosted client actors and the address hosting them.
    pub clients: Vec<(NodeId, SocketAddr)>,
}

impl ClusterFile {
    /// Canonical text form (what [`ClusterFile::parse`] reads back; the
    /// handshake digest is computed over exactly these bytes).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("seed {}\n", self.seed));
        s.push_str(&format!("variant {}\n", self.variant.name()));
        s.push_str(&format!("batch-size {}\n", self.batch_size));
        s.push_str(&format!("checkpoint-interval {}\n", self.checkpoint_interval));
        s.push_str(&format!("exec-workers {}\n", self.exec_workers));
        if let Some(d) = &self.data_dir {
            s.push_str(&format!("data-dir {}\n", d.display()));
        }
        for (id, addr) in &self.replicas {
            s.push_str(&format!("replica {id} {addr}\n"));
        }
        for (id, addr) in &self.clients {
            s.push_str(&format!("client {id} {addr}\n"));
        }
        s
    }

    /// Parse the canonical form. Errors name the offending line.
    pub fn parse(text: &str) -> Result<ClusterFile, String> {
        let mut cf = ClusterFile {
            seed: 0,
            variant: BftVariant::AhlPlus,
            batch_size: 64,
            checkpoint_interval: 32,
            exec_workers: 1,
            data_dir: None,
            replicas: Vec::new(),
            clients: Vec::new(),
        };
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().expect("non-empty line");
            let bad = |what: &str| format!("line {}: bad {what}: {line:?}", lineno + 1);
            match key {
                "seed" => {
                    cf.seed = it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("seed"))?
                }
                "variant" => {
                    cf.variant = match it.next() {
                        Some("HL") => BftVariant::Hl,
                        Some("AHL") => BftVariant::Ahl,
                        Some("AHL+") => BftVariant::AhlPlus,
                        Some("AHLR") => BftVariant::Ahlr,
                        _ => return Err(bad("variant")),
                    }
                }
                "batch-size" => {
                    cf.batch_size =
                        it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("batch-size"))?
                }
                "checkpoint-interval" => {
                    cf.checkpoint_interval = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("checkpoint-interval"))?
                }
                "exec-workers" => {
                    cf.exec_workers =
                        it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("exec-workers"))?
                }
                "data-dir" => {
                    cf.data_dir = Some(PathBuf::from(it.next().ok_or_else(|| bad("data-dir"))?))
                }
                "replica" | "client" => {
                    let id: NodeId =
                        it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("id"))?;
                    let addr: SocketAddr =
                        it.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("address"))?;
                    if key == "replica" {
                        cf.replicas.push((id, addr));
                    } else {
                        cf.clients.push((id, addr));
                    }
                }
                _ => return Err(bad("key")),
            }
        }
        if cf.replicas.is_empty() {
            return Err("no replicas in config".into());
        }
        Ok(cf)
    }

    /// Session-handshake digest: every process must parse byte-identical
    /// cluster parameters or connections are refused.
    pub fn digest(&self) -> Hash {
        sha256(self.render().as_bytes())
    }

    /// The per-replica PBFT configuration, derived through the same
    /// [`committee_config`] path the simulator uses.
    pub fn pbft_config(&self) -> PbftConfig {
        let mut sys = SystemConfig::new(1, self.replicas.len());
        sys.variant = self.variant;
        sys.batch_size = self.batch_size;
        sys.exec_workers = self.exec_workers;
        sys.data_dir = self.data_dir.clone();
        sys.seed = self.seed;
        let mut pbft = committee_config(&sys);
        pbft.checkpoint_interval = self.checkpoint_interval;
        pbft
    }

    /// Total actor count (replicas + clients) — what `Ctx::num_nodes`
    /// reports inside node processes.
    pub fn num_nodes(&self) -> usize {
        self.replicas.len() + self.clients.len()
    }
}

/// The deterministic per-client operation stream shared by the measured
/// run and the simkit prediction: single-key writes with globally unique
/// transaction ids.
pub fn kv_factory(client: usize) -> OpFactory {
    let mut i = client as u64 * 1_000_000;
    Box::new(move |_rng| {
        i += 1;
        Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 1000], 16) }
    })
}

/// Reserve `count` distinct localhost addresses by binding ephemeral
/// listeners, then releasing them (the usual spawn-time race is
/// negligible on a scratch machine).
fn free_addrs(count: usize) -> std::io::Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> =
        (0..count).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    listeners.iter().map(|l| l.local_addr()).collect()
}

/// Child-process guard: whatever is still running when the driver
/// unwinds gets killed (no orphan committees from failed runs).
struct Fleet {
    children: Vec<Option<Child>>,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for c in self.children.iter_mut().flatten() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn spawn_node(spec: &ClusterSpec, cfg_path: &Path, index: usize) -> Result<Child, String> {
    let log = std::fs::File::create(spec.root.join(format!("node-{index}.log")))
        .map_err(|e| format!("create node log: {e}"))?;
    Command::new(&spec.node_bin)
        .arg(cfg_path)
        .arg(index.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::from(log.try_clone().map_err(|e| e.to_string())?))
        .stderr(Stdio::from(log))
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", spec.node_bin.display()))
}

/// Cross-replica safety ledger: any height reported with two different
/// state digests is a divergence.
#[derive(Default)]
struct DigestLedger {
    seen: BTreeMap<u64, Hash>,
}

impl DigestLedger {
    fn note(&mut self, id: NodeId, r: &StatusReport) -> Result<(), String> {
        match self.seen.get(&r.height) {
            Some(d) if *d != r.digest => Err(format!(
                "SAFETY VIOLATION: replica {id} reports digest {:?} at height {} but {:?} was \
                 already certified there",
                r.digest, r.height, d
            )),
            Some(_) => Ok(()),
            None => {
                self.seen.insert(r.height, r.digest);
                Ok(())
            }
        }
    }
}

/// Probe every replica once and fold the answers into the safety ledger.
fn probe(
    rt: &mut NodeRuntime<PbftMsg>,
    n: usize,
    ledger: &mut DigestLedger,
) -> Result<BTreeMap<NodeId, StatusReport>, String> {
    rt.clear_status_replies();
    for r in 0..n {
        rt.send_control(r, Control::Status);
    }
    rt.run_for(Duration::from_millis(400));
    let replies: BTreeMap<NodeId, StatusReport> =
        rt.status_replies().iter().map(|(k, v)| (*k, v.clone())).collect();
    for (id, rep) in &replies {
        ledger.note(*id, rep)?;
    }
    Ok(replies)
}

/// Run the localhost cluster end to end. Returns an error (→ nonzero
/// exit from `experiments -- cluster`) on any safety violation, node
/// crash, failed catch-up, or unclean shutdown.
pub fn run_cluster(spec: &ClusterSpec) -> Result<ClusterReport, String> {
    std::fs::create_dir_all(&spec.root).map_err(|e| format!("create {:?}: {e}", spec.root))?;
    let addrs = free_addrs(spec.n + 1).map_err(|e| format!("reserve ports: {e}"))?;
    let driver_addr = addrs[spec.n];
    let cf = ClusterFile {
        seed: spec.seed,
        variant: spec.variant,
        batch_size: spec.batch_size,
        checkpoint_interval: spec.checkpoint_interval,
        exec_workers: spec.exec_workers,
        data_dir: Some(spec.root.join("data")),
        replicas: (0..spec.n).map(|i| (i, addrs[i])).collect(),
        clients: (0..spec.clients).map(|c| (spec.n + c, driver_addr)).collect(),
    };
    let cfg_path = spec.root.join("cluster.cfg");
    std::fs::File::create(&cfg_path)
        .and_then(|mut f| f.write_all(cf.render().as_bytes()))
        .map_err(|e| format!("write {cfg_path:?}: {e}"))?;

    let mut fleet = Fleet { children: Vec::new() };
    for i in 0..spec.n {
        fleet.children.push(Some(spawn_node(spec, &cfg_path, i)?));
    }

    // Driver runtime: hosts the closed-loop clients over its own TCP
    // endpoint; replicas reply to client actor ids routed back here.
    let client_ids: Vec<NodeId> = cf.clients.iter().map(|(id, _)| *id).collect();
    let mut tcp = TcpConfig::new(driver_addr, client_ids.clone(), cf.replicas.clone());
    tcp.cluster = cf.digest();
    let transport = TcpTransport::start(tcp).map_err(|e| format!("driver transport: {e}"))?;
    let mut rt: NodeRuntime<PbftMsg> =
        NodeRuntime::new(Box::new(transport), cf.num_nodes(), spec.seed);
    let horizon = spec.warmup + spec.measure + Duration::from_secs(if spec.kill_restart { 90 } else { 5 });
    let stop_at = wall_now() + SimDuration::from_nanos(horizon.as_nanos() as u64);
    for (c, id) in client_ids.iter().enumerate() {
        let target = c % spec.n;
        let client = ClosedLoopClient::new(
            vec![target],
            spec.outstanding,
            stop_at,
            SimDuration::from_secs(4),
            kv_factory(c),
        );
        rt.add_actor(*id, Box::new(client));
    }
    rt.start();

    let mut ledger = DigestLedger::default();

    // Warmup, then the measured window.
    rt.run_for(spec.warmup);
    let c0 = rt.stats().counter(ahl_consensus::stat::CLIENT_COMPLETED);
    rt.run_for(spec.measure);
    let c1 = rt.stats().counter(ahl_consensus::stat::CLIENT_COMPLETED);
    let measured_tps = (c1 - c0) as f64 / spec.measure.as_secs_f64();
    if c1 == c0 {
        return Err("no client completions during the measured window".into());
    }

    let mut catchup_height = 0;
    if spec.kill_restart {
        // Kill the highest-index follower (never the view-0 leader, never
        // the reporter), let the committee run without it, then restart
        // it and require it to re-reach the committee's height.
        let victim = spec.n - 1;
        let pre = probe(&mut rt, spec.n, &mut ledger)?;
        catchup_height = pre.values().map(|r| r.height).max().unwrap_or(0);
        if let Some(child) = fleet.children[victim].as_mut() {
            child.kill().map_err(|e| format!("kill node {victim}: {e}"))?;
            let _ = child.wait();
        }
        fleet.children[victim] = None;
        rt.run_for(Duration::from_secs(2));
        fleet.children[victim] = Some(spawn_node(spec, &cfg_path, victim)?);

        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let replies = probe(&mut rt, spec.n, &mut ledger)?;
            if replies.get(&victim).is_some_and(|r| r.height >= catchup_height) {
                break;
            }
            if Instant::now() > deadline {
                return Err(format!(
                    "node {victim} failed to catch up to height {catchup_height} within 60s \
                     (last: {:?})",
                    replies.get(&victim)
                ));
            }
            rt.run_for(Duration::from_millis(500));
        }
    }

    // Final status sweep (also the last safety check), then shutdown.
    let fin = probe(&mut rt, spec.n, &mut ledger)?;
    let heights: Vec<(NodeId, u64)> = fin.iter().map(|(id, r)| (*id, r.height)).collect();
    for r in 0..spec.n {
        rt.send_control(r, Control::Shutdown);
    }
    rt.run_for(Duration::from_millis(200));
    let deadline = Instant::now() + Duration::from_secs(15);
    for (i, slot) in fleet.children.iter_mut().enumerate() {
        let Some(child) = slot.as_mut() else { continue };
        loop {
            match child.try_wait().map_err(|e| format!("wait node {i}: {e}"))? {
                Some(status) => {
                    if !status.success() {
                        return Err(format!("node {i} exited uncleanly: {status}"));
                    }
                    *slot = None;
                    break;
                }
                None if Instant::now() > deadline => {
                    return Err(format!("node {i} did not shut down within 15s"));
                }
                None => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }
    rt.shutdown_transport();
    let completed = rt.stats().counter(ahl_consensus::stat::CLIENT_COMPLETED);

    // The simkit prediction: identical replica configuration (minus the
    // data dir — the sim run stays in-memory), identical client mode.
    let predicted_tps = spec.predict.then(|| {
        let mut pbft = cf.pbft_config();
        pbft.data_dir = None;
        let mut exp = ShardExperiment::new(pbft, Box::new(kv_factory));
        exp.net = NetChoice::Cluster;
        exp.clients = spec.clients;
        exp.client_mode = ClientMode::Closed { outstanding: spec.outstanding };
        exp.warmup = SimDuration::from_nanos(spec.warmup.as_nanos() as u64);
        exp.duration = SimDuration::from_nanos(spec.measure.as_nanos() as u64);
        exp.seed = spec.seed;
        run_shard_experiment(exp).tps
    });

    Ok(ClusterReport { measured_tps, predicted_tps, completed, heights, catchup_height })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_file_roundtrips() {
        let cf = ClusterFile {
            seed: 7,
            variant: BftVariant::Ahlr,
            batch_size: 32,
            checkpoint_interval: 16,
            exec_workers: 2,
            data_dir: Some(PathBuf::from("/tmp/x")),
            replicas: vec![(0, "127.0.0.1:7000".parse().unwrap()), (1, "127.0.0.1:7001".parse().unwrap())],
            clients: vec![(2, "127.0.0.1:7100".parse().unwrap())],
        };
        let back = ClusterFile::parse(&cf.render()).expect("parses");
        assert_eq!(cf, back);
        assert_eq!(cf.digest(), back.digest());
    }

    #[test]
    fn cluster_file_rejects_garbage() {
        assert!(ClusterFile::parse("bogus 1\n").is_err());
        assert!(ClusterFile::parse("replica zero 127.0.0.1:1\n").is_err());
        assert!(ClusterFile::parse("seed 1\n").is_err(), "no replicas");
    }

    #[test]
    fn pbft_config_matches_simulator_derivation() {
        let cf = ClusterFile::parse("seed 9\nvariant AHL+\nreplica 0 127.0.0.1:1\nreplica 1 127.0.0.1:2\nreplica 2 127.0.0.1:3\nreplica 3 127.0.0.1:4\n").unwrap();
        let pbft = cf.pbft_config();
        assert_eq!(pbft.n, 4);
        assert_eq!(pbft.variant, BftVariant::AhlPlus);
        assert_eq!(pbft.reply_policy, ahl_consensus::pbft::ReplyPolicy::IngestReplica);
    }
}
