//! # ahl-bench — the paper's evaluation, regenerated
//!
//! One function per table/figure of the paper (§7 + Appendix C). Each
//! prints the same rows/series the paper reports and returns them for
//! programmatic use. The `experiments` binary exposes them as subcommands:
//!
//! ```sh
//! cargo run --release -p ahl-bench --bin experiments -- fig8
//! cargo run --release -p ahl-bench --bin experiments -- all --quick
//! ```
//!
//! Absolute numbers are not expected to match the paper (our substrate is
//! a discrete-event simulator, not the authors' testbed); the *shapes* —
//! who wins, by what factor, where curves collapse — are the reproduction
//! targets. See EXPERIMENTS.md for the paper-vs-measured record.

#![warn(missing_docs)]

pub mod cluster;
pub mod figs;
pub mod json;
pub mod report;
pub mod trajectory;

pub use figs::Scale;

/// Run every experiment at the given scale (the `all` subcommand).
pub fn run_all(scale: Scale) {
    figs::table1();
    figs::table2();
    figs::table3();
    figs::eq1();
    figs::eq2();
    figs::eq3();
    figs::fig2(scale);
    figs::fig8(scale);
    figs::fig9(scale);
    figs::fig10(scale);
    figs::fig11(scale);
    figs::fig12(scale);
    figs::fig13(scale);
    figs::fig14(scale);
    figs::fig15(scale);
    figs::fig16(scale);
    figs::fig17(scale);
    figs::fig18(scale);
    figs::fig19(scale);
    figs::fig20(scale);
    figs::fig21(scale);
    figs::fig22(scale);
    figs::overload(scale);
    figs::statesync(scale);
    figs::byzantine(scale);
    figs::recovery(scale);
    figs::soak(scale);
    figs::parexec(scale);
}
