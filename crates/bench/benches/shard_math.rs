//! Benchmarks of shard-formation mathematics: hypergeometric tails,
//! committee-size search, assignment derivation.

use criterion::{criterion_group, criterion_main, Criterion};

use ahl_shard::{faulty_committee_prob, min_committee_size, Assignment, LnFact, Resilience};

fn bench_tail(c: &mut Criterion) {
    let lf = LnFact::new(4096);
    c.bench_function("hypergeom_tail_n80", |b| {
        b.iter(|| {
            faulty_committee_prob(
                std::hint::black_box(&lf),
                1000,
                0.25,
                80,
                Resilience::OneHalf,
            )
        });
    });
}

fn bench_sizing_search(c: &mut Criterion) {
    let lf = LnFact::new(4096);
    c.bench_function("min_committee_size_25pct", |b| {
        b.iter(|| {
            min_committee_size(
                std::hint::black_box(&lf),
                2400,
                0.25,
                Resilience::OneHalf,
                20.0,
            )
        });
    });
}

fn bench_lnfact_build(c: &mut Criterion) {
    c.bench_function("lnfact_table_4096", |b| {
        b.iter(|| LnFact::new(std::hint::black_box(4096)));
    });
}

fn bench_assignment(c: &mut Criterion) {
    c.bench_function("assignment_derive_1000_nodes_12_shards", |b| {
        b.iter(|| Assignment::derive(1000, 12, std::hint::black_box(42)));
    });
}

criterion_group!(
    benches,
    bench_tail,
    bench_sizing_search,
    bench_lnfact_build,
    bench_assignment
);
criterion_main!(benches);
