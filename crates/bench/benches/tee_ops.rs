//! Microbenchmarks of the TEE substrate: attested-log appends, beacon
//! invocations, sealing (host-time of the simulation datapath; the
//! *simulated* costs are Table 2's and are asserted separately in tests).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ahl_crypto::{sha256, KeyRegistry};
use ahl_simkit::{SimDuration, SimTime};
use ahl_tee::{AttestedLog, LogId, Measurement, RandomnessBeacon, Sealer, Slot};

fn bench_attested_append(c: &mut Criterion) {
    c.bench_function("attested_log_append", |b| {
        let mut reg = KeyRegistry::new();
        let key = reg.generate(1);
        let digest = sha256(b"prepare");
        b.iter_batched(
            || AttestedLog::new(key.clone()),
            |mut log| {
                for seq in 0..64u64 {
                    log.append(LogId(1), Slot { view: 0, seq }, digest)
                        .expect("fresh slots");
                }
                log
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_beacon_invoke(c: &mut Criterion) {
    c.bench_function("beacon_invoke", |b| {
        let mut reg = KeyRegistry::new();
        let mut epoch = 1u64;
        let key = reg.generate(2);
        let mut beacon = RandomnessBeacon::new(
            key,
            7,
            0,
            SimDuration::from_secs(1),
            SimTime::ZERO,
        );
        let late = SimTime::ZERO + SimDuration::from_secs(10);
        b.iter(|| {
            epoch += 1;
            beacon.invoke(std::hint::black_box(epoch), late)
        });
    });
}

fn bench_sealing(c: &mut Criterion) {
    let sealer = Sealer::new(Measurement(sha256(b"enclave")), 1);
    let state = vec![0xcdu8; 4096];
    c.bench_function("seal_unseal_4KB", |b| {
        b.iter(|| {
            let blob = sealer.seal(1, std::hint::black_box(&state));
            sealer.unseal(&blob, 0).expect("authentic")
        });
    });
}

criterion_group!(benches, bench_attested_append, bench_beacon_invoke, bench_sealing);
criterion_main!(benches);
