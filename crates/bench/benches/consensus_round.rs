//! End-to-end consensus simulation benchmarks: how much host time one
//! simulated committee-second costs at several scales, plus ablations
//! (batch size, split vs shared queues, execution worker threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ahl_consensus::clients::OpenLoopClient;
use ahl_consensus::pbft::{build_group, BftVariant, PbftConfig};
use ahl_ledger::{execute_ops, Condition, Mutation, Op, StateOp, StateStore, TxId, Value};
use ahl_simkit::{QueueConfig, SimDuration, SimTime};
use ahl_workload::KvStoreWorkload;

fn run_committee(cfg: PbftConfig, secs: u64) -> u64 {
    let net = Box::new(ahl_net::ClusterNetwork::new());
    let (mut sim, group) = build_group(&cfg, net, Some(1e9), &[], 11);
    let stop = SimTime::ZERO + SimDuration::from_secs(secs);
    for c in 0..4 {
        let client = OpenLoopClient::new(
            group.clone(),
            SimDuration::from_millis(4),
            stop,
            KvStoreWorkload::single_shard().factory(c),
        );
        sim.add_actor(Box::new(client), QueueConfig::unbounded());
    }
    sim.run_until(stop);
    sim.stats().counter(ahl_consensus::stat::TXN_COMMITTED)
}

fn bench_committee_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ahl_plus_committee_1s");
    g.sample_size(10);
    for n in [4usize, 7, 13] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_committee(PbftConfig::new(BftVariant::AhlPlus, n), 1));
        });
    }
    g.finish();
}

fn bench_batch_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_size_ablation");
    g.sample_size(10);
    for batch in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 7);
                cfg.batch_size = batch;
                run_committee(cfg, 1)
            });
        });
    }
    g.finish();
}

fn bench_queue_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_ablation");
    g.sample_size(10);
    for split in [false, true] {
        let name = if split { "split" } else { "shared" };
        g.bench_with_input(BenchmarkId::from_parameter(name), &split, |b, &split| {
            b.iter(|| {
                let mut cfg = PbftConfig::new(BftVariant::Ahl, 7);
                cfg.split_queues = split;
                run_committee(cfg, 1)
            });
        });
    }
    g.finish();
}

/// A conflict-light batch: 1024 transfers over disjoint account pairs —
/// one wave, the best case for the parallel engine and the configuration
/// the acceptance criterion measures speedup on.
fn disjoint_batch(n: u64) -> (StateStore, Vec<Op>) {
    let mut state = StateStore::new();
    for i in 0..2 * n {
        state.put(format!("acct{i}"), Value::Int(1_000));
    }
    let ops = (0..n)
        .map(|i| Op::Direct {
            txid: TxId(i),
            op: StateOp {
                conditions: vec![Condition::IntAtLeast {
                    key: format!("acct{}", 2 * i),
                    min: 5,
                }],
                mutations: vec![
                    (format!("acct{}", 2 * i), Mutation::Add(-5)),
                    (format!("acct{}", 2 * i + 1), Mutation::Add(5)),
                ],
            },
        })
        .collect();
    (state, ops)
}

fn bench_parexec_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("parexec_engine_1024");
    g.sample_size(20);
    g.throughput(Throughput::Elements(1024));
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            b.iter_batched(
                || disjoint_batch(1024),
                |(mut state, ops)| {
                    let refs: Vec<&Op> = ops.iter().collect();
                    let out = execute_ops(&mut state, &refs, workers);
                    (state, out)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_exec_workers_committee(c: &mut Criterion) {
    // Whole-committee cell: the engine inside PBFT block execution. The
    // simulated metrics are identical across cells (determinism); this
    // measures host wall-clock per simulated second.
    let mut g = c.benchmark_group("exec_workers_committee_1s");
    g.sample_size(10);
    for workers in [1usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &workers| {
            b.iter(|| {
                let mut cfg = PbftConfig::new(BftVariant::AhlPlus, 7);
                cfg.batch_size = 256;
                cfg.exec_workers = workers;
                run_committee(cfg, 1)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_committee_sizes,
    bench_batch_ablation,
    bench_queue_ablation,
    bench_parexec_engine,
    bench_exec_workers_committee
);
criterion_main!(benches);
