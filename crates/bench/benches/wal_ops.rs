//! Benchmarks of the durability subsystem: group-commit throughput under
//! each fsync policy, and on-disk page sharing between consecutive
//! checkpoints.
//!
//! The fsync axis is the classic WAL trade: `Always` pays one `fdatasync`
//! per commit, `EveryN` amortizes it (batched group commit), `Off` goes
//! memory-speed (the simulation's crash model is process kill, not power
//! loss). The page-store benchmark measures the structural-sharing payoff
//! directly: persisting a checkpoint after 10% churn must write far fewer
//! than half the pages of a full persist (the ≥2× acceptance bar), since
//! unchanged subtrees are referenced, not rewritten.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ahl_crypto::sha256_parts;
use ahl_ledger::Value;
use ahl_store::SparseMerkleTree;
use ahl_wal::{FsyncPolicy, PageStore, TempDir, Wal, WalConfig};

/// One ~220-byte record, shaped like a small executed-batch entry.
fn record(i: u64) -> Vec<u8> {
    let mut payload = i.to_be_bytes().to_vec();
    payload.extend_from_slice(&[0xAB; 212]);
    payload
}

const BATCH: u64 = 16;

fn bench_group_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_commit");
    // Records per iteration: one commit of a BATCH-record group.
    g.throughput(Throughput::Elements(BATCH));
    for (name, policy) in [
        ("fsync_always", FsyncPolicy::Always),
        ("fsync_every_8", FsyncPolicy::EveryN(8)),
        // Volume-based group commit: ~8 commits' worth of bytes per sync
        // at this record shape, so the row is directly comparable to
        // `fsync_every_8` — same loss window, different accounting.
        ("fsync_every_28kb", FsyncPolicy::EveryBytes(28 * 1024)),
        ("fsync_off", FsyncPolicy::Off),
    ] {
        let dir = TempDir::new("bench-wal");
        let cfg = WalConfig { fsync: policy, ..WalConfig::default() };
        let (mut wal, _) = Wal::open(dir.path(), cfg).expect("open");
        let mut i = 0u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    i += 1;
                    wal.append(record(i));
                }
                wal.commit().expect("commit");
            });
        });
        let stats = wal.stats();
        println!(
            "  [{name}] {} records, {} commits, {} fsyncs, {:.1} MB written",
            stats.records,
            stats.commits,
            stats.syncs,
            stats.bytes as f64 / 1e6
        );
    }
    g.finish();
}

fn bench_page_dedup(c: &mut Criterion) {
    const KEYS: u64 = 10_000;
    const CHURN: u64 = KEYS / 10; // the 10% acceptance workload

    let mut g = c.benchmark_group("wal_pages");
    let value = |i: u64| Value::Bytes(sha256_parts(&[&i.to_be_bytes()]).0.to_vec());
    let tree_of = |gen: u64| {
        SparseMerkleTree::build((0..KEYS).map(|i| (format!("acc{i}"), value(i * 31 + gen))))
    };

    // Incremental checkpoint persist after 10% churn — the steady-state
    // cost a replica pays per certified checkpoint.
    g.throughput(Throughput::Elements(CHURN));
    g.bench_function("persist_10pct_churn_10k", |b| {
        let dir = TempDir::new("bench-pages");
        let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
        let mut tree = tree_of(0);
        store.persist_tree(&tree).expect("base persist");
        let mut gen = 0u64;
        b.iter(|| {
            gen += 1;
            for j in 0..CHURN {
                let k = (j * 7 + gen) % KEYS;
                tree.insert(&format!("acc{k}"), value(gen << 32 | k));
            }
            store.persist_tree(&tree).expect("churn persist")
        });
    });
    g.finish();

    // Dedup ratio report (the ≥2x acceptance criterion): pages written by
    // the churned checkpoint vs a full persist of the same tree.
    let dir = TempDir::new("bench-pages-ratio");
    let mut store = PageStore::open(dir.path(), WalConfig::default()).expect("open");
    let mut tree = tree_of(0);
    let full = store.persist_tree(&tree).expect("first checkpoint");
    for j in 0..CHURN {
        tree.insert(&format!("acc{}", (j * 7) % KEYS), value(1 << 40 | j));
    }
    let incr = store.persist_tree(&tree).expect("second checkpoint");
    let total_nodes = 2 * KEYS - 1;
    let sharing = total_nodes as f64 / incr.pages_written.max(1) as f64;
    println!(
        "  [page dedup] checkpoint 1: {} pages; checkpoint 2 (10% churn): {} pages written, \
         {} subtrees shared -> {:.2}x on-disk sharing",
        full.pages_written, incr.pages_written, incr.subtrees_shared, sharing
    );
    assert!(
        incr.pages_written * 2 < full.pages_written,
        "10% churn must rewrite < half the pages: {} vs {}",
        incr.pages_written,
        full.pages_written
    );
    assert!(sharing >= 2.0, "on-disk sharing below the 2x acceptance bar: {sharing:.2}");
}

criterion_group!(benches, bench_group_commit, bench_page_dedup);
criterion_main!(benches);
