//! Benchmarks of the ledger substrate: state execution (2PL path), block
//! construction and chain verification.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ahl_crypto::Hash;
use ahl_ledger::{smallbank, Block, Chain, Op, StateStore, TxId};

fn store_with_accounts(n: usize) -> StateStore {
    let mut s = StateStore::new();
    for (k, v) in smallbank::genesis(n, 1_000_000, 1_000_000) {
        s.put(k, v);
    }
    s
}

fn bench_direct_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("state_execute");
    g.throughput(Throughput::Elements(1));
    g.bench_function("send_payment_direct", |b| {
        b.iter_batched(
            || store_with_accounts(1000),
            |mut s| {
                for i in 0..100u64 {
                    let from = format!("acc{}", i % 1000);
                    let to = format!("acc{}", (i + 7) % 1000);
                    s.execute(&Op::Direct {
                        txid: TxId(i),
                        op: smallbank::send_payment(&from, &to, 5),
                    });
                }
                s
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("prepare_commit_2pc", |b| {
        b.iter_batched(
            || store_with_accounts(1000),
            |mut s| {
                for i in 0..100u64 {
                    let from = format!("acc{}", i % 1000);
                    let to = format!("acc{}", (i + 7) % 1000);
                    s.execute(&Op::Prepare {
                        txid: TxId(i),
                        op: smallbank::send_payment(&from, &to, 5),
                    });
                    s.execute(&Op::Commit { txid: TxId(i) });
                }
                s
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_block_build(c: &mut Criterion) {
    let ops: Vec<Op> = (0..100)
        .map(|i| Op::Direct {
            txid: TxId(i),
            op: smallbank::send_payment("acc0", "acc1", 1),
        })
        .collect();
    c.bench_function("block_build_100_txns", |b| {
        b.iter(|| {
            Block::build(
                0,
                Hash::ZERO,
                std::hint::black_box(ops.clone()),
                Hash::ZERO,
                0,
                0,
            )
        });
    });
}

fn bench_chain_verify(c: &mut Criterion) {
    let mut chain = Chain::new();
    for h in 0..50u64 {
        let ops: Vec<Op> = (0..20)
            .map(|i| Op::Direct {
                txid: TxId(h * 100 + i),
                op: smallbank::send_payment("acc0", "acc1", 1),
            })
            .collect();
        let b = Block::build(h, chain.tip_digest(), ops, Hash::ZERO, h, 0);
        chain.append(b, vec![]).expect("sequential");
    }
    c.bench_function("chain_verify_50_blocks", |b| {
        b.iter(|| std::hint::black_box(&chain).verify());
    });
}

criterion_group!(benches, bench_direct_execution, bench_block_build, bench_chain_verify);
criterion_main!(benches);
