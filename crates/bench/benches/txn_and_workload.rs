//! Benchmarks of the transaction layer and workload generators: 2PC over
//! in-process shards, coordinator state machine, Zipf sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ahl_ledger::{smallbank, TxId};
use ahl_txn::coordinator::{CoordEvent, Coordinator};
use ahl_txn::MultiShardLedger;
use ahl_workload::{SmallBankWorkload, Zipf};

fn bench_cross_shard_2pc(c: &mut Criterion) {
    let mut g = c.benchmark_group("cross_shard_2pc");
    g.throughput(Throughput::Elements(100));
    g.bench_function("100_payments_over_4_shards", |b| {
        b.iter_batched(
            || {
                let mut l = MultiShardLedger::new(4);
                l.genesis(&smallbank::genesis(1000, 1_000_000, 0));
                l
            },
            |mut l| {
                for i in 0..100u64 {
                    let from = format!("acc{}", i % 1000);
                    let to = format!("acc{}", (i * 13 + 7) % 1000);
                    let _ = l.execute(TxId(i), &smallbank::send_payment(&from, &to, 3));
                }
                l
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_coordinator_sm(c: &mut Criterion) {
    c.bench_function("coordinator_1000_txns", |b| {
        b.iter(|| {
            let mut coord = Coordinator::new();
            for i in 0..1000u64 {
                let tx = TxId(i);
                coord.apply(tx, CoordEvent::Begin { shards: vec![0, 1, 2] });
                coord.apply(tx, CoordEvent::PrepareOk { shard: 0 });
                coord.apply(tx, CoordEvent::PrepareOk { shard: 1 });
                coord.apply(tx, CoordEvent::PrepareOk { shard: 2 });
            }
            coord
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf_sample");
    for theta in [0.0f64, 0.99, 1.99] {
        let z = Zipf::new(100_000, theta);
        let mut rng = SmallRng::seed_from_u64(5);
        g.bench_function(format!("theta_{theta}"), |b| {
            b.iter(|| z.sample(std::hint::black_box(&mut rng)));
        });
    }
    g.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    let w = SmallBankWorkload::paper(100_000, 0.99);
    let zipf = Zipf::new(w.accounts, w.theta);
    let mut rng = SmallRng::seed_from_u64(6);
    c.bench_function("smallbank_next_op", |b| {
        b.iter(|| w.next_op(&zipf, std::hint::black_box(&mut rng)));
    });
}

criterion_group!(
    benches,
    bench_cross_shard_2pc,
    bench_coordinator_sm,
    bench_zipf,
    bench_workload_gen
);
criterion_main!(benches);
