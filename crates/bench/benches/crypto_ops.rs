//! Microbenchmarks of the cryptographic substrate (the software
//! counterparts of Table 2's enclave operations).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ahl_crypto::{hmac_sha256, sha256, KeyRegistry, MerkleTree, Sha256};

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)));
        });
    }
    g.finish();
}

fn bench_incremental_hash(c: &mut Criterion) {
    c.bench_function("sha256_incremental_1MB_in_4K_chunks", |b| {
        let chunk = vec![0x5au8; 4096];
        b.iter(|| {
            let mut h = Sha256::new();
            for _ in 0..256 {
                h.update(std::hint::black_box(&chunk));
            }
            h.finalize()
        });
    });
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let msg = [9u8; 32];
    c.bench_function("hmac_sha256_32B", |b| {
        b.iter(|| hmac_sha256(std::hint::black_box(&key), std::hint::black_box(&msg)));
    });
}

fn bench_sign_verify(c: &mut Criterion) {
    let mut reg = KeyRegistry::new();
    let key = reg.generate(1);
    let digest = sha256(b"consensus message");
    c.bench_function("sig_sign", |b| {
        b.iter(|| key.sign(std::hint::black_box(&digest)));
    });
    let sig = key.sign(&digest);
    c.bench_function("sig_verify", |b| {
        b.iter(|| reg.verify(std::hint::black_box(&digest), std::hint::black_box(&sig)));
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    for n in [64usize, 1024] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("txn-{i}").into_bytes()).collect();
        g.bench_function(format!("build_{n}_leaves"), |b| {
            b.iter(|| MerkleTree::build(std::hint::black_box(&leaves)));
        });
        let tree = MerkleTree::build(&leaves);
        g.bench_function(format!("prove_verify_{n}"), |b| {
            b.iter_batched(
                || tree.prove(n / 2).expect("in range"),
                |proof| ahl_crypto::verify_proof(&tree.root(), &leaves[n / 2], &proof),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_incremental_hash,
    bench_hmac,
    bench_sign_verify,
    bench_merkle
);
criterion_main!(benches);
