//! Mempool hot-path benchmarks: admission (with dedup), full-pool
//! eviction under each policy, and batch formation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ahl_consensus::Request;
use ahl_ledger::{kvstore, Op, TxId};
use ahl_mempool::{BatchBuilder, BatchConfig, Mempool, MempoolConfig, PoolPolicy};
use ahl_simkit::{SimDuration, SimTime, Stats};

fn req(i: u64) -> Request {
    Request {
        id: i,
        client: 0,
        op: Op::Direct { txid: TxId(i), op: kvstore::kv_write(&[i % 64], 16) },
        submitted: SimTime::ZERO,
    }
}

fn filled(policy: PoolPolicy, capacity: usize) -> Mempool<Request> {
    let mut pool = Mempool::new(MempoolConfig::new(capacity).with_policy(policy), 7);
    let mut stats = Stats::new();
    for i in 0..capacity as u64 {
        pool.insert(req(i), SimTime::ZERO, &mut stats);
    }
    pool
}

fn bench_admission(c: &mut Criterion) {
    let mut g = c.benchmark_group("mempool_admission");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("fifo_10k_inserts", |b| {
        b.iter_batched(
            || (Mempool::new(MempoolConfig::new(20_000), 1), Stats::new()),
            |(mut pool, mut stats)| {
                for i in 0..10_000u64 {
                    pool.insert(req(i), SimTime::ZERO, &mut stats);
                }
                pool.len()
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("dedup_10k_duplicates", |b| {
        b.iter_batched(
            || (filled(PoolPolicy::Fifo, 10_000), Stats::new()),
            |(mut pool, mut stats)| {
                for i in 0..10_000u64 {
                    pool.insert(req(i), SimTime::ZERO, &mut stats);
                }
                stats.counter(ahl_mempool::stat::DUPLICATE)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_eviction(c: &mut Criterion) {
    let mut g = c.benchmark_group("mempool_full_pool_insert");
    g.throughput(Throughput::Elements(10_000));
    for policy in [PoolPolicy::Fifo, PoolPolicy::Priority, PoolPolicy::RandomEvict] {
        g.bench_function(format!("{policy:?}"), |b| {
            b.iter_batched(
                || (filled(policy, 10_000), Stats::new()),
                |(mut pool, mut stats)| {
                    // 10k arrivals at a full pool: reject (FIFO/Priority
                    // ties) or evict-and-admit, whichever the policy picks.
                    for i in 10_000..20_000u64 {
                        pool.insert(req(i), SimTime::ZERO, &mut stats);
                    }
                    pool.len()
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_batch_formation(c: &mut Criterion) {
    let mut g = c.benchmark_group("mempool_drain_10k_in_batches_of_100");
    g.throughput(Throughput::Elements(10_000));
    for policy in [PoolPolicy::Fifo, PoolPolicy::Priority] {
        g.bench_function(format!("{policy:?}"), |b| {
            b.iter_batched(
                || {
                    (
                        filled(policy, 10_000),
                        BatchBuilder::new(BatchConfig::new(100, SimDuration::from_millis(10))),
                        Stats::new(),
                    )
                },
                |(mut pool, mut builder, mut stats)| {
                    let mut drained = 0usize;
                    while let Some(b) = builder.take_full(&mut pool, SimTime::ZERO, &mut stats)
                    {
                        drained += b.len();
                    }
                    drained
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_admission, bench_eviction, bench_batch_formation);
criterion_main!(benches);
