//! Benchmarks of the authenticated store: sparse-Merkle-tree update /
//! prove / verify against the flat-map baseline it authenticates, plus the
//! bulk genesis build and chunk extraction used by state sync.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ahl_crypto::sha256_parts;
use ahl_store::{verify_chunk, verify_proof, SparseMerkleTree};

fn vhash(i: u64) -> ahl_crypto::Hash {
    sha256_parts(&[&i.to_be_bytes()])
}

fn tree_with(n: u64) -> SparseMerkleTree {
    SparseMerkleTree::build((0..n).map(|i| (format!("acc{i}"), vhash(i))))
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_update");
    g.throughput(Throughput::Elements(100));
    // The flat map: what StateStore pays per mutation without
    // authentication — the read-cache half of the hybrid.
    g.bench_function("flat_map_100_updates", |b| {
        b.iter_batched(
            || {
                (0..10_000u64)
                    .map(|i| (format!("acc{i}"), i))
                    .collect::<HashMap<String, u64>>()
            },
            |mut m| {
                for i in 0..100u64 {
                    m.insert(format!("acc{}", i * 97 % 10_000), i);
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
    // The SMT: O(log n) hashes per mutation buys a provable root.
    g.bench_function("smt_100_updates_10k", |b| {
        b.iter_batched(
            || tree_with(10_000),
            |mut t| {
                for i in 0..100u64 {
                    t.insert(&format!("acc{}", i * 97 % 10_000), vhash(i));
                }
                t
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_build");
    g.throughput(Throughput::Elements(10_000));
    // Bulk build (genesis / sync install): one hash per node.
    g.bench_function("bulk_build_10k", |b| {
        b.iter(|| tree_with(10_000));
    });
    // Insert-loop equivalent: O(log n) hashes per key.
    g.bench_function("insert_loop_10k", |b| {
        b.iter(|| {
            let mut t = SparseMerkleTree::new();
            for i in 0..10_000u64 {
                t.insert(&format!("acc{i}"), vhash(i));
            }
            t
        });
    });
    g.finish();
}

fn bench_proofs(c: &mut Criterion) {
    let t = tree_with(10_000);
    let root = t.root_hash();
    let mut g = c.benchmark_group("store_proofs");
    g.throughput(Throughput::Elements(1));
    g.bench_function("prove_10k", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            t.prove(&format!("acc{i}"))
        });
    });
    let proof = t.prove("acc42");
    g.bench_function("verify_10k", |b| {
        b.iter(|| verify_proof(&root, "acc42", Some(&vhash(42)), &proof));
    });
    g.finish();
}

fn bench_snapshots(c: &mut Criterion) {
    // The headline property of the persistent tree: a snapshot is an O(1)
    // root handle, so checkpoint cost stays flat as state grows (the old
    // deep clone grew linearly — compare the explicit rebuild baseline).
    let mut g = c.benchmark_group("store_snapshot");
    for n in [1_000u64, 10_000, 100_000] {
        let t = tree_with(n);
        g.bench_function(format!("snapshot_handle_{n}"), |b| {
            b.iter(|| t.clone());
        });
    }
    // Linear baseline: what a deep rebuild of the same tree costs.
    for n in [1_000u64, 10_000] {
        let t = tree_with(n);
        g.bench_function(format!("deep_rebuild_{n}"), |b| {
            b.iter(|| {
                SparseMerkleTree::build(t.iter().map(|(k, v)| (k.to_string(), *v)))
            });
        });
    }
    // Copy-on-write tax: 100 updates against a live tree that holds an
    // outstanding snapshot (path nodes clone on first touch).
    g.bench_function("updates_100_with_snapshot_10k", |b| {
        b.iter_batched(
            || {
                let t = tree_with(10_000);
                let snap = t.clone();
                (t, snap)
            },
            |(mut t, snap)| {
                for i in 0..100u64 {
                    t.insert(&format!("acc{}", i * 97 % 10_000), vhash(i));
                }
                (t, snap)
            },
            BatchSize::SmallInput,
        );
    });
    // Diff computation between two snapshots (the server half of
    // incremental sync): hash compares only, no re-hashing.
    let old = tree_with(10_000);
    let mut new = old.clone();
    for i in 0..50u64 {
        new.insert(&format!("acc{}", i * 131 % 10_000), vhash(i + 1));
    }
    g.bench_function("diff_chunks_10k_50_changed", |b| {
        b.iter(|| old.diff_chunks(&new, 6));
    });
    g.finish();
}

fn bench_chunks(c: &mut Criterion) {
    let t = tree_with(10_000);
    let root = t.root_hash();
    let bits = 4u8; // 16 chunks ≈ 625 leaves each
    let mut g = c.benchmark_group("store_chunks");
    g.bench_function("chunk_extract_625", |b| {
        b.iter(|| (t.chunk_keys(3, bits), t.chunk_proof(3, bits)));
    });
    let entries: Vec<(ahl_crypto::Hash, ahl_crypto::Hash)> = {
        let mut v: Vec<_> = t
            .chunk_keys(3, bits)
            .into_iter()
            .map(|k| (ahl_store::key_path(k), *t.get(k).expect("live")))
            .collect();
        v.sort_by_key(|e| e.0 .0);
        v
    };
    let proof = t.chunk_proof(3, bits);
    g.bench_function("chunk_verify_625", |b| {
        b.iter(|| verify_chunk(&root, 3, bits, &entries, &proof));
    });
    g.finish();
}

fn bench_batch_apply(c: &mut Criterion) {
    // The checkpoint-path write pattern: one block's coalesced changes
    // (inserts, updates, removes) applied in a single call. Serial
    // (`workers = 1`) vs the parallel subtree merge.
    let mut g = c.benchmark_group("store_batch_apply");
    g.throughput(Throughput::Elements(1_024));
    let changes: Vec<(String, Option<ahl_crypto::Hash>)> = (0..1_024u64)
        .map(|i| {
            let key = format!("acc{}", i * 97 % 20_000);
            if i % 8 == 7 {
                (key, None) // a remove (live roughly half the time)
            } else {
                (key, Some(vhash(i + 1)))
            }
        })
        .collect();
    for workers in [1usize, 2, 4, 8] {
        g.bench_function(format!("batch_1024_into_10k_w{workers}"), |b| {
            b.iter_batched(
                || (tree_with(10_000), changes.clone()),
                |(mut t, ch)| {
                    t.batch_apply(ch, workers);
                    t
                },
                BatchSize::SmallInput,
            );
        });
    }
    // The sequential insert/remove loop the batch path replaces.
    g.bench_function("loop_1024_into_10k", |b| {
        b.iter_batched(
            || (tree_with(10_000), changes.clone()),
            |(mut t, ch)| {
                for (k, v) in ch {
                    match v {
                        Some(v) => {
                            t.insert(&k, v);
                        }
                        None => {
                            t.remove(&k);
                        }
                    }
                }
                t
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_rehash_audit(c: &mut Criterion) {
    // The checkpoint-time paranoia pass of the parallel execution path:
    // recompute every cached hash bottom-up and compare.
    let mut g = c.benchmark_group("store_rehash_audit");
    let t = tree_with(10_000);
    for workers in [1usize, 4] {
        g.bench_function(format!("audit_10k_w{workers}"), |b| {
            b.iter(|| t.rehash_audit(workers));
        });
    }
    g.finish();
}

fn bench_cert_verify(c: &mut Criterion) {
    // Checkpoint-certificate verification: the per-vote loop each vote
    // re-deriving the digest vs the batched verifier hashing it once.
    use ahl_crypto::{KeyId, KeyRegistry, SigningKey};
    use ahl_store::checkpoint_digest;
    let mut reg = KeyRegistry::new();
    let keys: Vec<SigningKey> = (0..13).map(|i| reg.generate(i)).collect();
    let root = vhash(99);
    let digest = checkpoint_digest(512, &root);
    let votes: Vec<(KeyId, ahl_crypto::Signature)> =
        keys.iter().map(|k| (k.id(), k.sign(&digest))).collect();
    let mut g = c.benchmark_group("store_cert_verify");
    g.throughput(Throughput::Elements(votes.len() as u64));
    g.bench_function("per_vote_loop_13", |b| {
        b.iter(|| {
            votes.iter().all(|(id, s)| {
                s.signer == *id && reg.verify(&checkpoint_digest(512, &root), s)
            })
        });
    });
    g.bench_function("batched_13", |b| {
        b.iter(|| {
            reg.verify_batch(
                &checkpoint_digest(512, &root),
                votes.iter().map(|(id, s)| (*id, s)),
            )
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_updates,
    bench_build,
    bench_proofs,
    bench_snapshots,
    bench_chunks,
    bench_batch_apply,
    bench_rehash_audit,
    bench_cert_verify
);
criterion_main!(benches);
