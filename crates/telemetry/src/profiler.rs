//! Wall-clock span profiler: where does *host CPU time* go?
//!
//! The simulator's virtual clock says where modeled latency lives; this
//! profiler answers the complementary question — which components burn
//! real time running the simulation (consensus execution, SMT updates,
//! WAL group commit, sync chunk verification, the 2PC coordinator).
//!
//! Usage is guard-based and hierarchical:
//!
//! ```
//! use ahl_telemetry::Profiler;
//! Profiler::enable();
//! {
//!     let _outer = Profiler::span("pbft.exec");
//!     let _inner = Profiler::span("smt.update"); // child of pbft.exec
//! } // guards drop: total/self attribution recorded
//! let report = Profiler::take();
//! assert!(report.self_total_ns() <= report.wall_ns);
//! ```
//!
//! State is **thread-local** and **disabled by default**: a span at a hot
//! path costs one thread-local read and a branch when profiling is off, so
//! instrumented crates pay nothing in normal runs, and parallel bench
//! cells (one simulation per thread) never mix attributions. `total` is
//! inclusive time, `self` excludes enclosed spans; recursive spans of the
//! same name double-count `total` but keep `self` exact, so the acceptance
//! invariant is Σ self ≤ wall.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

#[derive(Default, Clone, Copy)]
struct Agg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

#[derive(Default)]
struct ProfState {
    enabled: bool,
    epoch: Option<Instant>,
    stack: Vec<Frame>,
    agg: BTreeMap<&'static str, Agg>,
}

thread_local! {
    static PROF: RefCell<ProfState> = RefCell::new(ProfState::default());
}

/// Aggregated timing of one span name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// The span name passed to [`Profiler::span`].
    pub name: &'static str,
    /// Completed activations.
    pub count: u64,
    /// Inclusive host time (children counted).
    pub total_ns: u64,
    /// Exclusive host time (children subtracted).
    pub self_ns: u64,
}

/// A harvested profile: spans sorted by self time, plus the wall time the
/// profiler was enabled for.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Host wall time between [`Profiler::enable`] and [`Profiler::take`].
    pub wall_ns: u64,
    /// Per-span attribution, sorted by `self_ns` descending.
    pub spans: Vec<SpanStat>,
}

impl ProfileReport {
    /// No spans fired (profiling was off, or nothing instrumented ran).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Sum of exclusive times — must not exceed [`ProfileReport::wall_ns`].
    pub fn self_total_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.self_ns).sum()
    }

    /// Render the sorted attribution table (the `experiments` text output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let wall_ms = self.wall_ns as f64 / 1e6;
        out.push_str(&format!(
            "host-time attribution (wall {wall_ms:.1} ms, attributed {:.1} ms):\n",
            self.self_total_ns() as f64 / 1e6
        ));
        out.push_str(&format!(
            "  {:<24} {:>10} {:>12} {:>12} {:>7}\n",
            "span", "count", "self (ms)", "total (ms)", "self %"
        ));
        for s in &self.spans {
            out.push_str(&format!(
                "  {:<24} {:>10} {:>12.2} {:>12.2} {:>6.1}%\n",
                s.name,
                s.count,
                s.self_ns as f64 / 1e6,
                s.total_ns as f64 / 1e6,
                if self.wall_ns == 0 { 0.0 } else { 100.0 * s.self_ns as f64 / self.wall_ns as f64 },
            ));
        }
        out
    }
}

/// RAII guard returned by [`Profiler::span`]; dropping it records the
/// elapsed time. Inert (and nearly free) when profiling is disabled.
pub struct SpanGuard {
    live: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            let Some(frame) = p.stack.pop() else { return };
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            let agg = p.agg.entry(frame.name).or_default();
            agg.count += 1;
            agg.total_ns += elapsed;
            agg.self_ns += self_ns;
            if let Some(parent) = p.stack.last_mut() {
                parent.child_ns += elapsed;
            }
        });
    }
}

/// The thread-local profiler front end. All methods act on the calling
/// thread's state only.
pub struct Profiler;

impl Profiler {
    /// Turn profiling on for this thread, discarding any prior state.
    pub fn enable() {
        PROF.with(|p| {
            *p.borrow_mut() = ProfState {
                enabled: true,
                epoch: Some(Instant::now()),
                ..Default::default()
            };
        });
    }

    /// Is profiling currently enabled on this thread?
    pub fn is_enabled() -> bool {
        PROF.with(|p| p.borrow().enabled)
    }

    /// Open a span. Must be dropped in LIFO order (scopes do this
    /// naturally). A no-op guard when profiling is disabled.
    pub fn span(name: &'static str) -> SpanGuard {
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            if !p.enabled {
                return SpanGuard { live: false };
            }
            p.stack.push(Frame { name, start: Instant::now(), child_ns: 0 });
            SpanGuard { live: true }
        })
    }

    /// Harvest the profile and disable profiling on this thread. Open
    /// spans (guards not yet dropped) are discarded.
    pub fn take() -> ProfileReport {
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            let wall_ns = p
                .epoch
                .map(|e| e.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            let mut spans: Vec<SpanStat> = p
                .agg
                .iter()
                .map(|(&name, a)| SpanStat {
                    name,
                    count: a.count,
                    total_ns: a.total_ns,
                    self_ns: a.self_ns,
                })
                .collect();
            spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
            *p = ProfState::default();
            ProfileReport { wall_ns, spans }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(us: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < us * 1_000 {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _ = Profiler::take(); // reset
        {
            let _g = Profiler::span("noop");
            spin(50);
        }
        let r = Profiler::take();
        assert!(r.is_empty());
    }

    #[test]
    fn nested_spans_split_self_and_total() {
        Profiler::enable();
        {
            let _outer = Profiler::span("outer");
            spin(400);
            {
                let _inner = Profiler::span("inner");
                spin(400);
            }
            spin(400);
        }
        let r = Profiler::take();
        assert_eq!(r.spans.len(), 2);
        let outer = r.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = r.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Outer total covers all three spins; its self time excludes the
        // inner span entirely.
        assert!(outer.total_ns >= inner.total_ns + 700_000, "{r:?}");
        assert!(outer.self_ns >= 700_000 && outer.self_ns <= outer.total_ns - inner.total_ns);
        // The acceptance invariant: attributed self time ≤ wall time.
        assert!(r.self_total_ns() <= r.wall_ns, "{r:?}");
        // And the wall clock covers the whole enabled window.
        assert!(r.wall_ns >= 1_200_000);
    }

    #[test]
    fn sibling_spans_accumulate_counts() {
        Profiler::enable();
        for _ in 0..10 {
            let _g = Profiler::span("hot");
            spin(20);
        }
        let r = Profiler::take();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].count, 10);
        assert!(r.self_total_ns() <= r.wall_ns);
        assert!(!Profiler::is_enabled(), "take() disables");
    }

    #[test]
    fn report_renders_sorted_table() {
        Profiler::enable();
        {
            let _a = Profiler::span("minor");
            spin(30);
        }
        {
            let _b = Profiler::span("major");
            spin(900);
        }
        let r = Profiler::take();
        assert_eq!(r.spans[0].name, "major", "sorted by self time");
        let table = r.render();
        assert!(table.contains("major"), "{table}");
        assert!(table.contains("self %"), "{table}");
        let major_line = table.lines().find(|l| l.contains("major")).unwrap();
        let minor_line = table.lines().find(|l| l.contains("minor")).unwrap();
        assert!(
            table.find(major_line.trim()).unwrap() < table.find(minor_line.trim()).unwrap(),
            "major first"
        );
    }
}
