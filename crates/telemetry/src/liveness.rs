//! The liveness oracle: an online [`TraceSink`] that watches the
//! flight-recorder event stream for the ways a run can stop making
//! progress *without* ever violating safety.
//!
//! Four detectors, all per-committee (node ids map to committees through
//! the installed topology, exactly like `run_system` lays them out):
//!
//! 1. **Commit stall** — demand was admitted (`Admit` stamps) and the
//!    committee proposed since, but no `Commit`/`Exec` progress landed
//!    within [`LivenessConfig::stall_budget`]. The classic partition /
//!    leader-withholding symptom.
//! 2. **Mempool starvation** — demand was admitted but *no proposal*
//!    picked it up within [`LivenessConfig::starvation_budget`]: the pool
//!    has work and the proposer ignores it.
//! 3. **View-change storm** — more than
//!    [`LivenessConfig::view_change_storm`] view changes inside a sliding
//!    [`LivenessConfig::view_change_window`]: the committee churns views
//!    instead of committing.
//! 4. **Sync livelock** — a node starts
//!    [`LivenessConfig::sync_livelock`] consecutive sync sessions without
//!    ever finishing one (re-anchor loop).
//!
//! Detection is driven entirely by simulation events (the sweep piggybacks
//! on other committees' stamps plus a final [`LivenessChecker::finish`]
//! call), so verdicts are deterministic in the run seed. Each violation
//! carries the implicated committee and a representative stuck request id
//! so the harness can print the bounded causal trace for exactly the right
//! nodes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use ahl_simkit::{Phase, SimDuration, SimTime, TraceSink};

/// Detection budgets and thresholds. Defaults are an order of magnitude
/// above healthy steady-state numbers (commits land every few hundred ms
/// in the slowest honest configurations), so a clean run never trips them.
#[derive(Clone, Debug)]
pub struct LivenessConfig {
    /// Max time admitted demand may wait without a commit/exec landing on
    /// its committee (given that proposals are still happening).
    pub stall_budget: SimDuration,
    /// Max time admitted demand may wait for *any* proposal.
    pub starvation_budget: SimDuration,
    /// Sliding window for view-change counting.
    pub view_change_window: SimDuration,
    /// View changes within the window that constitute a storm (strictly
    /// more than this fires).
    pub view_change_storm: usize,
    /// Consecutive sync-session starts without a completion that
    /// constitute a livelock (reaching this count fires).
    pub sync_livelock: u32,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            stall_budget: SimDuration::from_secs(5),
            starvation_budget: SimDuration::from_secs(5),
            view_change_window: SimDuration::from_secs(10),
            view_change_storm: 8,
            sync_livelock: 5,
        }
    }
}

/// One detected liveness violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LivenessViolation {
    /// Committee admitted demand and kept proposing but stopped committing.
    CommitStall {
        /// The stalled committee.
        committee: usize,
        /// How long the oldest waiting demand had been stuck when detected.
        stalled_for: SimDuration,
        /// Admit stamps seen since the last progress.
        pending: u64,
        /// Detection time.
        at: SimTime,
        /// Request id of the first stuck admission (trace probe).
        probe: u64,
    },
    /// Committee admitted demand but never proposed it.
    MempoolStarvation {
        /// The starved committee.
        committee: usize,
        /// How long the oldest waiting demand had been ignored.
        waiting_for: SimDuration,
        /// Admit stamps seen since the last progress.
        pending: u64,
        /// Detection time.
        at: SimTime,
        /// Request id of the first stuck admission (trace probe).
        probe: u64,
    },
    /// Committee churned views faster than it committed.
    ViewChangeStorm {
        /// The storming committee.
        committee: usize,
        /// View changes inside the window when the storm fired.
        count: usize,
        /// The sliding window the count was measured over.
        window: SimDuration,
        /// Detection time.
        at: SimTime,
    },
    /// A node looped sync sessions without ever completing one.
    SyncLivelock {
        /// The looping node.
        node: usize,
        /// Its committee.
        committee: usize,
        /// Consecutive sync starts without a completion.
        restarts: u32,
        /// Detection time.
        at: SimTime,
    },
}

impl LivenessViolation {
    /// The implicated committee.
    pub fn committee(&self) -> Option<usize> {
        match self {
            LivenessViolation::CommitStall { committee, .. }
            | LivenessViolation::MempoolStarvation { committee, .. }
            | LivenessViolation::ViewChangeStorm { committee, .. }
            | LivenessViolation::SyncLivelock { committee, .. } => Some(*committee),
        }
    }

    /// A representative stuck request id, when the violation has one.
    pub fn trace_id(&self) -> Option<u64> {
        match self {
            LivenessViolation::CommitStall { probe, .. }
            | LivenessViolation::MempoolStarvation { probe, .. } => Some(*probe),
            _ => None,
        }
    }

    /// One-line human-readable description (dump-on-anomaly header).
    pub fn summary(&self) -> String {
        match self {
            LivenessViolation::CommitStall { committee, stalled_for, pending, at, probe } => {
                format!(
                    "commit stall: committee {committee} has {pending} admitted txns waiting \
                     {:.1}s with no commit (t={:.1}s, probe id={probe})",
                    stalled_for.as_secs_f64(),
                    at.as_nanos() as f64 / 1e9,
                )
            }
            LivenessViolation::MempoolStarvation {
                committee, waiting_for, pending, at, probe,
            } => {
                format!(
                    "mempool starvation: committee {committee} admitted {pending} txns but \
                     proposed none for {:.1}s (t={:.1}s, probe id={probe})",
                    waiting_for.as_secs_f64(),
                    at.as_nanos() as f64 / 1e9,
                )
            }
            LivenessViolation::ViewChangeStorm { committee, count, window, at } => {
                format!(
                    "view-change storm: committee {committee} installed {count} views within \
                     {:.1}s (t={:.1}s)",
                    window.as_secs_f64(),
                    at.as_nanos() as f64 / 1e9,
                )
            }
            LivenessViolation::SyncLivelock { node, committee, restarts, at } => {
                format!(
                    "sync livelock: node {node} (committee {committee}) started {restarts} \
                     sync sessions without finishing one (t={:.1}s)",
                    at.as_nanos() as f64 / 1e9,
                )
            }
        }
    }
}

impl fmt::Display for LivenessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Per-committee progress bookkeeping.
#[derive(Clone, Debug, Default)]
struct CommitteeState {
    /// Last commit/exec stamp (or observation start).
    last_progress: SimTime,
    /// Admit stamps since the last progress.
    pending: u64,
    /// When the oldest still-pending admission arrived.
    first_pending: SimTime,
    /// Request id of that oldest pending admission.
    probe: u64,
    /// Last proposal stamp.
    last_propose: SimTime,
    /// View-change stamp times inside the sliding window.
    view_changes: VecDeque<SimTime>,
    /// A stall/starvation violation already fired for the current episode
    /// (re-arms on the next progress).
    stall_fired: bool,
    /// A storm violation already fired (one per committee per run).
    storm_fired: bool,
}

#[derive(Debug, Default)]
struct Inner {
    cfg: LivenessConfig,
    /// (committees, committee_size); node ids beyond are clients.
    topology: Option<(usize, usize)>,
    per: Vec<CommitteeState>,
    /// Consecutive sync starts without completion, per node (dense by
    /// replica node id).
    sync_starts: Vec<u32>,
    sync_fired: Vec<bool>,
    last_sweep: SimTime,
    violations: Vec<LivenessViolation>,
}

/// The liveness oracle. A cheaply cloneable handle (all clones observe and
/// report the same state) that implements [`TraceSink`]: install it with
/// `sim.stats_mut().set_trace_sink(...)` — or hand it to
/// `SystemConfig::liveness`, which does that and calls
/// [`LivenessChecker::finish`] for you.
#[derive(Clone, Debug, Default)]
pub struct LivenessChecker {
    inner: Arc<Mutex<Inner>>,
}

impl LivenessChecker {
    /// A checker with the given budgets. Topology must be installed (by
    /// the harness) before events mean anything.
    pub fn new(cfg: LivenessConfig) -> Self {
        LivenessChecker {
            inner: Arc::new(Mutex::new(Inner { cfg, ..Default::default() })),
        }
    }

    /// Declare the committee layout: `committees` committees of
    /// `committee_size` nodes, node id = `committee * committee_size +
    /// replica`, clients after. Resets all detector state.
    pub fn install_topology(&self, committees: usize, committee_size: usize) {
        let mut g = self.inner.lock().expect("liveness checker poisoned");
        g.topology = Some((committees, committee_size));
        g.per = vec![CommitteeState::default(); committees];
        g.sync_starts = vec![0; committees * committee_size];
        g.sync_fired = vec![false; committees * committee_size];
    }

    /// Run the final sweep at end-of-run time `at`: demand still waiting
    /// past its budget with the run over is a stall/starvation even if no
    /// further event triggered a periodic sweep.
    pub fn finish(&self, at: SimTime) {
        let mut g = self.inner.lock().expect("liveness checker poisoned");
        g.sweep(at);
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> Vec<LivenessViolation> {
        self.inner.lock().expect("liveness checker poisoned").violations.clone()
    }

    /// `true` when no violation has been recorded.
    pub fn ok(&self) -> bool {
        self.inner.lock().expect("liveness checker poisoned").violations.is_empty()
    }
}

impl TraceSink for LivenessChecker {
    fn on_trace(&mut self, at: SimTime, node: usize, id: u64, phase: Phase) {
        let mut g = self.inner.lock().expect("liveness checker poisoned");
        g.observe(at, node, id, phase);
    }
}

impl Inner {
    fn committee_of(&self, node: usize) -> Option<usize> {
        let (committees, size) = self.topology?;
        if size == 0 || node >= committees * size {
            return None; // client or unknown node
        }
        Some(node / size)
    }

    fn observe(&mut self, at: SimTime, node: usize, id: u64, phase: Phase) {
        if let Some(c) = self.committee_of(node) {
            let cfg_window = self.cfg.view_change_window;
            let st = &mut self.per[c];
            match phase {
                Phase::Commit | Phase::Exec | Phase::TwoPcDecide => {
                    st.last_progress = at;
                    st.pending = 0;
                    st.stall_fired = false;
                }
                Phase::Admit => {
                    if st.pending == 0 {
                        st.first_pending = at;
                        st.probe = id;
                    }
                    st.pending += 1;
                }
                Phase::Propose => st.last_propose = at,
                Phase::ViewChange => {
                    st.view_changes.push_back(at);
                    while st
                        .view_changes
                        .front()
                        .is_some_and(|&t| at.since(t) > cfg_window)
                    {
                        st.view_changes.pop_front();
                    }
                    if st.view_changes.len() > self.cfg.view_change_storm && !st.storm_fired {
                        st.storm_fired = true;
                        let count = st.view_changes.len();
                        self.violations.push(LivenessViolation::ViewChangeStorm {
                            committee: c,
                            count,
                            window: cfg_window,
                            at,
                        });
                    }
                }
                Phase::SyncStart => {
                    self.sync_starts[node] += 1;
                    if self.sync_starts[node] >= self.cfg.sync_livelock && !self.sync_fired[node]
                    {
                        self.sync_fired[node] = true;
                        let restarts = self.sync_starts[node];
                        self.violations.push(LivenessViolation::SyncLivelock {
                            node,
                            committee: c,
                            restarts,
                            at,
                        });
                    }
                }
                Phase::SyncDone => {
                    self.sync_starts[node] = 0;
                    self.sync_fired[node] = false;
                }
                _ => {}
            }
        }
        // Sweep on a fraction of the smaller budget so a fully silent
        // (partitioned) committee is still checked by everyone else's
        // events within a quarter budget of the deadline.
        let tick = self
            .cfg
            .stall_budget
            .min(self.cfg.starvation_budget)
            .as_nanos()
            / 4;
        if at.as_nanos().saturating_sub(self.last_sweep.as_nanos()) >= tick {
            self.sweep(at);
        }
    }

    fn sweep(&mut self, at: SimTime) {
        self.last_sweep = at;
        let (stall, starve) = (self.cfg.stall_budget, self.cfg.starvation_budget);
        for (c, st) in self.per.iter_mut().enumerate() {
            if st.pending == 0 || st.stall_fired {
                continue;
            }
            let waiting = at.since(st.first_pending.max(st.last_progress));
            // Proposals since the demand arrived ⇒ the pipeline moves but
            // commits don't (stall); no proposal at all ⇒ starvation.
            let proposed = st.last_propose >= st.first_pending;
            if proposed && waiting > stall {
                st.stall_fired = true;
                self.violations.push(LivenessViolation::CommitStall {
                    committee: c,
                    stalled_for: waiting,
                    pending: st.pending,
                    at,
                    probe: st.probe,
                });
            } else if !proposed && waiting > starve {
                st.stall_fired = true;
                self.violations.push(LivenessViolation::MempoolStarvation {
                    committee: c,
                    waiting_for: waiting,
                    pending: st.pending,
                    at,
                    probe: st.probe,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    fn checker() -> LivenessChecker {
        let c = LivenessChecker::new(LivenessConfig::default());
        c.install_topology(2, 3); // nodes 0..6 replicas, rest clients
        c
    }

    #[test]
    fn healthy_stream_is_silent() {
        let mut c = checker();
        for i in 0..200u64 {
            let t = SimTime(i * 100_000_000); // one txn per 100 ms
            c.on_trace(t, 0, i, Phase::Admit);
            c.on_trace(t, 0, i, Phase::Propose);
            c.on_trace(t, 1, i, Phase::Commit);
            c.on_trace(t, 1, i, Phase::Exec);
        }
        c.finish(secs(21));
        assert!(c.ok(), "{:?}", c.violations());
    }

    #[test]
    fn commit_stall_fires_once_and_rearms() {
        let mut c = checker();
        // Demand admitted and proposed on committee 0, then silence; a
        // different committee's heartbeat drives the sweep.
        c.on_trace(secs(1), 0, 77, Phase::Admit);
        c.on_trace(secs(1), 0, 77, Phase::Propose);
        for s in 2..20 {
            c.on_trace(secs(s), 3, 1000 + s, Phase::Exec);
        }
        let v = c.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        match &v[0] {
            LivenessViolation::CommitStall { committee, probe, stalled_for, .. } => {
                assert_eq!(*committee, 0);
                assert_eq!(*probe, 77);
                assert!(stalled_for.as_secs_f64() > 5.0);
            }
            other => panic!("wrong violation: {other:?}"),
        }
        assert_eq!(v[0].committee(), Some(0));
        assert_eq!(v[0].trace_id(), Some(77));
        // Progress re-arms the detector; a second stall episode fires again.
        c.on_trace(secs(20), 1, 77, Phase::Exec);
        c.on_trace(secs(21), 0, 88, Phase::Admit);
        c.on_trace(secs(21), 0, 88, Phase::Propose);
        for s in 22..40 {
            c.on_trace(secs(s), 3, 2000 + s, Phase::Exec);
        }
        assert_eq!(c.violations().len(), 2);
    }

    #[test]
    fn starvation_when_nothing_proposed() {
        let mut c = checker();
        c.on_trace(secs(1), 4, 9, Phase::Admit);
        c.finish(secs(10));
        let v = c.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            matches!(v[0], LivenessViolation::MempoolStarvation { committee: 1, probe: 9, .. }),
            "{v:?}"
        );
    }

    #[test]
    fn view_change_storm_counts_in_window() {
        let mut c = checker();
        // 8 view changes in 10 s is the budget; the 9th fires.
        for i in 0..9u64 {
            c.on_trace(SimTime(i * 1_000_000_000), 2, i, Phase::ViewChange);
        }
        let v = c.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(v[0], LivenessViolation::ViewChangeStorm { committee: 0, count: 9, .. }));
        // Spread far apart, the window forgets them: no second storm.
        for i in 0..20u64 {
            c.on_trace(secs(100 + i * 20), 2, i, Phase::ViewChange);
        }
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn sync_livelock_needs_consecutive_starts() {
        let mut c = checker();
        // Four starts each followed by a done: healthy re-syncs.
        for i in 0..4u64 {
            c.on_trace(secs(i), 5, i, Phase::SyncStart);
            c.on_trace(secs(i) , 5, i, Phase::SyncDone);
        }
        assert!(c.ok());
        // Five consecutive starts without a done: livelock.
        for i in 0..5u64 {
            c.on_trace(secs(10 + i), 5, i, Phase::SyncStart);
        }
        let v = c.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0],
            LivenessViolation::SyncLivelock { node: 5, committee: 1, restarts: 5, .. }
        ));
    }

    #[test]
    fn client_stamps_are_ignored() {
        let mut c = checker();
        c.on_trace(secs(1), 42, 7, Phase::Admit); // node 42 = client
        c.finish(secs(30));
        assert!(c.ok());
    }

    #[test]
    fn summaries_name_the_committee() {
        let mut c = checker();
        c.on_trace(secs(1), 0, 7, Phase::Admit);
        c.finish(secs(10));
        let v = c.violations();
        assert!(v[0].summary().contains("committee 0"), "{}", v[0].summary());
    }
}
