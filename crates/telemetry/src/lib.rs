//! # ahl-telemetry — run-time oracles and instrumentation
//!
//! Two companions to the safety oracle in `ahl-consensus`:
//!
//! * [`LivenessChecker`] — an online [`ahl_simkit::TraceSink`] that watches
//!   the flight-recorder stream for commit stalls, mempool starvation,
//!   view-change storms, and sync livelocks: the failure classes that never
//!   violate safety but stop the system from making progress. Wire it into
//!   a run through `SystemConfig::liveness` (which installs the tee, calls
//!   [`LivenessChecker::finish`], and dumps the implicated committee's
//!   causal trace on a violation).
//! * [`Profiler`] — thread-local hierarchical wall-clock span timing for
//!   the hot paths (consensus exec, SMT update, WAL group commit, sync
//!   chunk verify, 2PC coordinator). Disabled by default; `run_system`
//!   enables it per-run when `SystemConfig::profile` is set and returns
//!   the sorted self/total attribution in the report.
//!
//! This crate depends only on `ahl-simkit` (for the trace vocabulary), so
//! every subsystem crate can instrument itself without dependency cycles.

#![warn(missing_docs)]

pub mod liveness;
pub mod profiler;

pub use liveness::{LivenessChecker, LivenessConfig, LivenessViolation};
pub use profiler::{ProfileReport, Profiler, SpanGuard, SpanStat};
