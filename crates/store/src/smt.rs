//! A *persistent* sparse Merkle tree over 256-bit key paths.
//!
//! Keys are hashed to a 256-bit *path* (`sha256(key)`); the tree is the
//! path-compressed binary trie over the paths of all live keys (a crit-bit
//! tree), with a cached hash per node:
//!
//! * leaf hash    = `H(0x00 ‖ path ‖ value_hash)` — the full path is inside
//!   the leaf, so compression loses no position information,
//! * branch hash  = `H(0x01 ‖ left ‖ right)` — branches exist only where two
//!   live paths diverge, so every update touches O(log n) nodes,
//! * empty tree   = [`Hash::ZERO`].
//!
//! Domain separation (`0x00`/`0x01`) follows the block-Merkle convention in
//! `ahl_crypto::MerkleTree`. The same `combine` rule (empty sides pass
//! through) lets a verifier fold proofs without knowing the tree shape.
//!
//! ## Structural sharing (copy-on-write)
//!
//! Nodes are reference-counted ([`std::sync::Arc`]) and never mutated while
//! shared: an update clones only the O(log n) nodes on the leaf's root path
//! (via `Arc::make_mut`, which mutates in place when the node is unshared —
//! the common case with no snapshot outstanding). Consequently
//! [`SparseMerkleTree::clone`] is **O(1)**: it copies one pointer and a
//! counter, and the clone is a true immutable snapshot — its root, proofs,
//! and chunk proofs stay byte-identical no matter how the live tree evolves.
//! This is what makes per-checkpoint state snapshots free and lets a server
//! retain several certified snapshots for diff computation.
//!
//! The tree is generic over the leaf *value* `V` (any [`StateValue`]), so a
//! snapshot alone can serve complete state-sync chunks — keys, values and
//! proofs — without a side copy of the flat map. The default `V = Hash`
//! (where a value is its own digest) keeps the classic authenticated-index
//! shape.
//!
//! Three proof forms back the store subsystem:
//! * **inclusion** — `key` maps to `value_hash` under `root`,
//! * **exclusion** — `key` is absent under `root` (the proof exhibits the
//!   leaf occupying the key's position, or the empty tree),
//! * **chunk** — the complete, ordered set of leaves whose path starts with
//!   a given prefix (state-sync transfers ride on this: a chunk that drops,
//!   adds, or alters any key fails verification against the root).
//!
//! On top of chunks, [`SparseMerkleTree::diff_chunks`] compares two trees
//! (typically two retained snapshots) and returns exactly the chunk indices
//! whose content differs — the unit of *incremental* state sync.

use std::sync::Arc;

use ahl_crypto::{sha256_parts, Hash};

use crate::StateValue;

/// The path of a key: `sha256(key)`.
pub fn key_path(key: &str) -> Hash {
    sha256_parts(&[key.as_bytes()])
}

/// Bit `i` (0 = most significant) of a path.
#[inline]
fn path_bit(path: &Hash, i: u16) -> usize {
    ((path.0[(i / 8) as usize] >> (7 - (i % 8))) & 1) as usize
}

/// Hash of a leaf: `H(0x00 ‖ path ‖ value_hash)`.
pub fn leaf_hash(path: &Hash, vhash: &Hash) -> Hash {
    sha256_parts(&[&[0x00], &path.0, &vhash.0])
}

/// Hash of an interior node. Empty subtrees pass the sibling through, so
/// single-leaf subtrees promote to their leaf hash (path compression).
pub fn combine(left: &Hash, right: &Hash) -> Hash {
    if *left == Hash::ZERO {
        *right
    } else if *right == Hash::ZERO {
        *left
    } else {
        sha256_parts(&[&[0x01], &left.0, &right.0])
    }
}

/// The chunk (of `1 << bits` total) a path falls into: its top `bits` bits.
pub fn chunk_of(path: &Hash, bits: u8) -> u32 {
    debug_assert!(bits <= 32);
    if bits == 0 {
        return 0;
    }
    let word = u32::from_be_bytes([path.0[0], path.0[1], path.0[2], path.0[3]]);
    word >> (32 - bits as u32)
}

#[inline]
fn chunk_bit(chunk: u32, bits: u8, d: u16) -> usize {
    debug_assert!((d as u32) < bits as u32);
    ((chunk >> (bits as u32 - 1 - d as u32)) & 1) as usize
}

struct Leaf<V> {
    path: Hash,
    key: String,
    vhash: Hash,
    hash: Hash,
    value: V,
}

impl<V: Clone> Clone for Leaf<V> {
    fn clone(&self) -> Self {
        Leaf {
            path: self.path,
            key: self.key.clone(),
            vhash: self.vhash,
            hash: self.hash,
            value: self.value.clone(),
        }
    }
}

struct Branch<V> {
    /// The bit index at which the two children diverge. All leaves below
    /// share path bits `0..bit`; children split on bit `bit`.
    bit: u16,
    hash: Hash,
    children: [Node<V>; 2],
}

impl<V> Clone for Branch<V> {
    fn clone(&self) -> Self {
        // Children are Arc handles: a branch clone is O(1) and shares both
        // subtrees (this is the copy-on-write path clone).
        Branch {
            bit: self.bit,
            hash: self.hash,
            children: [self.children[0].clone(), self.children[1].clone()],
        }
    }
}

enum Node<V> {
    Empty,
    Leaf(Arc<Leaf<V>>),
    Branch(Arc<Branch<V>>),
}

impl<V> Clone for Node<V> {
    fn clone(&self) -> Self {
        match self {
            Node::Empty => Node::Empty,
            Node::Leaf(l) => Node::Leaf(Arc::clone(l)),
            Node::Branch(b) => Node::Branch(Arc::clone(b)),
        }
    }
}

// Not derived: a derive would bound `V: Default`, which leaf values need
// not satisfy.
#[allow(clippy::derivable_impls)]
impl<V> Default for Node<V> {
    fn default() -> Self {
        Node::Empty
    }
}

impl<V> Node<V> {
    fn hash(&self) -> Hash {
        match self {
            Node::Empty => Hash::ZERO,
            Node::Leaf(l) => l.hash,
            Node::Branch(b) => b.hash,
        }
    }

    /// Path of the leftmost leaf below this node (`None` for `Empty`).
    /// All leaves below a branch at bit `b` share path bits `0..b`, so any
    /// leaf is a representative for prefix checks.
    fn representative(&self) -> Option<&Hash> {
        match self {
            Node::Empty => None,
            Node::Leaf(l) => Some(&l.path),
            Node::Branch(b) => b.children[0].representative(),
        }
    }
}

fn branch_hash<V>(children: &[Node<V>; 2]) -> Hash {
    sha256_parts(&[&[0x01], &children[0].hash().0, &children[1].hash().0])
}

/// A borrowed view of one tree node, as yielded by
/// [`SparseMerkleTree::visit_nodes`]. Persistence layers serialize each
/// view as one content-addressed page keyed by `hash`: leaf and branch
/// hashes are domain-separated (`0x00`/`0x01` prefixes), so a node's hash
/// identifies its kind and full content.
pub enum NodeView<'a, V> {
    /// A leaf: the stored key and value (the path is `sha256(key)`).
    Leaf {
        /// The leaf's node hash (`H(0x00 ‖ path ‖ value_hash)`).
        hash: Hash,
        /// The stored key.
        key: &'a str,
        /// The stored value.
        value: &'a V,
    },
    /// An interior node: crit bit plus the two child node hashes (branches
    /// always have two non-empty children — removal collapses them).
    Branch {
        /// The branch's node hash (`H(0x01 ‖ left ‖ right)`).
        hash: Hash,
        /// Bit index at which the children diverge.
        bit: u16,
        /// Left child's node hash.
        left: Hash,
        /// Right child's node hash.
        right: Hash,
    },
}

/// An inclusion/exclusion proof: the leaf found at the key's position plus
/// the branch siblings from that leaf to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmtProof {
    /// Path of the terminal leaf (equal to the proven key's path for
    /// inclusion; a different co-resident for exclusion). `None` only for
    /// the empty tree.
    pub leaf_path: Option<Hash>,
    /// Value hash of the terminal leaf.
    pub leaf_vhash: Option<Hash>,
    /// `(bit index, sibling subtree hash)` for every branch on the leaf's
    /// root path, in ascending bit order.
    pub siblings: Vec<(u16, Hash)>,
}

impl SmtProof {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        72 + 34 * self.siblings.len()
    }
}

/// A persistent sparse Merkle tree mapping keys to values (each committed
/// through its [`StateValue::leaf_digest`]).
///
/// The tree owns the key strings *and* values, so a snapshot (an O(1)
/// [`Clone`]) can serve state-sync chunk enumeration and payloads without a
/// side index.
pub struct SparseMerkleTree<V = Hash> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for SparseMerkleTree<V> {
    fn default() -> Self {
        SparseMerkleTree { root: Node::Empty, len: 0 }
    }
}

impl<V> Clone for SparseMerkleTree<V> {
    /// O(1): shares the whole node graph. The clone is an immutable
    /// snapshot — subsequent mutations of either tree copy-on-write the
    /// affected root path and leave the other untouched.
    fn clone(&self) -> Self {
        SparseMerkleTree { root: self.root.clone(), len: self.len }
    }
}

impl<V> std::fmt::Debug for SparseMerkleTree<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMerkleTree")
            .field("len", &self.len)
            .field("root", &self.root_hash())
            .finish()
    }
}

type BuildEntry<V> = Option<(Hash, String, Hash, V)>;

impl<V> SparseMerkleTree<V> {
    /// An empty tree (root = [`Hash::ZERO`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root hash ([`Hash::ZERO`] when empty).
    pub fn root_hash(&self) -> Hash {
        self.root.hash()
    }

    /// The value stored for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&V> {
        let path = key_path(key);
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return None,
                Node::Leaf(l) => return (l.path == path).then_some(&l.value),
                Node::Branch(b) => node = &b.children[path_bit(&path, b.bit)],
            }
        }
    }

    /// The value hash committed for `key`, if present.
    pub fn get_hash(&self, key: &str) -> Option<Hash> {
        let path = key_path(key);
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return None,
                Node::Leaf(l) => return (l.path == path).then_some(l.vhash),
                Node::Branch(b) => node = &b.children[path_bit(&path, b.bit)],
            }
        }
    }

    /// Produce a proof for `key`: an inclusion proof when the key is live,
    /// otherwise an exclusion proof (verify with [`verify_proof`]).
    pub fn prove(&self, key: &str) -> SmtProof {
        let path = key_path(key);
        let mut siblings = Vec::new();
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => {
                    return SmtProof { leaf_path: None, leaf_vhash: None, siblings };
                }
                Node::Leaf(l) => {
                    return SmtProof {
                        leaf_path: Some(l.path),
                        leaf_vhash: Some(l.vhash),
                        siblings,
                    };
                }
                Node::Branch(b) => {
                    let dir = path_bit(&path, b.bit);
                    siblings.push((b.bit, b.children[1 - dir].hash()));
                    node = &b.children[dir];
                }
            }
        }
    }

    /// Iterate all `(key, value)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &V)> {
        let mut stack = vec![&self.root];
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            match node {
                Node::Empty => continue,
                Node::Leaf(l) => return Some((l.key.as_str(), &l.value)),
                Node::Branch(b) => {
                    stack.push(&b.children[1]);
                    stack.push(&b.children[0]);
                }
            }
        })
    }

    /// The keys whose paths fall in chunk `chunk` of `1 << bits`, in path
    /// order (the unit of state-sync transfer).
    pub fn chunk_keys(&self, chunk: u32, bits: u8) -> Vec<&str> {
        self.chunk_entries(chunk, bits).into_iter().map(|(k, _)| k).collect()
    }

    /// The `(key, value)` pairs of chunk `chunk` of `1 << bits`, in path
    /// order — the complete payload of one state-sync chunk, served from
    /// this tree (or any snapshot of it) alone.
    pub fn chunk_entries(&self, chunk: u32, bits: u8) -> Vec<(&str, &V)> {
        let mut out = Vec::new();
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return out,
                Node::Leaf(l) => {
                    if chunk_of(&l.path, bits) == chunk {
                        out.push((l.key.as_str(), &l.value));
                    }
                    return out;
                }
                Node::Branch(b) => {
                    let rep = *b.children[0].representative().expect("branches are non-empty");
                    if b.bit as u32 >= bits as u32 {
                        if chunk_of(&rep, bits) == chunk {
                            Self::collect_entries(node, &mut out);
                        }
                        return out;
                    }
                    // A bit skipped by path compression may already diverge
                    // from the chunk prefix.
                    if matches!(first_chunk_diff(&rep, chunk, bits), Some(d) if d < b.bit) {
                        return out;
                    }
                    node = &b.children[chunk_bit(chunk, bits, b.bit)];
                }
            }
        }
    }

    fn collect_entries<'a>(node: &'a Node<V>, out: &mut Vec<(&'a str, &'a V)>) {
        match node {
            Node::Empty => {}
            Node::Leaf(l) => out.push((l.key.as_str(), &l.value)),
            Node::Branch(b) => {
                Self::collect_entries(&b.children[0], out);
                Self::collect_entries(&b.children[1], out);
            }
        }
    }

    /// Sibling subtree hashes for chunk `chunk` of `1 << bits`: entry `d`
    /// is the hash of the subtree holding every key that shares the chunk's
    /// top `d` bits and differs at bit `d` (ZERO when no such key exists).
    /// Together with the chunk's own leaves this reassembles the root — see
    /// [`verify_chunk`].
    pub fn chunk_proof(&self, chunk: u32, bits: u8) -> Vec<Hash> {
        let mut sibs = vec![Hash::ZERO; bits as usize];
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return sibs,
                Node::Leaf(l) => {
                    if chunk_of(&l.path, bits) != chunk {
                        let d = first_chunk_diff(&l.path, chunk, bits)
                            .expect("differs within prefix");
                        sibs[d as usize] = l.hash;
                    }
                    return sibs;
                }
                Node::Branch(b) => {
                    let rep = *b.children[0].representative().expect("branches are non-empty");
                    if b.bit as u32 >= bits as u32 {
                        if chunk_of(&rep, bits) != chunk {
                            let d = first_chunk_diff(&rep, chunk, bits)
                                .expect("differs within prefix");
                            sibs[d as usize] = b.hash;
                        }
                        return sibs;
                    }
                    // A skipped bit may already diverge from the chunk.
                    if let Some(d) = first_chunk_diff(&rep, chunk, bits) {
                        if d < b.bit {
                            sibs[d as usize] = b.hash;
                            return sibs;
                        }
                    }
                    let dir = chunk_bit(chunk, bits, b.bit);
                    sibs[b.bit as usize] = b.children[1 - dir].hash();
                    node = &b.children[dir];
                }
            }
        }
    }

    /// Hash of the subtree holding exactly the leaves of chunk `chunk` of
    /// `1 << bits` (the value [`verify_chunk`] reassembles from the served
    /// entries). ZERO for an empty chunk. Two trees hold identical content
    /// in a chunk iff their chunk roots match — the basis of
    /// [`SparseMerkleTree::diff_chunks`].
    pub fn chunk_root(&self, chunk: u32, bits: u8) -> Hash {
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return Hash::ZERO,
                Node::Leaf(l) => {
                    return if chunk_of(&l.path, bits) == chunk { l.hash } else { Hash::ZERO };
                }
                Node::Branch(b) => {
                    let rep = *b.children[0].representative().expect("branches are non-empty");
                    if b.bit as u32 >= bits as u32 {
                        return if chunk_of(&rep, bits) == chunk { b.hash } else { Hash::ZERO };
                    }
                    if matches!(first_chunk_diff(&rep, chunk, bits), Some(d) if d < b.bit) {
                        return Hash::ZERO;
                    }
                    node = &b.children[chunk_bit(chunk, bits, b.bit)];
                }
            }
        }
    }

    /// Walk the node graph bottom-up: children are visited (post-order)
    /// before their parent, and any subtree whose root hash `prune`
    /// accepts is skipped entirely.
    ///
    /// This is the traversal persistence layers need: `prune` answers "is
    /// this content-addressed page already on disk?" (structural sharing
    /// between snapshots thus dedups on disk exactly where it dedups in
    /// memory), and the children-first emit order guarantees that a page's
    /// existence implies its *whole subtree* exists — a crash mid-persist
    /// leaves only complete orphan subtrees behind, never a parent with
    /// missing children that a later dedup pass would wrongly trust. The
    /// empty tree visits nothing.
    pub fn visit_nodes(
        &self,
        prune: &mut dyn FnMut(&Hash) -> bool,
        visit: &mut dyn FnMut(NodeView<'_, V>),
    ) {
        enum Step<'a, V> {
            Enter(&'a Node<V>),
            Emit(&'a Node<V>),
        }
        let mut stack = vec![Step::Enter(&self.root)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(node) => match node {
                    Node::Empty => {}
                    Node::Leaf(l) => {
                        if !prune(&l.hash) {
                            visit(NodeView::Leaf { hash: l.hash, key: &l.key, value: &l.value });
                        }
                    }
                    Node::Branch(b) => {
                        if !prune(&b.hash) {
                            stack.push(Step::Emit(node));
                            stack.push(Step::Enter(&b.children[1]));
                            stack.push(Step::Enter(&b.children[0]));
                        }
                    }
                },
                Step::Emit(node) => {
                    let Node::Branch(b) = node else { unreachable!("only branches are deferred") };
                    visit(NodeView::Branch {
                        hash: b.hash,
                        bit: b.bit,
                        left: b.children[0].hash(),
                        right: b.children[1].hash(),
                    });
                }
            }
        }
    }

    /// The chunk indices (of `1 << bits`) whose content differs between
    /// `self` (the older snapshot) and `newer`, ascending.
    ///
    /// This is the server half of incremental state sync: a requester that
    /// still holds this tree's certified root only needs these chunks (plus
    /// per-chunk proofs against the *new* root) to reach the new state. The
    /// comparison is hash-only — with structural sharing between snapshots,
    /// unchanged regions compare equal without touching their leaves.
    pub fn diff_chunks(&self, newer: &Self, bits: u8) -> Vec<u32> {
        if self.root_hash() == newer.root_hash() {
            return Vec::new();
        }
        (0..1u32 << bits)
            .filter(|&c| self.chunk_root(c, bits) != newer.chunk_root(c, bits))
            .collect()
    }
}

impl<V: StateValue> SparseMerkleTree<V> {
    /// Bulk-build from `(key, value)` pairs (one hash per node instead of
    /// O(log n) per insert — use for genesis and state-sync install).
    /// Later duplicates of a key win.
    pub fn build(entries: impl IntoIterator<Item = (String, V)>) -> Self {
        let mut leaves: Vec<(Hash, String, Hash, V)> = entries
            .into_iter()
            .map(|(k, v)| (key_path(&k), k, v.leaf_digest(), v))
            .collect();
        leaves.sort_by_key(|l| l.0 .0);
        leaves.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // Keep the later insertion, matching insert-loop semantics.
                earlier.2 = later.2;
                std::mem::swap(&mut earlier.1, &mut later.1);
                std::mem::swap(&mut earlier.3, &mut later.3);
                true
            } else {
                false
            }
        });
        let len = leaves.len();
        let mut slots: Vec<BuildEntry<V>> = leaves.into_iter().map(Some).collect();
        let root = Self::build_node(&mut slots[..]);
        SparseMerkleTree { root, len }
    }

    fn build_node(leaves: &mut [BuildEntry<V>]) -> Node<V> {
        match leaves {
            [] => Node::Empty,
            [slot] => {
                let (path, key, vhash, value) = slot.take().expect("each slot consumed once");
                let hash = leaf_hash(&path, &vhash);
                Node::Leaf(Arc::new(Leaf { path, key, vhash, hash, value }))
            }
            _ => {
                // Sorted slice: the crit bit is the first bit where the
                // first and last path differ.
                let first = leaves.first().and_then(|s| s.as_ref()).expect("non-empty").0;
                let last = leaves.last().and_then(|s| s.as_ref()).expect("non-empty").0;
                let bit = first_diff_bit(&first, &last).expect("distinct paths");
                let split = leaves
                    .partition_point(|s| path_bit(&s.as_ref().expect("unconsumed").0, bit) == 0);
                let (l, r) = leaves.split_at_mut(split);
                let left = Self::build_node(l);
                let right = Self::build_node(r);
                let children = [left, right];
                let hash = branch_hash(&children);
                Node::Branch(Arc::new(Branch { bit, hash, children }))
            }
        }
    }
}

impl<V: StateValue + Clone> SparseMerkleTree<V> {
    /// Insert or update `key` with `value`. O(log n) hashes; clones only
    /// the nodes on the key's root path that are shared with snapshots.
    pub fn insert(&mut self, key: &str, value: V) {
        let _prof = ahl_telemetry::Profiler::span("smt.update");
        let path = key_path(key);
        let vhash = value.leaf_digest();
        // Find the leaf the path routes to (the crit-bit candidate).
        let mut node = &self.root;
        let existing = loop {
            match node {
                Node::Empty => break None,
                Node::Leaf(l) => break Some(l.path),
                Node::Branch(b) => node = &b.children[path_bit(&path, b.bit)],
            }
        };
        match existing {
            None => {
                debug_assert!(matches!(self.root, Node::Empty));
                let hash = leaf_hash(&path, &vhash);
                self.root = Node::Leaf(Arc::new(Leaf {
                    path,
                    key: key.to_string(),
                    vhash,
                    hash,
                    value,
                }));
                self.len = 1;
            }
            Some(lpath) if lpath == path => {
                Self::update_rec(&mut self.root, &path, vhash, value);
            }
            Some(lpath) => {
                let crit = first_diff_bit(&path, &lpath).expect("paths differ");
                Self::splice_rec(&mut self.root, path, key, vhash, value, crit);
                self.len += 1;
            }
        }
    }

    fn update_rec(node: &mut Node<V>, path: &Hash, vhash: Hash, value: V) {
        match node {
            Node::Leaf(l) => {
                let l = Arc::make_mut(l);
                debug_assert_eq!(l.path, *path);
                l.vhash = vhash;
                l.value = value;
                l.hash = leaf_hash(path, &vhash);
            }
            Node::Branch(b) => {
                let b = Arc::make_mut(b);
                let dir = path_bit(path, b.bit);
                Self::update_rec(&mut b.children[dir], path, vhash, value);
                b.hash = branch_hash(&b.children);
            }
            Node::Empty => unreachable!("update_rec only reaches live leaves"),
        }
    }

    fn splice_rec(node: &mut Node<V>, path: Hash, key: &str, vhash: Hash, value: V, crit: u16) {
        match node {
            Node::Branch(b) if b.bit < crit => {
                let b = Arc::make_mut(b);
                let dir = path_bit(&path, b.bit);
                Self::splice_rec(&mut b.children[dir], path, key, vhash, value, crit);
                b.hash = branch_hash(&b.children);
            }
            _ => {
                // Splice a new branch at `crit` above the current node.
                let old = std::mem::take(node);
                let hash = leaf_hash(&path, &vhash);
                let new_leaf = Node::Leaf(Arc::new(Leaf {
                    path,
                    key: key.to_string(),
                    vhash,
                    hash,
                    value,
                }));
                let dir = path_bit(&path, crit);
                let mut children = [Node::Empty, Node::Empty];
                children[dir] = new_leaf;
                children[1 - dir] = old;
                let hash = branch_hash(&children);
                *node = Node::Branch(Arc::new(Branch { bit: crit, hash, children }));
            }
        }
    }

    /// Remove `key`. Returns whether it was present. O(log n) hashes;
    /// copy-on-write like [`SparseMerkleTree::insert`].
    pub fn remove(&mut self, key: &str) -> bool {
        // Probe first: a miss must not copy-on-write any shared node.
        if self.get_hash(key).is_none() {
            return false;
        }
        let path = key_path(key);
        Self::remove_rec(&mut self.root, &path);
        self.len -= 1;
        true
    }

    /// Remove the (known-present) leaf at `path`.
    fn remove_rec(node: &mut Node<V>, path: &Hash) {
        match node {
            Node::Leaf(l) => {
                debug_assert_eq!(l.path, *path);
                *node = Node::Empty;
            }
            Node::Branch(b) => {
                let b = Arc::make_mut(b);
                let dir = path_bit(path, b.bit);
                Self::remove_rec(&mut b.children[dir], path);
                if matches!(b.children[dir], Node::Empty) {
                    // Collapse the branch: the sibling takes its place.
                    let sibling = std::mem::take(&mut b.children[1 - dir]);
                    *node = sibling;
                } else {
                    b.hash = branch_hash(&b.children);
                }
            }
            Node::Empty => unreachable!("probe found the key"),
        }
    }

    /// Mutate a stored value in place *without* refreshing the cached
    /// digests — the only way to manufacture the cache corruption
    /// `rehash_audit` exists to detect. Test-only by construction.
    #[cfg(test)]
    pub(crate) fn get_mut_for_test(&mut self, key: &str) -> Option<&mut V> {
        let path = key_path(key);
        Self::get_mut_rec(&mut self.root, &path)
    }

    #[cfg(test)]
    fn get_mut_rec<'a>(node: &'a mut Node<V>, path: &Hash) -> Option<&'a mut V> {
        match node {
            Node::Empty => None,
            Node::Leaf(l) => {
                if l.path == *path {
                    Some(&mut Arc::make_mut(l).value)
                } else {
                    None
                }
            }
            Node::Branch(b) => {
                let b = Arc::make_mut(b);
                let dir = path_bit(path, b.bit);
                Self::get_mut_rec(&mut b.children[dir], path)
            }
        }
    }

    fn contains_path(&self, path: &Hash) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return false,
                Node::Leaf(l) => return l.path == *path,
                Node::Branch(b) => node = &b.children[path_bit(path, b.bit)],
            }
        }
    }
}

/// Below this many changes, [`SparseMerkleTree::batch_apply`] runs the
/// plain insert/remove loop: the merge setup (sort, dedup, probes) costs
/// more than it saves on a handful of keys.
const MIN_PARALLEL_BATCH: usize = 32;

/// A side of a recursive merge split must carry at least this many changes
/// before a thread is spawned for it.
const MIN_SPAWN_CHANGES: usize = 8;

/// One pending change in a batch merge: `(path, key, value_hash, value)`;
/// a `None` value is a removal. `Option`-wrapped so slices can hand
/// ownership to [`SparseMerkleTree::build_node`]-style consumers.
type ApplyEntry<V> = Option<(Hash, String, Hash, Option<V>)>;

impl<V: StateValue + Clone + Send + Sync> SparseMerkleTree<V> {
    /// Apply a batch of changes (`Some(value)` = insert/update, `None` =
    /// remove), equivalent to calling [`SparseMerkleTree::insert`] /
    /// [`SparseMerkleTree::remove`] in order — later changes to the same
    /// key win. With `workers > 1` the batch is merged in one recursive
    /// descent that re-hashes disjoint subtrees on separate threads and
    /// hashes each shared ancestor once per batch instead of once per key;
    /// the resulting tree is the canonical crit-bit tree over the final
    /// content, so the root is bit-identical to the sequential loop.
    pub fn batch_apply(&mut self, changes: Vec<(String, Option<V>)>, workers: usize) {
        if changes.is_empty() {
            return;
        }
        if workers <= 1 || changes.len() < MIN_PARALLEL_BATCH {
            for (k, v) in changes {
                match v {
                    Some(v) => self.insert(&k, v),
                    None => {
                        self.remove(&k);
                    }
                }
            }
            return;
        }
        let _prof = ahl_telemetry::Profiler::span("smt.batch_apply");
        let mut slots: Vec<(Hash, String, Option<V>)> = changes
            .into_iter()
            .map(|(k, v)| (key_path(&k), k, v))
            .collect();
        // Stable sort + keep-the-later-change dedup (same discipline as
        // `build`): the batch collapses to its final per-key content.
        slots.sort_by_key(|s| s.0 .0);
        slots.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                std::mem::swap(earlier, later);
                true
            } else {
                false
            }
        });
        // Removals of absent keys are no-ops; dropping them up front means
        // every surviving removal routes to a live leaf, which keeps the
        // recursive split well-defined (only *inserts* can diverge above a
        // subtree) and makes the length delta exact.
        slots.retain(|(path, _, v)| v.is_some() || self.contains_path(path));
        if slots.is_empty() {
            return;
        }
        let mut entries: Vec<ApplyEntry<V>> = slots
            .into_iter()
            .map(|(path, key, v)| {
                let vhash = v.as_ref().map_or(Hash::ZERO, StateValue::leaf_digest);
                Some((path, key, vhash, v))
            })
            .collect();
        let root = std::mem::take(&mut self.root);
        let (root, delta) = Self::merge_node(root, &mut entries, workers);
        self.root = root;
        self.len = (self.len as isize + delta) as usize;
    }

    /// Merge sorted, per-path-unique `entries` into `node`, returning the
    /// new node and the leaf-count delta. All entry paths share the
    /// routing prefix that led to `node`. `threads` is the spawn budget
    /// for disjoint subtrees.
    fn merge_node(node: Node<V>, entries: &mut [ApplyEntry<V>], threads: usize) -> (Node<V>, isize) {
        if entries.is_empty() {
            return (node, 0);
        }
        match node {
            Node::Empty => {
                // Only reachable at the root of an empty tree; removals of
                // absent keys were filtered, so everything is an insert.
                let mut puts = Self::take_puts(entries);
                let delta = puts.len() as isize;
                (Self::build_node(&mut puts), delta)
            }
            Node::Leaf(l) => {
                let touched = entries
                    .iter()
                    .any(|s| s.as_ref().expect("unconsumed").0 == l.path);
                let mut puts = Self::take_puts(entries);
                if !touched {
                    // The existing leaf survives: slot it into path order.
                    let (path, key, vhash, value) = match Arc::try_unwrap(l) {
                        Ok(leaf) => (leaf.path, leaf.key, leaf.vhash, leaf.value),
                        Err(l) => (l.path, l.key.clone(), l.vhash, l.value.clone()),
                    };
                    let pos = puts.partition_point(|s| {
                        s.as_ref().expect("unconsumed").0 .0 < path.0
                    });
                    puts.insert(pos, Some((path, key, vhash, value)));
                }
                let delta = puts.len() as isize - 1;
                (Self::build_node(&mut puts), delta)
            }
            Node::Branch(b) => {
                let rep = *b.children[0].representative().expect("branches are non-empty");
                // An insert whose path diverges from the subtree's shared
                // prefix belongs *above* this branch. Splice at the
                // shallowest such divergence first. (Removals always route
                // to live leaves, so they never diverge.)
                let div = entries
                    .iter()
                    .filter_map(|s| {
                        let e = s.as_ref().expect("unconsumed");
                        e.3.as_ref().and(first_diff_bit(&e.0, &rep))
                    })
                    .filter(|d| *d < b.bit)
                    .min();
                let bit = div.unwrap_or(b.bit);
                // Every entry shares path bits `0..bit` (divergences are
                // at >= bit), so the sorted slice splits cleanly on it.
                let split = entries.partition_point(|s| {
                    path_bit(&s.as_ref().expect("unconsumed").0, bit) == 0
                });
                let (ls, rs) = entries.split_at_mut(split);
                match div {
                    Some(d) => {
                        // New ancestor at `d`: the subtree keeps the side
                        // the representative routes to, the far side is
                        // built fresh from its inserts.
                        let dir = path_bit(&rep, d);
                        let (near, far) = if dir == 0 { (ls, rs) } else { (rs, ls) };
                        let (merged, d1) = Self::merge_node(Node::Branch(b), near, threads);
                        let mut far_puts = Self::take_puts(far);
                        let d2 = far_puts.len() as isize;
                        let far_node = Self::build_node(&mut far_puts);
                        (Self::join(d, dir, merged, far_node), d1 + d2)
                    }
                    None => {
                        let [c0, c1] = match Arc::try_unwrap(b) {
                            Ok(b) => b.children,
                            Err(b) => b.children.clone(),
                        };
                        let spawn = threads > 1
                            && ls.len() >= MIN_SPAWN_CHANGES
                            && rs.len() >= MIN_SPAWN_CHANGES;
                        let ((n0, d0), (n1, d1)) = if spawn {
                            std::thread::scope(|s| {
                                let h = s.spawn(|| Self::merge_node(c0, ls, threads / 2));
                                let right =
                                    Self::merge_node(c1, rs, threads - threads / 2);
                                (h.join().expect("merge thread panicked"), right)
                            })
                        } else {
                            (
                                Self::merge_node(c0, ls, threads),
                                Self::merge_node(c1, rs, threads),
                            )
                        };
                        (Self::join(bit, 0, n0, n1), d0 + d1)
                    }
                }
            }
        }
    }

    /// Extract the inserts of a consumed entry slice as build slots (in
    /// path order); removals are dropped (their leaves are not in `node0`'s
    /// side of the split, or the subtree is being rebuilt without them).
    fn take_puts(entries: &mut [ApplyEntry<V>]) -> Vec<BuildEntry<V>> {
        let mut puts: Vec<BuildEntry<V>> = Vec::with_capacity(entries.len());
        for s in entries.iter_mut() {
            let (path, key, vhash, value) = s.take().expect("slot consumed once");
            if let Some(v) = value {
                puts.push(Some((path, key, vhash, v)));
            }
        }
        puts
    }

    /// Rebuild a branch at `bit` whose `dir` child is `near`, collapsing if
    /// either side came back empty (removals can empty a whole subtree).
    fn join(bit: u16, dir: usize, near: Node<V>, far: Node<V>) -> Node<V> {
        match (&near, &far) {
            (Node::Empty, _) => far,
            (_, Node::Empty) => near,
            _ => {
                let mut children = [Node::Empty, Node::Empty];
                children[dir] = near;
                children[1 - dir] = far;
                let hash = branch_hash(&children);
                Node::Branch(Arc::new(Branch { bit, hash, children }))
            }
        }
    }
}

impl<V: StateValue + Send + Sync> SparseMerkleTree<V> {
    /// Recompute every node hash bottom-up from leaf content — value
    /// digests, leaf hashes, branch hashes — across up to `workers`
    /// threads (disjoint subtrees audit concurrently), and compare against
    /// the cached hashes. Returns `true` when the entire tree is
    /// consistent. Checkpoint integrity check: a corrupted cache or a
    /// miscomputed parallel batch merge cannot certify a bad root.
    pub fn rehash_audit(&self, workers: usize) -> bool {
        Self::audit_node(&self.root, workers.max(1))
    }

    fn audit_node(node: &Node<V>, threads: usize) -> bool {
        match node {
            Node::Empty => true,
            Node::Leaf(l) => {
                l.vhash == l.value.leaf_digest() && l.hash == leaf_hash(&l.path, &l.vhash)
            }
            Node::Branch(b) => {
                let children_ok = if threads > 1 {
                    std::thread::scope(|s| {
                        let h = s.spawn(|| Self::audit_node(&b.children[0], threads / 2));
                        let right = Self::audit_node(&b.children[1], threads - threads / 2);
                        h.join().expect("audit thread panicked") && right
                    })
                } else {
                    Self::audit_node(&b.children[0], 1) && Self::audit_node(&b.children[1], 1)
                };
                children_ok
                    && !matches!(b.children[0], Node::Empty)
                    && !matches!(b.children[1], Node::Empty)
                    && b.hash == branch_hash(&b.children)
            }
        }
    }
}

/// First bit (0 = most significant) where two paths differ.
fn first_diff_bit(a: &Hash, b: &Hash) -> Option<u16> {
    for i in 0..32 {
        let x = a.0[i] ^ b.0[i];
        if x != 0 {
            return Some((i * 8) as u16 + x.leading_zeros() as u16);
        }
    }
    None
}

/// First bit in `0..bits` where `path` differs from the chunk prefix.
fn first_chunk_diff(path: &Hash, chunk: u32, bits: u8) -> Option<u16> {
    (0..bits as u16).find(|&d| path_bit(path, d) != chunk_bit(chunk, bits, d))
}

/// Verify an [`SmtProof`] for `key` against `root`.
///
/// `expected` is `Some(value_hash)` for an inclusion claim and `None` for an
/// exclusion claim ("`key` is not in the state committed by `root`").
pub fn verify_proof(root: &Hash, key: &str, expected: Option<&Hash>, proof: &SmtProof) -> bool {
    let path = key_path(key);
    let (Some(lpath), Some(lvhash)) = (proof.leaf_path, proof.leaf_vhash) else {
        // Empty-tree form: only valid as exclusion from the zero root.
        return expected.is_none() && proof.siblings.is_empty() && *root == Hash::ZERO;
    };
    match expected {
        Some(vh) => {
            if lpath != path || lvhash != *vh {
                return false;
            }
        }
        None => {
            if lpath == path {
                return false;
            }
            // The exhibited leaf must occupy the key's position: the key's
            // path must route identically at every branch on the proof.
            if !proof.siblings.iter().all(|(bit, _)| {
                *bit < 256 && path_bit(&path, *bit) == path_bit(&lpath, *bit)
            }) {
                return false;
            }
        }
    }
    // Bits must strictly increase (each branch deeper than its parent).
    if proof.siblings.windows(2).any(|w| w[0].0 >= w[1].0)
        || proof.siblings.iter().any(|(bit, _)| *bit >= 256)
    {
        return false;
    }
    let mut acc = leaf_hash(&lpath, &lvhash);
    for (bit, sib) in proof.siblings.iter().rev() {
        acc = if path_bit(&lpath, *bit) == 0 {
            sha256_parts(&[&[0x01], &acc.0, &sib.0])
        } else {
            sha256_parts(&[&[0x01], &sib.0, &acc.0])
        };
    }
    acc == *root
}

/// Verify that `entries` is the complete leaf set of chunk `chunk` (of
/// `1 << bits`) in the state committed by `root`.
///
/// `entries` are `(path, value_hash)` pairs sorted strictly by path (the
/// transfer layer recomputes both from the raw key/value payload, so a
/// tampered, truncated, or padded chunk changes a hash and fails here).
/// `siblings` is the output of [`SparseMerkleTree::chunk_proof`].
pub fn verify_chunk(
    root: &Hash,
    chunk: u32,
    bits: u8,
    entries: &[(Hash, Hash)],
    siblings: &[Hash],
) -> bool {
    let _prof = ahl_telemetry::Profiler::span("sync.verify_chunk");
    if siblings.len() != bits as usize || bits > 32 {
        return false;
    }
    if entries
        .windows(2)
        .any(|w| w[0].0 .0 >= w[1].0 .0)
    {
        return false; // unsorted or duplicate paths
    }
    if entries.iter().any(|(p, _)| chunk_of(p, bits) != chunk) {
        return false; // leaf outside the claimed range
    }
    let mut acc = subtree_from_leaves(entries, bits as u16);
    for d in (0..bits as u16).rev() {
        let sib = siblings[d as usize];
        let dir = chunk_bit(chunk, bits, d);
        acc = if dir == 0 {
            combine(&acc, &sib)
        } else {
            combine(&sib, &acc)
        };
    }
    acc == *root
}

/// Hash of the subtree holding exactly `leaves` (sorted by path), rooted at
/// depth `depth` — replicating the path-compressed hashing rules.
fn subtree_from_leaves(leaves: &[(Hash, Hash)], depth: u16) -> Hash {
    match leaves {
        [] => Hash::ZERO,
        [(path, vhash)] => leaf_hash(path, vhash),
        _ => {
            debug_assert!(depth < 256, "distinct sorted paths diverge before depth 256");
            let split = leaves.partition_point(|(p, _)| path_bit(p, depth) == 0);
            let left = subtree_from_leaves(&leaves[..split], depth + 1);
            let right = subtree_from_leaves(&leaves[split..], depth + 1);
            combine(&left, &right)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vh(i: u64) -> Hash {
        sha256_parts(&[&i.to_be_bytes()])
    }

    fn tree_of(n: u64) -> SparseMerkleTree {
        let mut t = SparseMerkleTree::new();
        for i in 0..n {
            t.insert(&format!("key-{i}"), vh(i));
        }
        t
    }

    #[test]
    fn empty_tree_zero_root() {
        let t: SparseMerkleTree = SparseMerkleTree::new();
        assert_eq!(t.root_hash(), Hash::ZERO);
        assert!(t.is_empty());
        let p = t.prove("missing");
        assert!(verify_proof(&t.root_hash(), "missing", None, &p));
    }

    #[test]
    fn insert_get_update_remove() {
        let mut t = SparseMerkleTree::new();
        t.insert("a", vh(1));
        assert_eq!(t.get("a"), Some(&vh(1)));
        let r1 = t.root_hash();
        t.insert("a", vh(2));
        assert_eq!(t.get("a"), Some(&vh(2)));
        assert_eq!(t.get_hash("a"), Some(vh(2)));
        assert_ne!(t.root_hash(), r1);
        assert_eq!(t.len(), 1);
        assert!(t.remove("a"));
        assert!(!t.remove("a"));
        assert_eq!(t.root_hash(), Hash::ZERO);
    }

    #[test]
    fn root_matches_bulk_build() {
        let t = tree_of(200);
        let bulk = SparseMerkleTree::build((0..200u64).map(|i| (format!("key-{i}"), vh(i))));
        assert_eq!(t.root_hash(), bulk.root_hash());
        assert_eq!(bulk.len(), 200);
    }

    #[test]
    fn bulk_build_last_duplicate_wins() {
        let bulk = SparseMerkleTree::build(vec![
            ("k".to_string(), vh(1)),
            ("other".to_string(), vh(9)),
            ("k".to_string(), vh(2)),
        ]);
        assert_eq!(bulk.len(), 2);
        assert_eq!(bulk.get("k"), Some(&vh(2)));
    }

    #[test]
    fn insert_order_does_not_matter() {
        let mut a = SparseMerkleTree::new();
        let mut b = SparseMerkleTree::new();
        for i in 0..50u64 {
            a.insert(&format!("key-{i}"), vh(i));
        }
        for i in (0..50u64).rev() {
            b.insert(&format!("key-{i}"), vh(i));
        }
        assert_eq!(a.root_hash(), b.root_hash());
    }

    #[test]
    fn inclusion_proofs_verify() {
        let t = tree_of(64);
        for i in 0..64u64 {
            let key = format!("key-{i}");
            let p = t.prove(&key);
            assert!(verify_proof(&t.root_hash(), &key, Some(&vh(i)), &p), "key {i}");
            // Wrong value hash fails.
            assert!(!verify_proof(&t.root_hash(), &key, Some(&vh(i + 1)), &p));
            // Inclusion proof is not an exclusion proof.
            assert!(!verify_proof(&t.root_hash(), &key, None, &p));
        }
    }

    #[test]
    fn exclusion_proofs_verify() {
        let t = tree_of(64);
        for i in 0..32u64 {
            let key = format!("absent-{i}");
            let p = t.prove(&key);
            assert!(verify_proof(&t.root_hash(), &key, None, &p), "key {key}");
            // An exclusion proof cannot claim inclusion.
            assert!(!verify_proof(&t.root_hash(), &key, Some(&vh(i)), &p));
        }
    }

    #[test]
    fn exclusion_proof_rejected_for_present_key() {
        let t = tree_of(64);
        // Take the proof for an absent key and try to use it to claim a
        // *present* key is absent: the routing-consistency check fails.
        let p = t.prove("absent-1");
        for i in 0..64u64 {
            assert!(!verify_proof(&t.root_hash(), &format!("key-{i}"), None, &p));
        }
    }

    #[test]
    fn tampered_proof_rejected() {
        let t = tree_of(16);
        let mut p = t.prove("key-3");
        if let Some((_, sib)) = p.siblings.first_mut() {
            sib.0[0] ^= 1;
        }
        assert!(!verify_proof(&t.root_hash(), "key-3", Some(&vh(3)), &p));
    }

    #[test]
    fn proof_does_not_transfer_between_roots() {
        let a = tree_of(16);
        let b = tree_of(17);
        let p = a.prove("key-3");
        assert!(!verify_proof(&b.root_hash(), "key-3", Some(&vh(3)), &p));
    }

    #[test]
    fn chunks_partition_all_keys() {
        let t = tree_of(100);
        for bits in [0u8, 1, 2, 3, 5] {
            let mut seen = 0usize;
            for chunk in 0..(1u32 << bits) {
                seen += t.chunk_keys(chunk, bits).len();
            }
            assert_eq!(seen, 100, "bits {bits}");
        }
    }

    #[test]
    fn chunks_verify_and_reassemble_root() {
        let t = tree_of(100);
        for bits in [0u8, 1, 3, 4] {
            for chunk in 0..(1u32 << bits) {
                let entries: Vec<(Hash, Hash)> = t
                    .chunk_entries(chunk, bits)
                    .iter()
                    .map(|(k, v)| (key_path(k), **v))
                    .collect();
                let proof = t.chunk_proof(chunk, bits);
                assert!(
                    verify_chunk(&t.root_hash(), chunk, bits, &entries, &proof),
                    "bits {bits} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn tampered_chunk_rejected() {
        let t = tree_of(50);
        let bits = 2u8;
        // Find a non-empty chunk.
        let chunk = (0..4u32)
            .find(|c| !t.chunk_keys(*c, bits).is_empty())
            .expect("some chunk non-empty");
        let keys = t.chunk_keys(chunk, bits);
        let mut entries: Vec<(Hash, Hash)> = keys
            .iter()
            .map(|k| (key_path(k), *t.get(k).expect("live")))
            .collect();
        let proof = t.chunk_proof(chunk, bits);
        // Alter one value hash.
        entries[0].1 .0[0] ^= 1;
        assert!(!verify_chunk(&t.root_hash(), chunk, bits, &entries, &proof));
        entries[0].1 .0[0] ^= 1;
        // Drop one leaf.
        let dropped = entries.split_off(entries.len() - 1);
        let ok_short = verify_chunk(&t.root_hash(), chunk, bits, &entries, &proof);
        assert!(!ok_short || keys.len() == 1);
        entries.extend(dropped);
        // Present the chunk under the wrong index.
        assert!(!verify_chunk(&t.root_hash(), chunk ^ 1, bits, &entries, &proof));
    }

    #[test]
    fn chunk_of_takes_top_bits() {
        let mut p = Hash::ZERO;
        p.0[0] = 0b1010_0000;
        assert_eq!(chunk_of(&p, 1), 1);
        assert_eq!(chunk_of(&p, 2), 0b10);
        assert_eq!(chunk_of(&p, 4), 0b1010);
        assert_eq!(chunk_of(&p, 0), 0);
    }

    #[test]
    fn iter_yields_all_pairs() {
        let t = tree_of(30);
        let mut keys: Vec<String> = t.iter().map(|(k, _)| k.to_string()).collect();
        keys.sort();
        let mut want: Vec<String> = (0..30).map(|i| format!("key-{i}")).collect();
        want.sort();
        assert_eq!(keys, want);
    }

    #[test]
    fn clone_preserves_root() {
        let t = tree_of(40);
        let c = t.clone();
        assert_eq!(t.root_hash(), c.root_hash());
        assert_eq!(t.len(), c.len());
    }

    #[test]
    fn snapshot_isolated_from_mutations() {
        let mut t = tree_of(64);
        let snap = t.clone(); // O(1) handle
        let root = snap.root_hash();
        let proof = snap.prove("key-7");
        // Mutate the live tree heavily: update, insert, remove.
        for i in 0..64u64 {
            t.insert(&format!("key-{i}"), vh(i + 1000));
        }
        for i in 0..32u64 {
            t.insert(&format!("new-{i}"), vh(i));
        }
        for i in 0..16u64 {
            t.remove(&format!("key-{i}"));
        }
        assert_ne!(t.root_hash(), root, "live tree diverged");
        // The snapshot is byte-identical to its capture point.
        assert_eq!(snap.root_hash(), root);
        assert_eq!(snap.len(), 64);
        assert_eq!(snap.prove("key-7"), proof);
        assert!(verify_proof(&root, "key-7", Some(&vh(7)), &snap.prove("key-7")));
        assert_eq!(snap.get("key-3"), Some(&vh(3)));
        // Chunk proofs of the snapshot still verify against the old root.
        let bits = 2u8;
        for chunk in 0..4u32 {
            let entries: Vec<(Hash, Hash)> = snap
                .chunk_entries(chunk, bits)
                .iter()
                .map(|(k, v)| (key_path(k), **v))
                .collect();
            assert!(verify_chunk(&root, chunk, bits, &entries, &snap.chunk_proof(chunk, bits)));
        }
    }

    #[test]
    fn visit_nodes_covers_tree_and_skip_prunes() {
        let t = tree_of(50);
        // Full walk: every leaf visited exactly once, branch hashes match
        // their children (the invariant page stores rely on), and every
        // branch is emitted only after both its children (children-first
        // order is what makes crash-interrupted persists safe).
        let mut seen: std::collections::HashSet<Hash> = std::collections::HashSet::new();
        let mut leaves = 0usize;
        let mut branches = 0usize;
        t.visit_nodes(&mut |_| false, &mut |view| match view {
            NodeView::Leaf { hash, key, value } => {
                leaves += 1;
                assert_eq!(hash, leaf_hash(&key_path(key), value));
                seen.insert(hash);
            }
            NodeView::Branch { hash, left, right, .. } => {
                branches += 1;
                assert_eq!(hash, sha256_parts(&[&[0x01], &left.0, &right.0]));
                assert!(seen.contains(&left) && seen.contains(&right), "children first");
                seen.insert(hash);
            }
        });
        assert_eq!(leaves, 50);
        assert_eq!(branches, 49, "a crit-bit tree has n-1 branches");
        // Pruning everything visits nothing.
        t.visit_nodes(&mut |_| true, &mut |_| panic!("fully pruned"));
        // Empty tree: no visits at all.
        let empty: SparseMerkleTree = SparseMerkleTree::new();
        empty.visit_nodes(&mut |_| false, &mut |_| panic!("empty tree has no nodes"));
    }

    #[test]
    fn chunk_root_matches_reassembly() {
        let t = tree_of(80);
        for bits in [0u8, 2, 4] {
            for chunk in 0..(1u32 << bits) {
                let entries: Vec<(Hash, Hash)> = t
                    .chunk_entries(chunk, bits)
                    .iter()
                    .map(|(k, v)| (key_path(k), **v))
                    .collect();
                assert_eq!(
                    t.chunk_root(chunk, bits),
                    subtree_from_leaves(&entries, bits as u16),
                    "bits {bits} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn diff_chunks_finds_exactly_changed_chunks() {
        let old = tree_of(120);
        let mut new = old.clone();
        // Touch a handful of keys (update, insert, delete).
        new.insert("key-5", vh(999));
        new.insert("brand-new", vh(1));
        new.remove("key-77");
        let bits = 5u8;
        let changed = old.diff_chunks(&new, bits);
        let expect: std::collections::BTreeSet<u32> = [
            chunk_of(&key_path("key-5"), bits),
            chunk_of(&key_path("brand-new"), bits),
            chunk_of(&key_path("key-77"), bits),
        ]
        .into_iter()
        .collect();
        assert_eq!(changed, expect.into_iter().collect::<Vec<u32>>());
        // Applying the changed chunks' new content onto the old tree
        // reproduces the new root exactly (the client-side diff install).
        let mut merged = old.clone();
        for &c in &old.diff_chunks(&new, bits) {
            let stale: Vec<String> =
                merged.chunk_keys(c, bits).iter().map(|k| k.to_string()).collect();
            for k in stale {
                merged.remove(&k);
            }
            let fresh: Vec<(String, Hash)> = new
                .chunk_entries(c, bits)
                .iter()
                .map(|(k, v)| (k.to_string(), **v))
                .collect();
            for (k, v) in fresh {
                merged.insert(&k, v);
            }
        }
        assert_eq!(merged.root_hash(), new.root_hash());
        // Identical trees have an empty diff.
        assert!(new.diff_chunks(&new.clone(), bits).is_empty());
    }

    /// The change mix every batch-apply test runs: fresh inserts, updates,
    /// removals of live keys, removals of absent keys, and same-key
    /// rewrites within one batch (later must win).
    fn batch_changes() -> Vec<(String, Option<Hash>)> {
        let mut changes: Vec<(String, Option<Hash>)> = Vec::new();
        for i in 0..120u64 {
            changes.push((format!("new-{i}"), Some(vh(1000 + i))));
        }
        for i in 0..40u64 {
            changes.push((format!("key-{i}"), Some(vh(2000 + i)))); // update
        }
        for i in 40..80u64 {
            changes.push((format!("key-{i}"), None)); // remove live
        }
        for i in 0..20u64 {
            changes.push((format!("ghost-{i}"), None)); // remove absent
        }
        for i in 0..10u64 {
            changes.push((format!("new-{i}"), Some(vh(3000 + i)))); // rewrite
            changes.push((format!("key-{}", 40 + i), Some(vh(4000 + i)))); // resurrect
        }
        changes
    }

    #[test]
    fn batch_apply_matches_sequential_loop() {
        for workers in [1usize, 2, 4, 8] {
            let mut seq = tree_of(100);
            let mut par = tree_of(100);
            for (k, v) in batch_changes() {
                match v {
                    Some(v) => seq.insert(&k, v),
                    None => {
                        seq.remove(&k);
                    }
                }
            }
            par.batch_apply(batch_changes(), workers);
            assert_eq!(par.root_hash(), seq.root_hash(), "workers={workers}");
            assert_eq!(par.len(), seq.len(), "workers={workers}");
            assert!(par.rehash_audit(workers), "workers={workers}");
        }
    }

    #[test]
    fn batch_apply_into_empty_and_single_leaf_trees() {
        for base in [0u64, 1] {
            let mut seq = tree_of(base);
            let mut par = tree_of(base);
            let changes: Vec<(String, Option<Hash>)> = (0..64u64)
                .map(|i| (format!("k{i}"), Some(vh(i))))
                .chain(std::iter::once(("key-0".to_string(), None)))
                .collect();
            for (k, v) in changes.clone() {
                match v {
                    Some(v) => seq.insert(&k, v),
                    None => {
                        seq.remove(&k);
                    }
                }
            }
            par.batch_apply(changes, 4);
            assert_eq!(par.root_hash(), seq.root_hash(), "base={base}");
            assert_eq!(par.len(), seq.len(), "base={base}");
        }
    }

    #[test]
    fn batch_apply_can_empty_the_tree() {
        let mut t = tree_of(40);
        let changes: Vec<(String, Option<Hash>)> =
            (0..40u64).map(|i| (format!("key-{i}"), None)).collect();
        t.batch_apply(changes, 4);
        assert_eq!(t.root_hash(), Hash::ZERO);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn batch_apply_shares_structure_with_snapshots() {
        // A frozen clone must be unaffected by a parallel batch apply.
        let mut t = tree_of(80);
        let snap = t.clone();
        let before = snap.root_hash();
        t.batch_apply(batch_changes(), 4);
        assert_eq!(snap.root_hash(), before);
        assert_eq!(snap.len(), 80);
        assert!(snap.rehash_audit(2));
        assert_ne!(t.root_hash(), before);
    }

    #[test]
    fn rehash_audit_detects_stale_cache() {
        let t = tree_of(50);
        assert!(t.rehash_audit(4));
        // Mutate one value behind the digest cache: the audit must notice
        // the leaf's content no longer matches its committed digest.
        #[derive(Clone)]
        struct Bad(Hash);
        impl StateValue for Bad {
            fn leaf_digest(&self) -> Hash {
                self.0
            }
        }
        let mut bad: SparseMerkleTree<Bad> = SparseMerkleTree::build(
            (0..50u64).map(|i| (format!("key-{i}"), Bad(vh(i)))),
        );
        assert!(bad.rehash_audit(2));
        bad.get_mut_for_test("key-7").expect("present").0 = vh(999);
        assert!(!bad.rehash_audit(2));
    }

    proptest::proptest! {
        /// Random op sequences: the incremental tree equals a bulk rebuild
        /// of the surviving reference map, regardless of operation order.
        #[test]
        fn incremental_equals_reference(
            ops in proptest::collection::vec((0u8..3, 0u64..40, 0u64..1000), 1..120)
        ) {
            let mut t = SparseMerkleTree::new();
            let mut reference = std::collections::BTreeMap::new();
            for (kind, k, v) in ops {
                let key = format!("k{k}");
                match kind {
                    0 | 1 => {
                        t.insert(&key, vh(v));
                        reference.insert(key, vh(v));
                    }
                    _ => {
                        let a = t.remove(&key);
                        let b = reference.remove(&key).is_some();
                        proptest::prop_assert_eq!(a, b);
                    }
                }
            }
            let bulk = SparseMerkleTree::build(
                reference.iter().map(|(k, v)| (k.clone(), *v)),
            );
            proptest::prop_assert_eq!(t.root_hash(), bulk.root_hash());
            proptest::prop_assert_eq!(t.len(), reference.len());
        }

        /// Parallel batch apply ≡ the sequential insert/remove loop, for
        /// random change sets (inserts, updates, removals, duplicates)
        /// at every worker count the exec engine uses.
        #[test]
        fn batch_apply_equals_loop(
            changes in proptest::collection::vec((0u8..4, 0u64..60, 0u64..1000), 0..150),
            workers in 2usize..9,
        ) {
            let mut seq = SparseMerkleTree::new();
            for i in 0..30u64 {
                seq.insert(&format!("k{i}"), vh(i));
            }
            let mut par = seq.clone();
            let batch: Vec<(String, Option<Hash>)> = changes
                .into_iter()
                .map(|(kind, k, v)| {
                    // kind 3 = remove, 0..=2 = insert/update (insert-biased
                    // so batches grow past the parallel threshold).
                    (format!("k{k}"), (kind != 3).then(|| vh(v)))
                })
                .collect();
            for (k, v) in batch.clone() {
                match v {
                    Some(v) => seq.insert(&k, v),
                    None => {
                        seq.remove(&k);
                    }
                }
            }
            par.batch_apply(batch, workers);
            proptest::prop_assert_eq!(par.root_hash(), seq.root_hash());
            proptest::prop_assert_eq!(par.len(), seq.len());
            proptest::prop_assert!(par.rehash_audit(workers));
        }

        /// Chunk decomposition always reassembles the root.
        #[test]
        fn chunks_reassemble(n in 0usize..60, bits in 0u8..5) {
            let t = SparseMerkleTree::build(
                (0..n as u64).map(|i| (format!("key-{i}"), vh(i))),
            );
            for chunk in 0..(1u32 << bits) {
                let entries: Vec<(Hash, Hash)> = t
                    .chunk_entries(chunk, bits)
                    .iter()
                    .map(|(k, v)| (key_path(k), **v))
                    .collect();
                let proof = t.chunk_proof(chunk, bits);
                proptest::prop_assert!(
                    verify_chunk(&t.root_hash(), chunk, bits, &entries, &proof)
                );
            }
        }
    }
}
