//! A sparse Merkle tree over 256-bit key paths.
//!
//! Keys are hashed to a 256-bit *path* (`sha256(key)`); the tree is the
//! path-compressed binary trie over the paths of all live keys (a crit-bit
//! tree), with a cached hash per node:
//!
//! * leaf hash    = `H(0x00 ‖ path ‖ value_hash)` — the full path is inside
//!   the leaf, so compression loses no position information,
//! * branch hash  = `H(0x01 ‖ left ‖ right)` — branches exist only where two
//!   live paths diverge, so every update touches O(log n) nodes,
//! * empty tree   = [`Hash::ZERO`].
//!
//! Domain separation (`0x00`/`0x01`) follows the block-Merkle convention in
//! `ahl_crypto::MerkleTree`. The same `combine` rule (empty sides pass
//! through) lets a verifier fold proofs without knowing the tree shape.
//!
//! Three proof forms back the store subsystem:
//! * **inclusion** — `key` maps to `value_hash` under `root`,
//! * **exclusion** — `key` is absent under `root` (the proof exhibits the
//!   leaf occupying the key's position, or the empty tree),
//! * **chunk** — the complete, ordered set of leaves whose path starts with
//!   a given prefix (state-sync transfers ride on this: a chunk that drops,
//!   adds, or alters any key fails verification against the root).

use ahl_crypto::{sha256_parts, Hash};

/// The path of a key: `sha256(key)`.
pub fn key_path(key: &str) -> Hash {
    sha256_parts(&[key.as_bytes()])
}

/// Bit `i` (0 = most significant) of a path.
#[inline]
fn path_bit(path: &Hash, i: u16) -> usize {
    ((path.0[(i / 8) as usize] >> (7 - (i % 8))) & 1) as usize
}

/// Hash of a leaf: `H(0x00 ‖ path ‖ value_hash)`.
pub fn leaf_hash(path: &Hash, vhash: &Hash) -> Hash {
    sha256_parts(&[&[0x00], &path.0, &vhash.0])
}

/// Hash of an interior node. Empty subtrees pass the sibling through, so
/// single-leaf subtrees promote to their leaf hash (path compression).
pub fn combine(left: &Hash, right: &Hash) -> Hash {
    if *left == Hash::ZERO {
        *right
    } else if *right == Hash::ZERO {
        *left
    } else {
        sha256_parts(&[&[0x01], &left.0, &right.0])
    }
}

/// The chunk (of `1 << bits` total) a path falls into: its top `bits` bits.
pub fn chunk_of(path: &Hash, bits: u8) -> u32 {
    debug_assert!(bits <= 32);
    if bits == 0 {
        return 0;
    }
    let word = u32::from_be_bytes([path.0[0], path.0[1], path.0[2], path.0[3]]);
    word >> (32 - bits as u32)
}

#[inline]
fn chunk_bit(chunk: u32, bits: u8, d: u16) -> usize {
    debug_assert!((d as u32) < bits as u32);
    ((chunk >> (bits as u32 - 1 - d as u32)) & 1) as usize
}

struct Leaf {
    path: Hash,
    key: String,
    vhash: Hash,
    hash: Hash,
}

struct Branch {
    /// The bit index at which the two children diverge. All leaves below
    /// share path bits `0..bit`; children split on bit `bit`.
    bit: u16,
    hash: Hash,
    children: [Node; 2],
}

#[derive(Default)]
enum Node {
    #[default]
    Empty,
    Leaf(Box<Leaf>),
    Branch(Box<Branch>),
}

impl Node {
    fn hash(&self) -> Hash {
        match self {
            Node::Empty => Hash::ZERO,
            Node::Leaf(l) => l.hash,
            Node::Branch(b) => b.hash,
        }
    }

    /// Path of the leftmost leaf below this node (`None` for `Empty`).
    /// All leaves below a branch at bit `b` share path bits `0..b`, so any
    /// leaf is a representative for prefix checks.
    fn representative(&self) -> Option<&Hash> {
        match self {
            Node::Empty => None,
            Node::Leaf(l) => Some(&l.path),
            Node::Branch(b) => b.children[0].representative(),
        }
    }
}

/// An inclusion/exclusion proof: the leaf found at the key's position plus
/// the branch siblings from that leaf to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmtProof {
    /// Path of the terminal leaf (equal to the proven key's path for
    /// inclusion; a different co-resident for exclusion). `None` only for
    /// the empty tree.
    pub leaf_path: Option<Hash>,
    /// Value hash of the terminal leaf.
    pub leaf_vhash: Option<Hash>,
    /// `(bit index, sibling subtree hash)` for every branch on the leaf's
    /// root path, in ascending bit order.
    pub siblings: Vec<(u16, Hash)>,
}

impl SmtProof {
    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        72 + 34 * self.siblings.len()
    }
}

/// A sparse Merkle tree mapping keys to value hashes.
///
/// The tree owns the key strings so state-sync chunk enumeration needs no
/// side index; the actual values live in the caller's flat map.
#[derive(Default)]
pub struct SparseMerkleTree {
    root: Node,
    len: usize,
}

impl Clone for SparseMerkleTree {
    fn clone(&self) -> Self {
        // Iterative rebuild avoids deep recursive clone; O(n) hashes would
        // be wasteful, so clone nodes structurally instead.
        fn clone_node(n: &Node) -> Node {
            match n {
                Node::Empty => Node::Empty,
                Node::Leaf(l) => Node::Leaf(Box::new(Leaf {
                    path: l.path,
                    key: l.key.clone(),
                    vhash: l.vhash,
                    hash: l.hash,
                })),
                Node::Branch(b) => Node::Branch(Box::new(Branch {
                    bit: b.bit,
                    hash: b.hash,
                    children: [clone_node(&b.children[0]), clone_node(&b.children[1])],
                })),
            }
        }
        SparseMerkleTree { root: clone_node(&self.root), len: self.len }
    }
}

impl std::fmt::Debug for SparseMerkleTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMerkleTree")
            .field("len", &self.len)
            .field("root", &self.root_hash())
            .finish()
    }
}

impl SparseMerkleTree {
    /// An empty tree (root = [`Hash::ZERO`]).
    pub fn new() -> Self {
        SparseMerkleTree { root: Node::Empty, len: 0 }
    }

    /// Bulk-build from `(key, value_hash)` pairs (one hash per node instead
    /// of O(log n) per insert — use for genesis and state-sync install).
    /// Later duplicates of a key win.
    pub fn build(entries: impl IntoIterator<Item = (String, Hash)>) -> Self {
        let mut leaves: Vec<(Hash, String, Hash)> = entries
            .into_iter()
            .map(|(k, vh)| (key_path(&k), k, vh))
            .collect();
        leaves.sort_by_key(|l| l.0 .0);
        leaves.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // Keep the later insertion, matching insert-loop semantics.
                earlier.2 = later.2;
                std::mem::swap(&mut earlier.1, &mut later.1);
                true
            } else {
                false
            }
        });
        let len = leaves.len();
        let root = Self::build_node(&mut leaves[..]);
        SparseMerkleTree { root, len }
    }

    fn build_node(leaves: &mut [(Hash, String, Hash)]) -> Node {
        match leaves {
            [] => Node::Empty,
            [(path, key, vhash)] => {
                let hash = leaf_hash(path, vhash);
                Node::Leaf(Box::new(Leaf {
                    path: *path,
                    key: std::mem::take(key),
                    vhash: *vhash,
                    hash,
                }))
            }
            _ => {
                // Sorted slice: the crit bit is the first bit where the
                // first and last path differ.
                let first = leaves.first().expect("non-empty").0;
                let last = leaves.last().expect("non-empty").0;
                let bit = first_diff_bit(&first, &last).expect("distinct paths");
                let split = leaves.partition_point(|(p, _, _)| path_bit(p, bit) == 0);
                let (l, r) = leaves.split_at_mut(split);
                let left = Self::build_node(l);
                let right = Self::build_node(r);
                let hash = sha256_parts(&[&[0x01], &left.hash().0, &right.hash().0]);
                Node::Branch(Box::new(Branch { bit, hash, children: [left, right] }))
            }
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root hash ([`Hash::ZERO`] when empty).
    pub fn root_hash(&self) -> Hash {
        self.root.hash()
    }

    /// The value hash stored for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Hash> {
        let path = key_path(key);
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return None,
                Node::Leaf(l) => return (l.path == path).then_some(&l.vhash),
                Node::Branch(b) => node = &b.children[path_bit(&path, b.bit)],
            }
        }
    }

    /// Insert or update `key` with `value_hash`. O(log n) hashes.
    pub fn insert(&mut self, key: &str, vhash: Hash) {
        let path = key_path(key);
        // Find the leaf the path routes to (the crit-bit candidate).
        let mut node = &self.root;
        let existing = loop {
            match node {
                Node::Empty => break None,
                Node::Leaf(l) => break Some(l.path),
                Node::Branch(b) => node = &b.children[path_bit(&path, b.bit)],
            }
        };
        match existing {
            None => {
                debug_assert!(matches!(self.root, Node::Empty));
                let hash = leaf_hash(&path, &vhash);
                self.root = Node::Leaf(Box::new(Leaf {
                    path,
                    key: key.to_string(),
                    vhash,
                    hash,
                }));
                self.len = 1;
            }
            Some(lpath) if lpath == path => {
                Self::update_rec(&mut self.root, &path, &vhash);
            }
            Some(lpath) => {
                let crit = first_diff_bit(&path, &lpath).expect("paths differ");
                Self::splice_rec(&mut self.root, path, key, vhash, crit);
                self.len += 1;
            }
        }
    }

    fn update_rec(node: &mut Node, path: &Hash, vhash: &Hash) {
        match node {
            Node::Leaf(l) => {
                debug_assert_eq!(l.path, *path);
                l.vhash = *vhash;
                l.hash = leaf_hash(path, vhash);
            }
            Node::Branch(b) => {
                let dir = path_bit(path, b.bit);
                Self::update_rec(&mut b.children[dir], path, vhash);
                b.hash = sha256_parts(&[
                    &[0x01],
                    &b.children[0].hash().0,
                    &b.children[1].hash().0,
                ]);
            }
            Node::Empty => unreachable!("update_rec only reaches live leaves"),
        }
    }

    fn splice_rec(node: &mut Node, path: Hash, key: &str, vhash: Hash, crit: u16) {
        match node {
            Node::Branch(b) if b.bit < crit => {
                let dir = path_bit(&path, b.bit);
                Self::splice_rec(&mut b.children[dir], path, key, vhash, crit);
                b.hash = sha256_parts(&[
                    &[0x01],
                    &b.children[0].hash().0,
                    &b.children[1].hash().0,
                ]);
            }
            _ => {
                // Splice a new branch at `crit` above the current node.
                let old = std::mem::take(node);
                let hash = leaf_hash(&path, &vhash);
                let new_leaf = Node::Leaf(Box::new(Leaf {
                    path,
                    key: key.to_string(),
                    vhash,
                    hash,
                }));
                let dir = path_bit(&path, crit);
                let mut children = [Node::Empty, Node::Empty];
                children[dir] = new_leaf;
                children[1 - dir] = old;
                let hash = sha256_parts(&[
                    &[0x01],
                    &children[0].hash().0,
                    &children[1].hash().0,
                ]);
                *node = Node::Branch(Box::new(Branch { bit: crit, hash, children }));
            }
        }
    }

    /// Remove `key`. Returns whether it was present. O(log n) hashes.
    pub fn remove(&mut self, key: &str) -> bool {
        let path = key_path(key);
        let removed = Self::remove_rec(&mut self.root, &path);
        if removed {
            self.len -= 1;
        }
        removed
    }

    fn remove_rec(node: &mut Node, path: &Hash) -> bool {
        match node {
            Node::Empty => false,
            Node::Leaf(l) => {
                if l.path == *path {
                    *node = Node::Empty;
                    true
                } else {
                    false
                }
            }
            Node::Branch(b) => {
                let dir = path_bit(path, b.bit);
                if !Self::remove_rec(&mut b.children[dir], path) {
                    return false;
                }
                if matches!(b.children[dir], Node::Empty) {
                    // Collapse the branch: the sibling takes its place.
                    let sibling = std::mem::take(&mut b.children[1 - dir]);
                    *node = sibling;
                } else {
                    b.hash = sha256_parts(&[
                        &[0x01],
                        &b.children[0].hash().0,
                        &b.children[1].hash().0,
                    ]);
                }
                true
            }
        }
    }

    /// Produce a proof for `key`: an inclusion proof when the key is live,
    /// otherwise an exclusion proof (verify with [`verify_proof`]).
    pub fn prove(&self, key: &str) -> SmtProof {
        let path = key_path(key);
        let mut siblings = Vec::new();
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => {
                    return SmtProof { leaf_path: None, leaf_vhash: None, siblings };
                }
                Node::Leaf(l) => {
                    return SmtProof {
                        leaf_path: Some(l.path),
                        leaf_vhash: Some(l.vhash),
                        siblings,
                    };
                }
                Node::Branch(b) => {
                    let dir = path_bit(&path, b.bit);
                    siblings.push((b.bit, b.children[1 - dir].hash()));
                    node = &b.children[dir];
                }
            }
        }
    }

    /// Iterate all `(key, value_hash)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Hash)> {
        let mut stack = vec![&self.root];
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            match node {
                Node::Empty => continue,
                Node::Leaf(l) => return Some((l.key.as_str(), &l.vhash)),
                Node::Branch(b) => {
                    stack.push(&b.children[1]);
                    stack.push(&b.children[0]);
                }
            }
        })
    }

    /// The keys whose paths fall in chunk `chunk` of `1 << bits`, in path
    /// order (the unit of state-sync transfer).
    pub fn chunk_keys(&self, chunk: u32, bits: u8) -> Vec<&str> {
        let mut out = Vec::new();
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return out,
                Node::Leaf(l) => {
                    if chunk_of(&l.path, bits) == chunk {
                        out.push(l.key.as_str());
                    }
                    return out;
                }
                Node::Branch(b) => {
                    let rep = *b.children[0].representative().expect("branches are non-empty");
                    if b.bit as u32 >= bits as u32 {
                        if chunk_of(&rep, bits) == chunk {
                            Self::collect_keys(node, &mut out);
                        }
                        return out;
                    }
                    // A bit skipped by path compression may already diverge
                    // from the chunk prefix.
                    if matches!(first_chunk_diff(&rep, chunk, bits), Some(d) if d < b.bit) {
                        return out;
                    }
                    node = &b.children[chunk_bit(chunk, bits, b.bit)];
                }
            }
        }
    }

    fn collect_keys<'a>(node: &'a Node, out: &mut Vec<&'a str>) {
        match node {
            Node::Empty => {}
            Node::Leaf(l) => out.push(l.key.as_str()),
            Node::Branch(b) => {
                Self::collect_keys(&b.children[0], out);
                Self::collect_keys(&b.children[1], out);
            }
        }
    }

    /// Sibling subtree hashes for chunk `chunk` of `1 << bits`: entry `d`
    /// is the hash of the subtree holding every key that shares the chunk's
    /// top `d` bits and differs at bit `d` (ZERO when no such key exists).
    /// Together with the chunk's own leaves this reassembles the root — see
    /// [`verify_chunk`].
    pub fn chunk_proof(&self, chunk: u32, bits: u8) -> Vec<Hash> {
        let mut sibs = vec![Hash::ZERO; bits as usize];
        let mut node = &self.root;
        loop {
            match node {
                Node::Empty => return sibs,
                Node::Leaf(l) => {
                    if chunk_of(&l.path, bits) != chunk {
                        let d = first_chunk_diff(&l.path, chunk, bits)
                            .expect("differs within prefix");
                        sibs[d as usize] = l.hash;
                    }
                    return sibs;
                }
                Node::Branch(b) => {
                    let rep = *b.children[0].representative().expect("branches are non-empty");
                    if b.bit as u32 >= bits as u32 {
                        if chunk_of(&rep, bits) != chunk {
                            let d = first_chunk_diff(&rep, chunk, bits)
                                .expect("differs within prefix");
                            sibs[d as usize] = b.hash;
                        }
                        return sibs;
                    }
                    // A skipped bit may already diverge from the chunk.
                    if let Some(d) = first_chunk_diff(&rep, chunk, bits) {
                        if d < b.bit {
                            sibs[d as usize] = b.hash;
                            return sibs;
                        }
                    }
                    let dir = chunk_bit(chunk, bits, b.bit);
                    sibs[b.bit as usize] = b.children[1 - dir].hash();
                    node = &b.children[dir];
                }
            }
        }
    }
}

/// First bit (0 = most significant) where two paths differ.
fn first_diff_bit(a: &Hash, b: &Hash) -> Option<u16> {
    for i in 0..32 {
        let x = a.0[i] ^ b.0[i];
        if x != 0 {
            return Some((i * 8) as u16 + x.leading_zeros() as u16);
        }
    }
    None
}

/// First bit in `0..bits` where `path` differs from the chunk prefix.
fn first_chunk_diff(path: &Hash, chunk: u32, bits: u8) -> Option<u16> {
    (0..bits as u16).find(|&d| path_bit(path, d) != chunk_bit(chunk, bits, d))
}

/// Verify an [`SmtProof`] for `key` against `root`.
///
/// `expected` is `Some(value_hash)` for an inclusion claim and `None` for an
/// exclusion claim ("`key` is not in the state committed by `root`").
pub fn verify_proof(root: &Hash, key: &str, expected: Option<&Hash>, proof: &SmtProof) -> bool {
    let path = key_path(key);
    let (Some(lpath), Some(lvhash)) = (proof.leaf_path, proof.leaf_vhash) else {
        // Empty-tree form: only valid as exclusion from the zero root.
        return expected.is_none() && proof.siblings.is_empty() && *root == Hash::ZERO;
    };
    match expected {
        Some(vh) => {
            if lpath != path || lvhash != *vh {
                return false;
            }
        }
        None => {
            if lpath == path {
                return false;
            }
            // The exhibited leaf must occupy the key's position: the key's
            // path must route identically at every branch on the proof.
            if !proof.siblings.iter().all(|(bit, _)| {
                *bit < 256 && path_bit(&path, *bit) == path_bit(&lpath, *bit)
            }) {
                return false;
            }
        }
    }
    // Bits must strictly increase (each branch deeper than its parent).
    if proof.siblings.windows(2).any(|w| w[0].0 >= w[1].0)
        || proof.siblings.iter().any(|(bit, _)| *bit >= 256)
    {
        return false;
    }
    let mut acc = leaf_hash(&lpath, &lvhash);
    for (bit, sib) in proof.siblings.iter().rev() {
        acc = if path_bit(&lpath, *bit) == 0 {
            sha256_parts(&[&[0x01], &acc.0, &sib.0])
        } else {
            sha256_parts(&[&[0x01], &sib.0, &acc.0])
        };
    }
    acc == *root
}

/// Verify that `entries` is the complete leaf set of chunk `chunk` (of
/// `1 << bits`) in the state committed by `root`.
///
/// `entries` are `(path, value_hash)` pairs sorted strictly by path (the
/// transfer layer recomputes both from the raw key/value payload, so a
/// tampered, truncated, or padded chunk changes a hash and fails here).
/// `siblings` is the output of [`SparseMerkleTree::chunk_proof`].
pub fn verify_chunk(
    root: &Hash,
    chunk: u32,
    bits: u8,
    entries: &[(Hash, Hash)],
    siblings: &[Hash],
) -> bool {
    if siblings.len() != bits as usize || bits > 32 {
        return false;
    }
    if entries
        .windows(2)
        .any(|w| w[0].0 .0 >= w[1].0 .0)
    {
        return false; // unsorted or duplicate paths
    }
    if entries.iter().any(|(p, _)| chunk_of(p, bits) != chunk) {
        return false; // leaf outside the claimed range
    }
    let mut acc = subtree_from_leaves(entries, bits as u16);
    for d in (0..bits as u16).rev() {
        let sib = siblings[d as usize];
        let dir = chunk_bit(chunk, bits, d);
        acc = if dir == 0 {
            combine(&acc, &sib)
        } else {
            combine(&sib, &acc)
        };
    }
    acc == *root
}

/// Hash of the subtree holding exactly `leaves` (sorted by path), rooted at
/// depth `depth` — replicating the path-compressed hashing rules.
fn subtree_from_leaves(leaves: &[(Hash, Hash)], depth: u16) -> Hash {
    match leaves {
        [] => Hash::ZERO,
        [(path, vhash)] => leaf_hash(path, vhash),
        _ => {
            debug_assert!(depth < 256, "distinct sorted paths diverge before depth 256");
            let split = leaves.partition_point(|(p, _)| path_bit(p, depth) == 0);
            let left = subtree_from_leaves(&leaves[..split], depth + 1);
            let right = subtree_from_leaves(&leaves[split..], depth + 1);
            combine(&left, &right)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vh(i: u64) -> Hash {
        sha256_parts(&[&i.to_be_bytes()])
    }

    fn tree_of(n: u64) -> SparseMerkleTree {
        let mut t = SparseMerkleTree::new();
        for i in 0..n {
            t.insert(&format!("key-{i}"), vh(i));
        }
        t
    }

    #[test]
    fn empty_tree_zero_root() {
        let t = SparseMerkleTree::new();
        assert_eq!(t.root_hash(), Hash::ZERO);
        assert!(t.is_empty());
        let p = t.prove("missing");
        assert!(verify_proof(&t.root_hash(), "missing", None, &p));
    }

    #[test]
    fn insert_get_update_remove() {
        let mut t = SparseMerkleTree::new();
        t.insert("a", vh(1));
        assert_eq!(t.get("a"), Some(&vh(1)));
        let r1 = t.root_hash();
        t.insert("a", vh(2));
        assert_eq!(t.get("a"), Some(&vh(2)));
        assert_ne!(t.root_hash(), r1);
        assert_eq!(t.len(), 1);
        assert!(t.remove("a"));
        assert!(!t.remove("a"));
        assert_eq!(t.root_hash(), Hash::ZERO);
    }

    #[test]
    fn root_matches_bulk_build() {
        let t = tree_of(200);
        let bulk = SparseMerkleTree::build((0..200u64).map(|i| (format!("key-{i}"), vh(i))));
        assert_eq!(t.root_hash(), bulk.root_hash());
        assert_eq!(bulk.len(), 200);
    }

    #[test]
    fn bulk_build_last_duplicate_wins() {
        let bulk = SparseMerkleTree::build(vec![
            ("k".to_string(), vh(1)),
            ("other".to_string(), vh(9)),
            ("k".to_string(), vh(2)),
        ]);
        assert_eq!(bulk.len(), 2);
        assert_eq!(bulk.get("k"), Some(&vh(2)));
    }

    #[test]
    fn insert_order_does_not_matter() {
        let mut a = SparseMerkleTree::new();
        let mut b = SparseMerkleTree::new();
        for i in 0..50u64 {
            a.insert(&format!("key-{i}"), vh(i));
        }
        for i in (0..50u64).rev() {
            b.insert(&format!("key-{i}"), vh(i));
        }
        assert_eq!(a.root_hash(), b.root_hash());
    }

    #[test]
    fn inclusion_proofs_verify() {
        let t = tree_of(64);
        for i in 0..64u64 {
            let key = format!("key-{i}");
            let p = t.prove(&key);
            assert!(verify_proof(&t.root_hash(), &key, Some(&vh(i)), &p), "key {i}");
            // Wrong value hash fails.
            assert!(!verify_proof(&t.root_hash(), &key, Some(&vh(i + 1)), &p));
            // Inclusion proof is not an exclusion proof.
            assert!(!verify_proof(&t.root_hash(), &key, None, &p));
        }
    }

    #[test]
    fn exclusion_proofs_verify() {
        let t = tree_of(64);
        for i in 0..32u64 {
            let key = format!("absent-{i}");
            let p = t.prove(&key);
            assert!(verify_proof(&t.root_hash(), &key, None, &p), "key {key}");
            // An exclusion proof cannot claim inclusion.
            assert!(!verify_proof(&t.root_hash(), &key, Some(&vh(i)), &p));
        }
    }

    #[test]
    fn exclusion_proof_rejected_for_present_key() {
        let t = tree_of(64);
        // Take the proof for an absent key and try to use it to claim a
        // *present* key is absent: the routing-consistency check fails.
        let p = t.prove("absent-1");
        for i in 0..64u64 {
            assert!(!verify_proof(&t.root_hash(), &format!("key-{i}"), None, &p));
        }
    }

    #[test]
    fn tampered_proof_rejected() {
        let t = tree_of(16);
        let mut p = t.prove("key-3");
        if let Some((_, sib)) = p.siblings.first_mut() {
            sib.0[0] ^= 1;
        }
        assert!(!verify_proof(&t.root_hash(), "key-3", Some(&vh(3)), &p));
    }

    #[test]
    fn proof_does_not_transfer_between_roots() {
        let a = tree_of(16);
        let b = tree_of(17);
        let p = a.prove("key-3");
        assert!(!verify_proof(&b.root_hash(), "key-3", Some(&vh(3)), &p));
    }

    #[test]
    fn chunks_partition_all_keys() {
        let t = tree_of(100);
        for bits in [0u8, 1, 2, 3, 5] {
            let mut seen = 0usize;
            for chunk in 0..(1u32 << bits) {
                seen += t.chunk_keys(chunk, bits).len();
            }
            assert_eq!(seen, 100, "bits {bits}");
        }
    }

    #[test]
    fn chunks_verify_and_reassemble_root() {
        let t = tree_of(100);
        for bits in [0u8, 1, 3, 4] {
            for chunk in 0..(1u32 << bits) {
                let keys = t.chunk_keys(chunk, bits);
                let entries: Vec<(Hash, Hash)> = keys
                    .iter()
                    .map(|k| (key_path(k), *t.get(k).expect("live")))
                    .collect();
                let proof = t.chunk_proof(chunk, bits);
                assert!(
                    verify_chunk(&t.root_hash(), chunk, bits, &entries, &proof),
                    "bits {bits} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn tampered_chunk_rejected() {
        let t = tree_of(50);
        let bits = 2u8;
        // Find a non-empty chunk.
        let chunk = (0..4u32)
            .find(|c| !t.chunk_keys(*c, bits).is_empty())
            .expect("some chunk non-empty");
        let keys = t.chunk_keys(chunk, bits);
        let mut entries: Vec<(Hash, Hash)> = keys
            .iter()
            .map(|k| (key_path(k), *t.get(k).expect("live")))
            .collect();
        let proof = t.chunk_proof(chunk, bits);
        // Alter one value hash.
        entries[0].1 .0[0] ^= 1;
        assert!(!verify_chunk(&t.root_hash(), chunk, bits, &entries, &proof));
        entries[0].1 .0[0] ^= 1;
        // Drop one leaf.
        let dropped = entries.split_off(entries.len() - 1);
        let ok_short = verify_chunk(&t.root_hash(), chunk, bits, &entries, &proof);
        assert!(!ok_short || keys.len() == 1);
        entries.extend(dropped);
        // Present the chunk under the wrong index.
        assert!(!verify_chunk(&t.root_hash(), chunk ^ 1, bits, &entries, &proof));
    }

    #[test]
    fn chunk_of_takes_top_bits() {
        let mut p = Hash::ZERO;
        p.0[0] = 0b1010_0000;
        assert_eq!(chunk_of(&p, 1), 1);
        assert_eq!(chunk_of(&p, 2), 0b10);
        assert_eq!(chunk_of(&p, 4), 0b1010);
        assert_eq!(chunk_of(&p, 0), 0);
    }

    #[test]
    fn iter_yields_all_pairs() {
        let t = tree_of(30);
        let mut keys: Vec<String> = t.iter().map(|(k, _)| k.to_string()).collect();
        keys.sort();
        let mut want: Vec<String> = (0..30).map(|i| format!("key-{i}")).collect();
        want.sort();
        assert_eq!(keys, want);
    }

    #[test]
    fn clone_preserves_root() {
        let t = tree_of(40);
        let c = t.clone();
        assert_eq!(t.root_hash(), c.root_hash());
        assert_eq!(t.len(), c.len());
    }

    proptest::proptest! {
        /// Random op sequences: the incremental tree equals a bulk rebuild
        /// of the surviving reference map, regardless of operation order.
        #[test]
        fn incremental_equals_reference(
            ops in proptest::collection::vec((0u8..3, 0u64..40, 0u64..1000), 1..120)
        ) {
            let mut t = SparseMerkleTree::new();
            let mut reference = std::collections::BTreeMap::new();
            for (kind, k, v) in ops {
                let key = format!("k{k}");
                match kind {
                    0 | 1 => {
                        t.insert(&key, vh(v));
                        reference.insert(key, vh(v));
                    }
                    _ => {
                        let a = t.remove(&key);
                        let b = reference.remove(&key).is_some();
                        proptest::prop_assert_eq!(a, b);
                    }
                }
            }
            let bulk = SparseMerkleTree::build(
                reference.iter().map(|(k, v)| (k.clone(), *v)),
            );
            proptest::prop_assert_eq!(t.root_hash(), bulk.root_hash());
            proptest::prop_assert_eq!(t.len(), reference.len());
        }

        /// Chunk decomposition always reassembles the root.
        #[test]
        fn chunks_reassemble(n in 0usize..60, bits in 0u8..5) {
            let t = SparseMerkleTree::build(
                (0..n as u64).map(|i| (format!("key-{i}"), vh(i))),
            );
            for chunk in 0..(1u32 << bits) {
                let entries: Vec<(Hash, Hash)> = t
                    .chunk_keys(chunk, bits)
                    .iter()
                    .map(|k| (key_path(k), *t.get(k).expect("live")))
                    .collect();
                let proof = t.chunk_proof(chunk, bits);
                proptest::prop_assert!(
                    verify_chunk(&t.root_hash(), chunk, bits, &entries, &proof)
                );
            }
        }
    }
}
