//! Signed checkpoints over `(height, state_root)`.
//!
//! Every `K` blocks a replica votes on the state root it computed at that
//! height. A quorum of matching votes forms a [`CheckpointCert`] — the
//! anchor that (a) gates log/state pruning (PBFT stable checkpoints) and
//! (b) lets a lagging or joining replica verify fetched state chunks
//! against a root it can trust without replaying history.

use std::collections::HashMap;

use ahl_crypto::{sha256_parts, Hash, KeyId, KeyRegistry, Signature, SigningKey};

/// Domain-separated digest a checkpoint vote signs: `H("ahl-ckpt" ‖ seq ‖ root)`.
pub fn checkpoint_digest(seq: u64, root: &Hash) -> Hash {
    sha256_parts(&[b"ahl-ckpt", &seq.to_be_bytes(), &root.0])
}

/// One replica's vote that the state root at height `seq` is `root`.
#[derive(Clone, Debug)]
pub struct CheckpointVote {
    /// Checkpointed sequence (block height).
    pub seq: u64,
    /// SMT state root at that height.
    pub root: Hash,
    /// Voting replica (group index).
    pub replica: usize,
    /// Signature over [`checkpoint_digest`] (`None` in cost-only runs).
    pub sig: Option<Signature>,
}

impl CheckpointVote {
    /// Create and sign a vote (`key = None` skips the signature, matching
    /// cost-only crypto mode).
    pub fn new(seq: u64, root: Hash, replica: usize, key: Option<&SigningKey>) -> Self {
        let sig = key.map(|k| k.sign(&checkpoint_digest(seq, &root)));
        CheckpointVote { seq, root, replica, sig }
    }

    /// Verify the vote signature (`true` when unsigned — cost-only mode).
    /// The signature must come from the *claimed* replica's key (group
    /// index i holds `KeyId(i)` in the committee builders) — otherwise one
    /// Byzantine node could replay its own signature under many indices.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        match &self.sig {
            Some(sig) => {
                sig.signer == KeyId(self.replica as u64)
                    && registry.verify(&checkpoint_digest(self.seq, &self.root), sig)
            }
            None => true,
        }
    }
}

/// A quorum certificate over `(seq, root)`: proof that the committee agreed
/// on the state at that height. Pruning and state sync both anchor here.
#[derive(Clone, Debug)]
pub struct CheckpointCert {
    /// Certified sequence (block height).
    pub seq: u64,
    /// Certified state root.
    pub root: Hash,
    /// The votes backing the certificate: `(replica, signature)`.
    pub votes: Vec<(usize, Option<Signature>)>,
}

impl CheckpointCert {
    /// Verify the certificate: at least `quorum` distinct signers, and —
    /// when `registry` is given (real-crypto mode) — a valid signature from
    /// each of them over [`checkpoint_digest`].
    pub fn verify(&self, quorum: usize, registry: Option<&KeyRegistry>) -> bool {
        let mut signers: Vec<usize> = self.votes.iter().map(|(r, _)| *r).collect();
        signers.sort_unstable();
        signers.dedup();
        if signers.len() < quorum {
            return false;
        }
        match registry {
            None => true,
            Some(reg) => {
                // Every vote signs the same digest, so the whole set goes
                // through the batched verifier: the digest is computed once
                // and the signer ↔ claimed-index binding (a single
                // Byzantine signer cannot lend its one genuine signature to
                // every slot of a forged quorum) is enforced per pair.
                let mut pairs = Vec::with_capacity(self.votes.len());
                for (replica, sig) in &self.votes {
                    match sig {
                        Some(s) => pairs.push((KeyId(*replica as u64), s)),
                        None => return false,
                    }
                }
                reg.verify_batch(&checkpoint_digest(self.seq, &self.root), pairs)
            }
        }
    }

    /// Approximate wire size in bytes.
    pub fn wire_size(&self) -> usize {
        48 + 72 * self.votes.len()
    }
}

/// Collects checkpoint votes and forms certificates at quorum.
#[derive(Clone, Debug, Default)]
pub struct CheckpointTracker {
    votes: HashMap<u64, HashMap<usize, (Hash, Option<Signature>)>>,
    latest: Option<CheckpointCert>,
}

impl CheckpointTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a vote. Returns the newly formed certificate when this vote
    /// completes a quorum at a height above the latest certified one.
    /// Signature validity is the caller's concern (votes arrive through the
    /// consensus layer, which verifies and charges the cost).
    pub fn record(&mut self, vote: CheckpointVote, quorum: usize) -> Option<CheckpointCert> {
        if self.latest.as_ref().is_some_and(|c| vote.seq <= c.seq) {
            return None;
        }
        let votes = self.votes.entry(vote.seq).or_default();
        votes.insert(vote.replica, (vote.root, vote.sig));
        let matching = votes.values().filter(|(r, _)| *r == vote.root).count();
        if matching < quorum {
            return None;
        }
        // Sort by replica index: the vote map is a HashMap, and its
        // iteration order must not leak into the certificate — certs are
        // persisted in the manifest and compared across replicas, so two
        // nodes seeing the same votes in different arrival orders must
        // still emit byte-identical certificates.
        let mut backing: Vec<(usize, Option<Signature>)> = votes
            .iter()
            .filter(|(_, (r, _))| *r == vote.root)
            .map(|(replica, (_, sig))| (*replica, *sig))
            .collect();
        backing.sort_by_key(|(replica, _)| *replica);
        let cert = CheckpointCert { seq: vote.seq, root: vote.root, votes: backing };
        self.latest = Some(cert.clone());
        self.votes.retain(|s, _| *s > cert.seq);
        Some(cert)
    }

    /// The most recent certificate formed, if any.
    pub fn latest(&self) -> Option<&CheckpointCert> {
        self.latest.as_ref()
    }

    /// Adopt an externally received certificate if newer (a synced replica
    /// learns the committee's checkpoint from the manifest).
    pub fn adopt(&mut self, cert: CheckpointCert) {
        if self.latest.as_ref().is_none_or(|c| cert.seq > c.seq) {
            self.votes.retain(|s, _| *s > cert.seq);
            self.latest = Some(cert);
        }
    }

    /// Drop pending votes at or below `seq`.
    pub fn prune_below(&mut self, seq: u64) {
        self.votes.retain(|s, _| *s > seq);
    }

    /// Number of heights with pending (uncertified) votes.
    pub fn pending_heights(&self) -> usize {
        self.votes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root(x: u8) -> Hash {
        let mut h = Hash::ZERO;
        h.0[0] = x;
        h
    }

    #[test]
    fn quorum_of_matching_votes_forms_cert() {
        let mut t = CheckpointTracker::new();
        assert!(t.record(CheckpointVote::new(10, root(1), 0, None), 2).is_none());
        // A conflicting vote does not count toward the quorum.
        assert!(t.record(CheckpointVote::new(10, root(9), 1, None), 2).is_none());
        let cert = t
            .record(CheckpointVote::new(10, root(1), 2, None), 2)
            .expect("quorum reached");
        assert_eq!(cert.seq, 10);
        assert_eq!(cert.root, root(1));
        assert_eq!(cert.votes.len(), 2);
        assert!(cert.verify(2, None));
        assert!(!cert.verify(3, None));
    }

    #[test]
    fn older_heights_ignored_after_cert() {
        let mut t = CheckpointTracker::new();
        t.record(CheckpointVote::new(10, root(1), 0, None), 1);
        assert!(t.record(CheckpointVote::new(5, root(2), 1, None), 1).is_none());
        assert_eq!(t.latest().expect("cert").seq, 10);
    }

    #[test]
    fn signed_votes_verify_and_tampered_certs_fail() {
        let mut reg = KeyRegistry::new();
        let keys: Vec<SigningKey> = (0..3).map(|i| reg.generate(i)).collect();
        let mut t = CheckpointTracker::new();
        let mut cert = None;
        for (i, k) in keys.iter().enumerate() {
            let vote = CheckpointVote::new(7, root(4), i, Some(k));
            assert!(vote.verify(&reg));
            cert = t.record(vote, 3).or(cert);
        }
        let cert = cert.expect("quorum of 3");
        assert!(cert.verify(3, Some(&reg)));
        // Tampering with the certified root invalidates every signature.
        let mut bad = cert.clone();
        bad.root = root(5);
        assert!(!bad.verify(3, Some(&reg)));
        // A cert missing signatures fails under real crypto.
        let mut unsigned = cert.clone();
        unsigned.votes[0].1 = None;
        assert!(!unsigned.verify(3, Some(&reg)));
        // Duplicate signers cannot fake a quorum.
        let mut dup = cert.clone();
        let first = dup.votes[0];
        dup.votes = vec![first, first, first];
        assert!(!dup.verify(3, Some(&reg)));
        // One genuine signature replayed under other replicas' indices
        // cannot fake a quorum either (signer ↔ claimed-index binding).
        let own_sig = keys[0].sign(&checkpoint_digest(7, &root(4)));
        let forged = CheckpointCert {
            seq: 7,
            root: root(4),
            votes: vec![(0, Some(own_sig)), (1, Some(own_sig)), (2, Some(own_sig))],
        };
        assert!(!forged.verify(3, Some(&reg)));
        // And a vote claiming someone else's index fails verification.
        let impostor = CheckpointVote { seq: 7, root: root(4), replica: 2, sig: Some(own_sig) };
        assert!(!impostor.verify(&reg));
    }

    #[test]
    fn cert_vote_order_is_arrival_order_independent() {
        // The tracker's vote buffer is a HashMap; the certificate it emits
        // is durable and compared across replicas, so its vote order must
        // be canonical (sorted by replica) regardless of arrival order.
        let mut reg = KeyRegistry::new();
        let keys: Vec<SigningKey> = (0..5).map(|i| reg.generate(i)).collect();
        let forward: Vec<usize> = (0..5).collect();
        let backward: Vec<usize> = (0..5).rev().collect();
        let shuffled: Vec<usize> = vec![2, 0, 4, 1, 3];
        let mut certs = Vec::new();
        for order in [&forward, &backward, &shuffled] {
            let mut t = CheckpointTracker::new();
            let mut cert = None;
            for &i in order {
                let v = CheckpointVote::new(12, root(6), i, Some(&keys[i]));
                cert = t.record(v, 5).or(cert);
            }
            certs.push(cert.expect("quorum of 5"));
        }
        let canonical: Vec<Vec<u8>> = certs[0]
            .votes
            .iter()
            .map(|(r, s)| {
                let mut b = r.to_be_bytes().to_vec();
                b.extend_from_slice(&s.expect("signed").to_bytes());
                b
            })
            .collect();
        for cert in &certs {
            assert_eq!(
                cert.votes.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
                vec![0, 1, 2, 3, 4]
            );
            let bytes: Vec<Vec<u8>> = cert
                .votes
                .iter()
                .map(|(r, s)| {
                    let mut b = r.to_be_bytes().to_vec();
                    b.extend_from_slice(&s.expect("signed").to_bytes());
                    b
                })
                .collect();
            assert_eq!(bytes, canonical);
            assert!(cert.verify(5, Some(&reg)));
        }
    }

    #[test]
    fn adopt_keeps_newest() {
        let mut t = CheckpointTracker::new();
        t.adopt(CheckpointCert { seq: 20, root: root(1), votes: vec![(0, None)] });
        t.adopt(CheckpointCert { seq: 10, root: root(2), votes: vec![(0, None)] });
        assert_eq!(t.latest().expect("cert").seq, 20);
    }
}
