//! # ahl-store — authenticated state, checkpoints, and state sync
//!
//! The building block the paper's epoch reconfiguration (§5.3) leans on but
//! the seed reproduction only simulated: state a node can *verify*, not
//! just copy. Three pieces:
//!
//! * [`SparseMerkleTree`] — a path-compressed sparse Merkle tree over
//!   `sha256(key)` paths. Every ledger mutation updates O(log n) nodes, the
//!   root commits to the entire key-value state, and any key supports an
//!   inclusion or exclusion proof ([`SmtProof`], [`verify_proof`]).
//! * [`CheckpointVote`] / [`CheckpointCert`] — every `K` blocks replicas
//!   sign `(height, state_root)`; a quorum of matching votes forms a
//!   certificate that gates pruning and anchors state transfer.
//! * [`SyncSession`] — a lagging or joining replica fetches the latest
//!   certificate, then fixed key-range chunks, verifying each against the
//!   certified root ([`verify_chunk`]) before accepting it, with resumable
//!   per-chunk progress.
//!
//! ## Root vs rolling digest
//!
//! The seed's `StateStore` kept a *rolling* digest — a hash chain over the
//! mutation history. That commits to how the state was reached but cannot
//! prove anything about its *content*: two replicas with identical state
//! reached by different histories disagree, and no key can be proven in or
//! out. The SMT root replaces it: order-insensitive (any op sequence
//! producing the same map produces the same root), per-key provable, and
//! chunk-transferable. `ahl-ledger` keeps its flat `HashMap` as the read
//! cache; this crate owns the authenticated index.
//!
//! ```
//! use ahl_store::{SparseMerkleTree, verify_proof};
//! use ahl_crypto::sha256;
//!
//! let mut smt = SparseMerkleTree::new();
//! smt.insert("alice", sha256(b"100"));
//! smt.insert("bob", sha256(b"50"));
//! let root = smt.root_hash();
//!
//! // Prove alice's balance hash is committed by the root …
//! let proof = smt.prove("alice");
//! assert!(verify_proof(&root, "alice", Some(&sha256(b"100")), &proof));
//! // … and that carol has no account at all (exclusion).
//! let absent = smt.prove("carol");
//! assert!(verify_proof(&root, "carol", None, &absent));
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod smt;
mod sync;

pub use checkpoint::{
    checkpoint_digest, CheckpointCert, CheckpointTracker, CheckpointVote,
};
pub use smt::{
    chunk_of, combine, key_path, leaf_hash, verify_chunk, verify_proof, SmtProof,
    SparseMerkleTree,
};
pub use sync::{chunk_bits_for, SyncError, SyncProgress, SyncSession};

use ahl_crypto::Hash;

/// A value that can live under the authenticated state tree: all the tree
/// needs is a collision-resistant digest of the value's content.
///
/// Implemented by `ahl_ledger::Value`; kept as a trait here so the store
/// layer stays below the ledger in the dependency order.
pub trait StateValue {
    /// Canonical content digest of the value (the SMT leaf value hash).
    fn leaf_digest(&self) -> Hash;
}
