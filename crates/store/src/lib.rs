//! # ahl-store — authenticated state, snapshots, checkpoints, and state sync
//!
//! The building block the paper's epoch reconfiguration (§5.3) leans on but
//! the seed reproduction only simulated: state a node can *verify*, not
//! just copy. Three pieces:
//!
//! * [`SparseMerkleTree`] — a **persistent** (copy-on-write,
//!   structurally-shared) path-compressed sparse Merkle tree over
//!   `sha256(key)` paths, generic over the leaf value. Every ledger
//!   mutation updates O(log n) nodes, the root commits to the entire
//!   key-value state, any key supports an inclusion or exclusion proof
//!   ([`SmtProof`], [`verify_proof`]) — and `clone()` is an **O(1)
//!   snapshot**: an immutable handle whose root, proofs, and chunk proofs
//!   stay byte-identical while the live tree diverges. Retained snapshots
//!   power [`SparseMerkleTree::diff_chunks`], the changed-chunk report
//!   behind incremental sync.
//! * [`CheckpointVote`] / [`CheckpointCert`] — every `K` blocks replicas
//!   sign `(height, state_root)`; a quorum of matching votes forms a
//!   certificate that gates pruning and anchors state transfer.
//! * [`SyncSession`] — a lagging or joining replica fetches the latest
//!   certificate, then key-range chunks (in any order, from several peers
//!   in parallel), verifying each against the certified root
//!   ([`verify_chunk`]) before accepting it. A **full** plan fetches every
//!   chunk; a **diff** plan ([`SyncSession::new_diff`]) fetches only the
//!   chunks changed since an older certified root the requester still
//!   holds, falling back to a full transfer when the server no longer
//!   retains that root.
//!
//! ## Root vs rolling digest
//!
//! The seed's `StateStore` kept a *rolling* digest — a hash chain over the
//! mutation history. That commits to how the state was reached but cannot
//! prove anything about its *content*: two replicas with identical state
//! reached by different histories disagree, and no key can be proven in or
//! out. The SMT root replaces it: order-insensitive (any op sequence
//! producing the same map produces the same root), per-key provable, and
//! chunk-transferable. `ahl-ledger` keeps its flat `HashMap` as the read
//! cache; this crate owns the authenticated index.
//!
//! ## Quickstart: snapshots, proofs, and a diff transfer
//!
//! ```
//! use ahl_store::{verify_chunk, verify_proof, SparseMerkleTree, SyncSession};
//! use ahl_store::{key_path, CheckpointCert};
//! use ahl_crypto::sha256;
//!
//! let mut smt = SparseMerkleTree::new();
//! smt.insert("alice", sha256(b"100"));
//! smt.insert("bob", sha256(b"50"));
//!
//! // An O(1) snapshot: a frozen handle onto the current tree.
//! let snap = smt.clone();
//! let old_root = snap.root_hash();
//!
//! // Prove alice's balance hash is committed by the root …
//! let proof = snap.prove("alice");
//! assert!(verify_proof(&old_root, "alice", Some(&sha256(b"100")), &proof));
//! // … and that carol has no account at all (exclusion).
//! assert!(verify_proof(&old_root, "carol", None, &snap.prove("carol")));
//!
//! // The live tree moves on; the snapshot does not.
//! smt.insert("alice", sha256(b"75"));
//! smt.insert("carol", sha256(b"10"));
//! assert_eq!(snap.root_hash(), old_root);
//!
//! // Incremental sync: a node that still holds `old_root` (certified)
//! // only needs the chunks that changed since.
//! let bits = 2;
//! let changed = snap.diff_chunks(&smt, bits);
//! let cert = CheckpointCert { seq: 1, root: smt.root_hash(), votes: vec![(0, None)] };
//! let mut session: SyncSession<ahl_crypto::Hash> =
//!     SyncSession::new_diff(cert, bits, &changed, 0).unwrap();
//! for &c in &changed {
//!     let entries: Vec<_> = smt
//!         .chunk_entries(c, bits)
//!         .into_iter()
//!         .map(|(k, v)| (k.to_string(), *v))
//!         .collect();
//!     session.accept_chunk(c, entries, &smt.chunk_proof(c, bits)).unwrap();
//! }
//! // Overlay the verified chunks onto the old snapshot: the merged tree
//! // must land exactly on the certified root.
//! let (cert, chunks) = session.into_verified();
//! let mut merged = snap.clone();
//! for (c, entries) in chunks {
//!     let stale: Vec<String> =
//!         merged.chunk_keys(c, bits).iter().map(|k| k.to_string()).collect();
//!     for k in stale {
//!         merged.remove(&k);
//!     }
//!     for (k, v) in entries {
//!         merged.insert(&k, v);
//!     }
//! }
//! assert_eq!(merged.root_hash(), cert.root);
//! # let _ = verify_chunk; let _ = key_path;
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod smt;
mod sync;

pub use checkpoint::{
    checkpoint_digest, CheckpointCert, CheckpointTracker, CheckpointVote,
};
pub use smt::{
    chunk_of, combine, key_path, leaf_hash, verify_chunk, verify_proof, NodeView, SmtProof,
    SparseMerkleTree,
};
pub use sync::{chunk_bits_for, SyncError, SyncProgress, SyncSession, VerifiedChunk};

use ahl_crypto::Hash;

/// A value that can live under the authenticated state tree: all the tree
/// needs is a collision-resistant digest of the value's content.
///
/// Implemented by `ahl_ledger::Value`; kept as a trait here so the store
/// layer stays below the ledger in the dependency order.
pub trait StateValue {
    /// Canonical content digest of the value (the SMT leaf value hash).
    fn leaf_digest(&self) -> Hash;
}

/// A bare hash is its own digest — the classic "authenticated index" shape
/// (`SparseMerkleTree<Hash>`, the default type parameter), where callers
/// keep the actual values elsewhere.
impl StateValue for Hash {
    fn leaf_digest(&self) -> Hash {
        *self
    }
}
