//! Requester-side state-sync session: certificate-anchored, chunked,
//! verified, resumable — full or incremental (diff).
//!
//! A lagging or joining replica (1) obtains the latest [`CheckpointCert`],
//! (2) requests key-range chunks, verifying each against the certified root
//! *before* accepting it, and (3) installs the accumulated state once every
//! planned chunk has verified. Two plans exist:
//!
//! * **full** — every chunk of the key space (`0 .. 1 << bits`); the
//!   verified entries *are* the complete state.
//! * **diff** — only the chunks the server reported as changed relative to
//!   an older certified root the requester still holds
//!   ([`SparseMerkleTree::diff_chunks`]). The requester overlays the
//!   verified chunks onto its retained snapshot; because each fetched chunk
//!   proves against the *new* root and the final merged tree must reproduce
//!   that root exactly, a server that lies about the changed set is caught.
//!
//! Chunks verify independently, so they may be requested **in any order
//! and from several peers in parallel**; the session tracks which planned
//! chunks are still missing, and a failed or unanswered chunk is simply
//! re-requested — possibly from a different peer — without restarting the
//! transfer.
//!
//! [`SparseMerkleTree::diff_chunks`]: crate::SparseMerkleTree::diff_chunks

use std::collections::BTreeMap;

use ahl_crypto::Hash;

use crate::checkpoint::CheckpointCert;
use crate::smt::{key_path, verify_chunk};
use crate::StateValue;

/// Pick the chunk-count exponent so chunks hold about `target` leaves:
/// `ceil(log2(leaves / target))`, clamped to `[0, 16]`.
pub fn chunk_bits_for(leaves: usize, target: usize) -> u8 {
    let target = target.max(1);
    let chunks = leaves.div_ceil(target).max(1);
    (chunks.next_power_of_two().trailing_zeros() as u8).min(16)
}

/// Why a sync step was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The offered certificate does not cover anything newer than what the
    /// requester already has.
    StaleCert {
        /// The requester's current height.
        have: u64,
        /// The certificate's height.
        cert: u64,
    },
    /// The certificate failed quorum/signature verification.
    BadCert,
    /// A chunk outside the transfer plan arrived (wrong index, or a chunk
    /// the diff plan never asked for).
    UnknownChunk {
        /// The chunk that arrived.
        got: u32,
    },
    /// The chunk payload does not verify against the certified root.
    BadProof {
        /// The offending chunk index.
        chunk: u32,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::StaleCert { have, cert } => {
                write!(f, "stale certificate: have seq {have}, cert seq {cert}")
            }
            SyncError::BadCert => write!(f, "certificate failed verification"),
            SyncError::UnknownChunk { got } => {
                write!(f, "chunk {got} is not part of the transfer plan")
            }
            SyncError::BadProof { chunk } => write!(f, "chunk {chunk} failed proof check"),
        }
    }
}

/// Per-session transfer counters (surface into the run's `Stats`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncProgress {
    /// Chunks verified and accepted.
    pub chunks_ok: u64,
    /// Chunks rejected by proof verification.
    pub proof_failures: u64,
    /// Key-value pairs accumulated so far.
    pub leaves: u64,
}

/// One verified chunk's payload: its index and `(key, value)` entries.
pub type VerifiedChunk<V> = (u32, Vec<(String, V)>);

/// A resumable chunked-sync session for value type `V`.
#[derive(Debug)]
pub struct SyncSession<V> {
    cert: CheckpointCert,
    bits: u8,
    /// Chunk indices to fetch, ascending. Full plan: `0 .. 1 << bits`;
    /// diff plan: the server-reported changed chunks.
    plan: Vec<u32>,
    diff: bool,
    /// Verified chunk payloads, keyed by chunk index.
    fetched: BTreeMap<u32, Vec<(String, V)>>,
    progress: SyncProgress,
}

impl<V: StateValue> SyncSession<V> {
    /// Start a full transfer against `cert` with `1 << bits` chunks
    /// (`bits` is clamped to [`chunk_bits_for`]'s maximum of 16 — a
    /// malicious manifest cannot overflow the chunk count). Fails if the
    /// certificate is not ahead of `have_seq` (stale-cert defence: a
    /// malicious or confused server cannot roll the requester back).
    pub fn new_full(cert: CheckpointCert, bits: u8, have_seq: u64) -> Result<Self, SyncError> {
        if cert.seq <= have_seq {
            return Err(SyncError::StaleCert { have: have_seq, cert: cert.seq });
        }
        let bits = bits.min(16);
        Ok(SyncSession {
            cert,
            bits,
            plan: (0..1u32 << bits).collect(),
            diff: false,
            fetched: BTreeMap::new(),
            progress: SyncProgress::default(),
        })
    }

    /// Start an incremental transfer: fetch only `chunks` (the server's
    /// changed-chunk report relative to an older root the requester still
    /// holds). Indices are deduplicated, sorted, and bounded by the chunk
    /// count; an empty plan means the retained state already matches the
    /// certified root and the session completes immediately.
    pub fn new_diff(
        cert: CheckpointCert,
        bits: u8,
        chunks: &[u32],
        have_seq: u64,
    ) -> Result<Self, SyncError> {
        if cert.seq <= have_seq {
            return Err(SyncError::StaleCert { have: have_seq, cert: cert.seq });
        }
        let bits = bits.min(16);
        let mut plan: Vec<u32> = chunks.iter().copied().filter(|c| *c < 1u32 << bits).collect();
        plan.sort_unstable();
        plan.dedup();
        Ok(SyncSession {
            cert,
            bits,
            plan,
            diff: true,
            fetched: BTreeMap::new(),
            progress: SyncProgress::default(),
        })
    }

    /// The certificate this session trusts.
    pub fn cert(&self) -> &CheckpointCert {
        &self.cert
    }

    /// The height the session is syncing to.
    pub fn seq(&self) -> u64 {
        self.cert.seq
    }

    /// Whether this is an incremental (diff) transfer.
    pub fn is_diff(&self) -> bool {
        self.diff
    }

    /// Chunk-count exponent.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Total number of chunks in the plan.
    pub fn total_chunks(&self) -> u32 {
        self.plan.len() as u32
    }

    /// The planned chunks not yet verified, ascending — request these, in
    /// any order, from any peers.
    pub fn missing_chunks(&self) -> Vec<u32> {
        self.plan
            .iter()
            .copied()
            .filter(|c| !self.fetched.contains_key(c))
            .collect()
    }

    /// Whether `chunk` has already been verified and accepted.
    pub fn is_fetched(&self, chunk: u32) -> bool {
        self.fetched.contains_key(&chunk)
    }

    /// True once every planned chunk has been verified and accepted.
    pub fn is_complete(&self) -> bool {
        self.fetched.len() == self.plan.len()
    }

    /// Transfer counters so far.
    pub fn progress(&self) -> SyncProgress {
        self.progress
    }

    /// Verify and accept a chunk (any plan order; duplicates are ignored).
    /// Returns `Ok(true)` once the plan is complete. On
    /// [`SyncError::BadProof`] the chunk stays missing, so the caller
    /// re-requests it — typically from a different peer (resumability).
    pub fn accept_chunk(
        &mut self,
        chunk: u32,
        entries: Vec<(String, V)>,
        proof: &[Hash],
    ) -> Result<bool, SyncError> {
        // `plan` is sorted ascending (both constructors guarantee it).
        if self.plan.binary_search(&chunk).is_err() {
            return Err(SyncError::UnknownChunk { got: chunk });
        }
        if self.fetched.contains_key(&chunk) {
            return Ok(self.is_complete()); // duplicate delivery (retry race)
        }
        let mut leaves: Vec<(Hash, Hash)> = entries
            .iter()
            .map(|(k, v)| (key_path(k), v.leaf_digest()))
            .collect();
        leaves.sort_by_key(|l| l.0 .0);
        if !verify_chunk(&self.cert.root, chunk, self.bits, &leaves, proof) {
            self.progress.proof_failures += 1;
            return Err(SyncError::BadProof { chunk });
        }
        self.progress.chunks_ok += 1;
        self.progress.leaves += entries.len() as u64;
        self.fetched.insert(chunk, entries);
        Ok(self.is_complete())
    }

    /// Consume the completed session, yielding the certificate and the
    /// verified chunks as `(chunk index, entries)` in ascending chunk
    /// order. For a full plan, concatenating the entries is the complete
    /// state; for a diff plan, overlay them chunk-by-chunk onto the
    /// retained snapshot. Panics if the session is incomplete.
    pub fn into_verified(self) -> (CheckpointCert, Vec<VerifiedChunk<V>>) {
        assert!(self.is_complete(), "sync session incomplete");
        (self.cert, self.fetched.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smt::SparseMerkleTree;
    use ahl_crypto::sha256_parts;

    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);

    impl StateValue for Val {
        fn leaf_digest(&self) -> Hash {
            sha256_parts(&[&self.0.to_be_bytes()])
        }
    }

    fn fixture(n: u64) -> SparseMerkleTree<Val> {
        SparseMerkleTree::build((0..n).map(|i| (format!("key-{i}"), Val(i))))
    }

    fn cert_for(t: &SparseMerkleTree<Val>, seq: u64) -> CheckpointCert {
        CheckpointCert { seq, root: t.root_hash(), votes: vec![(0, None), (1, None)] }
    }

    fn chunk_payload(t: &SparseMerkleTree<Val>, chunk: u32, bits: u8) -> Vec<(String, Val)> {
        t.chunk_entries(chunk, bits)
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn full_session_round_trip_any_order() {
        let t = fixture(100);
        let bits = 3u8;
        let mut s: SyncSession<Val> =
            SyncSession::new_full(cert_for(&t, 50), bits, 0).expect("fresh");
        assert_eq!(s.total_chunks(), 8);
        // Deliver chunks in a scrambled order (multi-peer fan-out).
        for c in [5u32, 0, 7, 2, 1, 6, 3, 4] {
            let payload = chunk_payload(&t, c, bits);
            let proof = t.chunk_proof(c, bits);
            s.accept_chunk(c, payload, &proof).expect("verifies");
        }
        assert_eq!(s.progress().chunks_ok, 8);
        assert_eq!(s.progress().proof_failures, 0);
        assert!(s.missing_chunks().is_empty());
        let (_, chunks) = s.into_verified();
        let entries: Vec<(String, Val)> = chunks.into_iter().flat_map(|(_, e)| e).collect();
        assert_eq!(entries.len(), 100);
        // The verified set reassembles the certified root.
        let rebuilt = SparseMerkleTree::build(entries);
        assert_eq!(rebuilt.root_hash(), t.root_hash());
    }

    #[test]
    fn diff_session_fetches_only_changed_chunks() {
        let old = fixture(80);
        let mut new = old.clone();
        new.insert("key-3", Val(333));
        new.insert("added", Val(1));
        new.remove("key-9");
        let bits = 4u8;
        let changed = old.diff_chunks(&new, bits);
        assert!(!changed.is_empty() && changed.len() < 1 << bits);
        let mut s: SyncSession<Val> =
            SyncSession::new_diff(cert_for(&new, 60), bits, &changed, 0).expect("fresh");
        assert!(s.is_diff());
        assert_eq!(s.total_chunks() as usize, changed.len());
        // A chunk outside the plan is refused.
        let outside = (0..1u32 << bits).find(|c| !changed.contains(c)).expect("some unchanged");
        assert_eq!(
            s.accept_chunk(outside, chunk_payload(&new, outside, bits), &new.chunk_proof(outside, bits)),
            Err(SyncError::UnknownChunk { got: outside })
        );
        for &c in &changed {
            s.accept_chunk(c, chunk_payload(&new, c, bits), &new.chunk_proof(c, bits))
                .expect("verifies against the new root");
        }
        // Overlaying the verified chunks onto the old snapshot reproduces
        // the new root exactly.
        let (cert, chunks) = s.into_verified();
        let mut merged = old.clone();
        for (c, entries) in chunks {
            let stale: Vec<String> =
                merged.chunk_keys(c, bits).iter().map(|k| k.to_string()).collect();
            for k in stale {
                merged.remove(&k);
            }
            for (k, v) in entries {
                merged.insert(&k, v);
            }
        }
        assert_eq!(merged.root_hash(), cert.root);
    }

    #[test]
    fn empty_diff_completes_immediately() {
        let t = fixture(10);
        let s: SyncSession<Val> =
            SyncSession::new_diff(cert_for(&t, 5), 3, &[], 0).expect("fresh");
        assert!(s.is_complete());
        assert_eq!(s.total_chunks(), 0);
    }

    #[test]
    fn tampered_chunk_rejected_and_resumable() {
        let t = fixture(60);
        let bits = 2u8;
        let mut s: SyncSession<Val> =
            SyncSession::new_full(cert_for(&t, 50), bits, 0).expect("fresh");
        let mut payload = chunk_payload(&t, 0, bits);
        let proof = t.chunk_proof(0, bits);
        if payload.is_empty() {
            // Inject a foreign key instead.
            payload.push(("evil".into(), Val(666)));
        } else {
            payload[0].1 = Val(999);
        }
        assert_eq!(
            s.accept_chunk(0, payload, &proof),
            Err(SyncError::BadProof { chunk: 0 })
        );
        assert_eq!(s.progress().proof_failures, 1);
        assert!(s.missing_chunks().contains(&0));
        // Retry with the honest payload: the session accepts it.
        let honest = chunk_payload(&t, 0, bits);
        s.accept_chunk(0, honest, &proof).expect("honest retry verifies");
        assert!(!s.missing_chunks().contains(&0));
        // A duplicate delivery of the same chunk is a no-op.
        let dup = chunk_payload(&t, 0, bits);
        assert_eq!(s.accept_chunk(0, dup, &proof), Ok(false));
        assert_eq!(s.progress().chunks_ok, 1);
    }

    #[test]
    fn stale_cert_rejected() {
        let t = fixture(10);
        let err = SyncSession::<Val>::new_full(cert_for(&t, 50), 2, 50).expect_err("stale");
        assert_eq!(err, SyncError::StaleCert { have: 50, cert: 50 });
        assert!(SyncSession::<Val>::new_full(cert_for(&t, 51), 2, 50).is_ok());
        assert!(SyncSession::<Val>::new_diff(cert_for(&t, 50), 2, &[0], 50).is_err());
    }

    #[test]
    fn out_of_range_chunk_rejected() {
        let t = fixture(20);
        let bits = 2u8;
        let mut s: SyncSession<Val> =
            SyncSession::new_full(cert_for(&t, 9), bits, 0).expect("fresh");
        let payload = chunk_payload(&t, 1, bits);
        let proof = t.chunk_proof(1, bits);
        assert_eq!(
            s.accept_chunk(9, payload, &proof),
            Err(SyncError::UnknownChunk { got: 9 })
        );
    }

    #[test]
    fn chunk_bits_for_targets() {
        assert_eq!(chunk_bits_for(0, 1024), 0);
        assert_eq!(chunk_bits_for(1000, 1024), 0);
        assert_eq!(chunk_bits_for(2048, 1024), 1);
        assert_eq!(chunk_bits_for(100_000, 1024), 7);
        assert_eq!(chunk_bits_for(1 << 30, 1), 16); // clamped
    }
}
