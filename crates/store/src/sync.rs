//! Requester-side state-sync session: certificate-anchored, chunked,
//! verified, resumable.
//!
//! A lagging or joining replica (1) obtains the latest [`CheckpointCert`],
//! (2) requests fixed key-range chunks in order, verifying each against the
//! certified root *before* accepting it, and (3) installs the accumulated
//! state once every chunk has verified. The session records per-chunk
//! progress, so a failed or unanswered chunk is simply re-requested —
//! possibly from a different peer — without restarting the transfer.

use ahl_crypto::Hash;

use crate::checkpoint::CheckpointCert;
use crate::smt::{key_path, verify_chunk};
use crate::StateValue;

/// Pick the chunk-count exponent so chunks hold about `target` leaves:
/// `ceil(log2(leaves / target))`, clamped to `[0, 16]`.
pub fn chunk_bits_for(leaves: usize, target: usize) -> u8 {
    let target = target.max(1);
    let chunks = leaves.div_ceil(target).max(1);
    (chunks.next_power_of_two().trailing_zeros() as u8).min(16)
}

/// Why a sync step was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The offered certificate does not cover anything newer than what the
    /// requester already has.
    StaleCert {
        /// The requester's current height.
        have: u64,
        /// The certificate's height.
        cert: u64,
    },
    /// The certificate failed quorum/signature verification.
    BadCert,
    /// A chunk arrived out of order.
    WrongChunk {
        /// The chunk the session expects next.
        expected: u32,
        /// The chunk that arrived.
        got: u32,
    },
    /// The chunk payload does not verify against the certified root.
    BadProof {
        /// The offending chunk index.
        chunk: u32,
    },
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::StaleCert { have, cert } => {
                write!(f, "stale certificate: have seq {have}, cert seq {cert}")
            }
            SyncError::BadCert => write!(f, "certificate failed verification"),
            SyncError::WrongChunk { expected, got } => {
                write!(f, "out-of-order chunk: expected {expected}, got {got}")
            }
            SyncError::BadProof { chunk } => write!(f, "chunk {chunk} failed proof check"),
        }
    }
}

/// Per-session transfer counters (surface into the run's `Stats`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncProgress {
    /// Chunks verified and accepted.
    pub chunks_ok: u64,
    /// Chunks rejected by proof verification.
    pub proof_failures: u64,
    /// Key-value pairs accumulated so far.
    pub leaves: u64,
}

/// A resumable chunked-sync session for value type `V`.
#[derive(Debug)]
pub struct SyncSession<V> {
    cert: CheckpointCert,
    bits: u8,
    next_chunk: u32,
    entries: Vec<(String, V)>,
    progress: SyncProgress,
}

impl<V: StateValue> SyncSession<V> {
    /// Start a session against `cert` with `1 << bits` chunks (`bits` is
    /// clamped to [`chunk_bits_for`]'s maximum of 16 — a malicious manifest
    /// cannot overflow the chunk count). Fails if the certificate is not
    /// ahead of `have_seq` (stale-cert defence: a malicious or confused
    /// server cannot roll the requester back).
    pub fn new(cert: CheckpointCert, bits: u8, have_seq: u64) -> Result<Self, SyncError> {
        if cert.seq <= have_seq {
            return Err(SyncError::StaleCert { have: have_seq, cert: cert.seq });
        }
        Ok(SyncSession {
            cert,
            bits: bits.min(16),
            next_chunk: 0,
            entries: Vec::new(),
            progress: SyncProgress::default(),
        })
    }

    /// The certificate this session trusts.
    pub fn cert(&self) -> &CheckpointCert {
        &self.cert
    }

    /// The height the session is syncing to.
    pub fn seq(&self) -> u64 {
        self.cert.seq
    }

    /// The chunk to request next.
    pub fn next_chunk(&self) -> u32 {
        self.next_chunk
    }

    /// Total number of chunks in the plan.
    pub fn total_chunks(&self) -> u32 {
        1u32 << self.bits
    }

    /// Chunk-count exponent.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// True once every chunk has been verified and accepted.
    pub fn is_complete(&self) -> bool {
        self.next_chunk == self.total_chunks()
    }

    /// Transfer counters so far.
    pub fn progress(&self) -> SyncProgress {
        self.progress
    }

    /// Verify and accept a chunk. Returns `Ok(true)` when this was the last
    /// chunk. On [`SyncError::BadProof`] the session stays positioned at the
    /// same chunk, so the caller re-requests it (resumability).
    pub fn accept_chunk(
        &mut self,
        chunk: u32,
        entries: Vec<(String, V)>,
        proof: &[Hash],
    ) -> Result<bool, SyncError> {
        if chunk != self.next_chunk {
            return Err(SyncError::WrongChunk { expected: self.next_chunk, got: chunk });
        }
        let mut leaves: Vec<(Hash, Hash)> = entries
            .iter()
            .map(|(k, v)| (key_path(k), v.leaf_digest()))
            .collect();
        leaves.sort_by_key(|l| l.0 .0);
        if !verify_chunk(&self.cert.root, chunk, self.bits, &leaves, proof) {
            self.progress.proof_failures += 1;
            return Err(SyncError::BadProof { chunk });
        }
        self.progress.chunks_ok += 1;
        self.progress.leaves += entries.len() as u64;
        self.entries.extend(entries);
        self.next_chunk += 1;
        Ok(self.is_complete())
    }

    /// Consume the completed session, yielding the certificate and the
    /// verified key-value pairs. Panics if the session is incomplete.
    pub fn into_verified(self) -> (CheckpointCert, Vec<(String, V)>) {
        assert!(self.is_complete(), "sync session incomplete");
        (self.cert, self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smt::SparseMerkleTree;
    use ahl_crypto::sha256_parts;

    #[derive(Clone, Debug, PartialEq)]
    struct Val(u64);

    impl StateValue for Val {
        fn leaf_digest(&self) -> Hash {
            sha256_parts(&[&self.0.to_be_bytes()])
        }
    }

    fn fixture(n: u64) -> (SparseMerkleTree, Vec<(String, Val)>) {
        let kv: Vec<(String, Val)> = (0..n).map(|i| (format!("key-{i}"), Val(i))).collect();
        let t = SparseMerkleTree::build(kv.iter().map(|(k, v)| (k.clone(), v.leaf_digest())));
        (t, kv)
    }

    fn cert_for(t: &SparseMerkleTree, seq: u64) -> CheckpointCert {
        CheckpointCert { seq, root: t.root_hash(), votes: vec![(0, None), (1, None)] }
    }

    fn chunk_payload(t: &SparseMerkleTree, kv: &[(String, Val)], chunk: u32, bits: u8) -> Vec<(String, Val)> {
        t.chunk_keys(chunk, bits)
            .iter()
            .map(|k| {
                let v = kv.iter().find(|(key, _)| key == k).expect("known key").1.clone();
                (k.to_string(), v)
            })
            .collect()
    }

    #[test]
    fn full_session_round_trip() {
        let (t, kv) = fixture(100);
        let bits = 3u8;
        let mut s: SyncSession<Val> = SyncSession::new(cert_for(&t, 50), bits, 0).expect("fresh");
        while !s.is_complete() {
            let c = s.next_chunk();
            let payload = chunk_payload(&t, &kv, c, bits);
            let proof = t.chunk_proof(c, bits);
            s.accept_chunk(c, payload, &proof).expect("verifies");
        }
        assert_eq!(s.progress().chunks_ok, 8);
        assert_eq!(s.progress().proof_failures, 0);
        let (_, entries) = s.into_verified();
        assert_eq!(entries.len(), 100);
        // The verified set reassembles the certified root.
        let rebuilt = SparseMerkleTree::build(
            entries.iter().map(|(k, v)| (k.clone(), v.leaf_digest())),
        );
        assert_eq!(rebuilt.root_hash(), t.root_hash());
    }

    #[test]
    fn tampered_chunk_rejected_and_resumable() {
        let (t, kv) = fixture(60);
        let bits = 2u8;
        let mut s: SyncSession<Val> = SyncSession::new(cert_for(&t, 50), bits, 0).expect("fresh");
        let mut payload = chunk_payload(&t, &kv, 0, bits);
        let proof = t.chunk_proof(0, bits);
        if payload.is_empty() {
            // Inject a foreign key instead.
            payload.push(("evil".into(), Val(666)));
        } else {
            payload[0].1 = Val(999);
        }
        assert_eq!(
            s.accept_chunk(0, payload, &proof),
            Err(SyncError::BadProof { chunk: 0 })
        );
        assert_eq!(s.progress().proof_failures, 1);
        // Session still expects chunk 0: retry with the honest payload.
        let honest = chunk_payload(&t, &kv, 0, bits);
        s.accept_chunk(0, honest, &proof).expect("honest retry verifies");
        assert_eq!(s.next_chunk(), 1);
    }

    #[test]
    fn stale_cert_rejected() {
        let (t, _) = fixture(10);
        let err = SyncSession::<Val>::new(cert_for(&t, 50), 2, 50).expect_err("stale");
        assert_eq!(err, SyncError::StaleCert { have: 50, cert: 50 });
        assert!(SyncSession::<Val>::new(cert_for(&t, 51), 2, 50).is_ok());
    }

    #[test]
    fn out_of_order_chunk_rejected() {
        let (t, kv) = fixture(20);
        let bits = 2u8;
        let mut s: SyncSession<Val> = SyncSession::new(cert_for(&t, 9), bits, 0).expect("fresh");
        let payload = chunk_payload(&t, &kv, 1, bits);
        let proof = t.chunk_proof(1, bits);
        assert_eq!(
            s.accept_chunk(1, payload, &proof),
            Err(SyncError::WrongChunk { expected: 0, got: 1 })
        );
    }

    #[test]
    fn chunk_bits_for_targets() {
        assert_eq!(chunk_bits_for(0, 1024), 0);
        assert_eq!(chunk_bits_for(1000, 1024), 0);
        assert_eq!(chunk_bits_for(2048, 1024), 1);
        assert_eq!(chunk_bits_for(100_000, 1024), 7);
        assert_eq!(chunk_bits_for(1 << 30, 1), 16); // clamped
    }
}
