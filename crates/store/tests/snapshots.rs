//! Snapshot-isolation property battery for the persistent SMT.
//!
//! The copy-on-write tree promises that a snapshot (an O(1) `clone()`) is
//! frozen: no sequence of later mutations on the live tree may change the
//! snapshot's root, its per-key proofs, or its chunk proofs — they must
//! stay byte-identical to what a deep copy at capture time would produce.
//! Incremental sync additionally promises that the changed-chunk report
//! between any two snapshots is exact: overlaying those chunks (and only
//! those) onto the old snapshot reproduces the new root.

use std::collections::BTreeMap;

use ahl_crypto::{sha256_parts, Hash};
use ahl_store::{key_path, verify_chunk, verify_proof, SmtProof, SparseMerkleTree};

fn vh(i: u64) -> Hash {
    sha256_parts(&[&i.to_be_bytes()])
}

/// Everything a verifier could ever ask a snapshot for, captured eagerly.
struct Capture {
    snap: SparseMerkleTree,
    root: Hash,
    len: usize,
    /// Reference content at capture time.
    content: BTreeMap<String, Hash>,
    /// One proof per key of a fixed probe set (live and absent keys).
    proofs: Vec<(String, SmtProof)>,
    /// Full chunk decomposition at `BITS`.
    chunks: Vec<ChunkCapture>,
}

/// One chunk's sorted `(path, vhash)` leaves and its sibling proof.
type ChunkCapture = (Vec<(Hash, Hash)>, Vec<Hash>);

const BITS: u8 = 3;

fn capture(t: &SparseMerkleTree, reference: &BTreeMap<String, Hash>) -> Capture {
    let snap = t.clone(); // the O(1) snapshot under test
    let proofs = (0..12u64)
        .map(|k| {
            let key = format!("k{k}");
            let p = t.prove(&key);
            (key, p)
        })
        .collect();
    let chunks = (0..1u32 << BITS)
        .map(|c| {
            let mut entries: Vec<(Hash, Hash)> = t
                .chunk_entries(c, BITS)
                .into_iter()
                .map(|(k, v)| (key_path(k), *v))
                .collect();
            entries.sort_by_key(|e| e.0 .0);
            (entries, t.chunk_proof(c, BITS))
        })
        .collect();
    Capture {
        snap,
        root: t.root_hash(),
        len: t.len(),
        content: reference.clone(),
        proofs,
        chunks,
    }
}

fn assert_frozen(cap: &Capture) {
    // Root and length are byte-identical to capture time.
    assert_eq!(cap.snap.root_hash(), cap.root);
    assert_eq!(cap.snap.len(), cap.len);
    // Every key reads exactly the captured content.
    for (k, v) in &cap.content {
        assert_eq!(cap.snap.get(k), Some(v), "key {k}");
    }
    // Recorded proofs still verify against the snapshot root, and the
    // snapshot reproduces them byte-for-byte.
    for (key, proof) in &cap.proofs {
        let expected = cap.content.get(key);
        assert!(verify_proof(&cap.root, key, expected, proof), "proof for {key}");
        assert_eq!(&cap.snap.prove(key), proof, "re-proved {key}");
    }
    // Chunk proofs still reassemble the captured root, both the recorded
    // ones and freshly extracted ones.
    for (c, (entries, proof)) in cap.chunks.iter().enumerate() {
        assert!(
            verify_chunk(&cap.root, c as u32, BITS, entries, proof),
            "recorded chunk {c}"
        );
        let mut fresh: Vec<(Hash, Hash)> = cap
            .snap
            .chunk_entries(c as u32, BITS)
            .into_iter()
            .map(|(k, v)| (key_path(k), *v))
            .collect();
        fresh.sort_by_key(|e| e.0 .0);
        assert_eq!(&fresh, entries, "chunk {c} content drifted");
        assert_eq!(&cap.snap.chunk_proof(c as u32, BITS), proof, "chunk {c} proof drifted");
    }
}

proptest::proptest! {
    /// Interleave random mutations with snapshots: every snapshot stays
    /// frozen (root, proofs, chunk proofs byte-identical) while the live
    /// tree diverges arbitrarily — including deletions that collapse
    /// branches the snapshots still reference.
    #[test]
    fn snapshots_stay_frozen_under_mutation(
        ops in proptest::collection::vec((0u8..8, 0u64..24, 0u64..1000), 1..150)
    ) {
        let mut live = SparseMerkleTree::new();
        let mut reference: BTreeMap<String, Hash> = BTreeMap::new();
        let mut captures: Vec<Capture> = Vec::new();
        for (kind, k, v) in ops {
            let key = format!("k{k}");
            match kind {
                // Snapshot roughly one op in eight.
                0 => {
                    if captures.len() < 6 {
                        captures.push(capture(&live, &reference));
                    }
                }
                1..=4 => {
                    live.insert(&key, vh(v));
                    reference.insert(key, vh(v));
                }
                _ => {
                    let a = live.remove(&key);
                    let b = reference.remove(&key).is_some();
                    proptest::prop_assert_eq!(a, b);
                }
            }
        }
        // After the whole mutation storm, every snapshot is intact …
        for cap in &captures {
            assert_frozen(cap);
        }
        // … and the live tree still equals a bulk rebuild of the reference.
        let bulk = SparseMerkleTree::build(reference.iter().map(|(k, v)| (k.clone(), *v)));
        proptest::prop_assert_eq!(live.root_hash(), bulk.root_hash());
    }

    /// Diff exactness between any two snapshots of the same lineage:
    /// `old.diff_chunks(new)` lists precisely the chunks whose content
    /// differs, and overlaying those chunks onto the old snapshot lands
    /// exactly on the new root (the client half of incremental sync).
    #[test]
    fn diff_chunks_overlay_reproduces_new_root(
        base in proptest::collection::vec((0u64..40, 0u64..500), 0..60),
        churn in proptest::collection::vec((0u8..3, 0u64..40, 500u64..1000), 0..60),
        bits in 1u8..6
    ) {
        let old = SparseMerkleTree::build(
            base.iter().map(|(k, v)| (format!("k{k}"), vh(*v))),
        );
        let mut new = old.clone();
        for (kind, k, v) in churn {
            let key = format!("k{k}");
            match kind {
                0 | 1 => new.insert(&key, vh(v)),
                _ => {
                    new.remove(&key);
                }
            }
        }
        let changed = old.diff_chunks(&new, bits);
        // Exactness: a chunk is listed iff its content differs.
        for c in 0..1u32 << bits {
            let o: Vec<(Hash, Hash)> = old
                .chunk_entries(c, bits)
                .into_iter()
                .map(|(k, v)| (key_path(k), *v))
                .collect();
            let n: Vec<(Hash, Hash)> = new
                .chunk_entries(c, bits)
                .into_iter()
                .map(|(k, v)| (key_path(k), *v))
                .collect();
            proptest::prop_assert_eq!(
                changed.contains(&c),
                o != n,
                "chunk {} listed {} but content-equal {}", c, changed.contains(&c), o == n
            );
        }
        // Overlay: replace exactly the changed chunks in the old snapshot.
        let mut merged = old.clone();
        for &c in &changed {
            let stale: Vec<String> =
                merged.chunk_keys(c, bits).iter().map(|k| k.to_string()).collect();
            for k in stale {
                merged.remove(&k);
            }
            let fresh: Vec<(String, Hash)> = new
                .chunk_entries(c, bits)
                .into_iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect();
            for (k, v) in fresh {
                merged.insert(&k, v);
            }
        }
        proptest::prop_assert_eq!(merged.root_hash(), new.root_hash());
        // And the old snapshot itself was not disturbed by any of this.
        let old_rebuilt = SparseMerkleTree::build(
            base.iter().map(|(k, v)| (format!("k{k}"), vh(*v))),
        );
        proptest::prop_assert_eq!(old.root_hash(), old_rebuilt.root_hash());
    }
}
