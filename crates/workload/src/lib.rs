//! # ahl-workload — BLOCKBENCH-style workload generators
//!
//! The two benchmarks the paper evaluates with (§7):
//!
//! * [`KvStoreWorkload`] — BLOCKBENCH's KVStore: value writes over a key
//!   space; 1 update per transaction in single-shard experiments, 3 updates
//!   in the cross-shard configuration.
//! * [`SmallBankWorkload`] — BLOCKBENCH's Smallbank: banking transactions
//!   over account pairs; the paper's multi-shard runs use `sendPayment`
//!   (reads and writes two different accounts). Zipf skew selects hot
//!   accounts (Figure 13 right).
//!
//! Generators produce [`ahl_ledger::Op`] values and plug into the
//! consensus clients as factory closures.

#![warn(missing_docs)]

pub mod zipf;

pub use zipf::Zipf;

use ahl_ledger::{kvstore, smallbank, Op, StateOp, TxId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

/// KVStore workload parameters.
#[derive(Clone, Debug)]
pub struct KvStoreWorkload {
    /// Key space size.
    pub keys: u64,
    /// Updates per transaction (paper: 1 single-shard, 3 cross-shard).
    pub ops_per_txn: usize,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Zipf skew over keys (0 = uniform).
    pub theta: f64,
}

impl KvStoreWorkload {
    /// The paper's single-shard configuration.
    pub fn single_shard() -> Self {
        KvStoreWorkload { keys: 10_000, ops_per_txn: 1, value_size: 64, theta: 0.0 }
    }

    /// The paper's cross-shard configuration (3 updates per transaction).
    pub fn cross_shard() -> Self {
        KvStoreWorkload { keys: 10_000, ops_per_txn: 3, value_size: 64, theta: 0.0 }
    }

    /// Generate the next transaction body.
    pub fn next_op(&self, zipf: &Zipf, rng: &mut SmallRng) -> StateOp {
        let mut picked = Vec::with_capacity(self.ops_per_txn);
        while picked.len() < self.ops_per_txn {
            let k = zipf.sample(rng) as u64;
            if !picked.contains(&k) {
                picked.push(k);
            }
        }
        kvstore::kv_write(&picked, self.value_size)
    }

    /// Build a factory closure for client `client_id`.
    pub fn factory(self, client_id: usize) -> Box<dyn FnMut(&mut SmallRng) -> Op + Send> {
        let zipf = Zipf::new(self.keys as usize, self.theta);
        let mut seq: u64 = (client_id as u64) << 40;
        Box::new(move |rng| {
            seq += 1;
            Op::Direct { txid: TxId(seq), op: self.next_op(&zipf, rng) }
        })
    }
}

/// SmallBank operation mix (weights; the paper's experiments use pure
/// `sendPayment`).
#[derive(Clone, Debug)]
pub struct SmallBankMix {
    /// Weight of sendPayment.
    pub send_payment: u32,
    /// Weight of transactSavings.
    pub transact_savings: u32,
    /// Weight of depositChecking.
    pub deposit_checking: u32,
    /// Weight of writeCheck.
    pub write_check: u32,
    /// Weight of amalgamate.
    pub amalgamate: u32,
}

impl SmallBankMix {
    /// The paper's configuration: sendPayment only.
    pub fn send_payment_only() -> Self {
        SmallBankMix {
            send_payment: 1,
            transact_savings: 0,
            deposit_checking: 0,
            write_check: 0,
            amalgamate: 0,
        }
    }

    /// The classic SmallBank mix (equal weights).
    pub fn classic() -> Self {
        SmallBankMix {
            send_payment: 1,
            transact_savings: 1,
            deposit_checking: 1,
            write_check: 1,
            amalgamate: 1,
        }
    }

    fn total(&self) -> u32 {
        self.send_payment
            + self.transact_savings
            + self.deposit_checking
            + self.write_check
            + self.amalgamate
    }
}

/// SmallBank workload parameters.
#[derive(Clone, Debug)]
pub struct SmallBankWorkload {
    /// Number of accounts.
    pub accounts: usize,
    /// Zipf skew over accounts (Figure 13 sweeps 0..1.99).
    pub theta: f64,
    /// Operation mix.
    pub mix: SmallBankMix,
    /// Initial checking balance (for genesis and amalgamate hints).
    pub initial_balance: i64,
}

impl SmallBankWorkload {
    /// The paper's configuration: `accounts` accounts, pure sendPayment.
    pub fn paper(accounts: usize, theta: f64) -> Self {
        SmallBankWorkload {
            accounts,
            theta,
            mix: SmallBankMix::send_payment_only(),
            initial_balance: 1_000_000,
        }
    }

    /// Genesis entries for this workload.
    pub fn genesis(&self) -> Vec<(String, Value)> {
        smallbank::genesis(self.accounts, self.initial_balance, self.initial_balance)
    }

    /// Draw two distinct account names (Zipf-skewed).
    fn pick_pair(&self, zipf: &Zipf, rng: &mut SmallRng) -> (String, String) {
        let a = zipf.sample(rng);
        let mut b = zipf.sample(rng);
        let mut guard = 0;
        while b == a && guard < 64 {
            b = zipf.sample(rng);
            guard += 1;
        }
        if b == a {
            b = (a + 1) % self.accounts;
        }
        (smallbank::account_name(a), smallbank::account_name(b))
    }

    /// Generate the next transaction body.
    pub fn next_op(&self, zipf: &Zipf, rng: &mut SmallRng) -> StateOp {
        let roll = rng.gen_range(0..self.mix.total().max(1));
        let mut acc = self.mix.send_payment;
        if roll < acc {
            let (from, to) = self.pick_pair(zipf, rng);
            return smallbank::send_payment(&from, &to, rng.gen_range(1..100));
        }
        acc += self.mix.transact_savings;
        if roll < acc {
            let a = smallbank::account_name(zipf.sample(rng));
            return smallbank::transact_savings(&a, rng.gen_range(-50..100));
        }
        acc += self.mix.deposit_checking;
        if roll < acc {
            let a = smallbank::account_name(zipf.sample(rng));
            return smallbank::deposit_checking(&a, rng.gen_range(1..100));
        }
        acc += self.mix.write_check;
        if roll < acc {
            let a = smallbank::account_name(zipf.sample(rng));
            return smallbank::write_check(&a, rng.gen_range(1..50));
        }
        let (a, b) = self.pick_pair(zipf, rng);
        // Optimistic amalgamate with a conservative observed balance.
        smallbank::amalgamate(&a, &b, 0, 0)
    }

    /// Build a factory closure for client `client_id`.
    pub fn factory(self, client_id: usize) -> Box<dyn FnMut(&mut SmallRng) -> Op + Send> {
        let zipf = Zipf::new(self.accounts, self.theta);
        let mut seq: u64 = (client_id as u64) << 40;
        Box::new(move |rng| {
            seq += 1;
            Op::Direct { txid: TxId(seq), op: self.next_op(&zipf, rng) }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kvstore_generates_requested_width() {
        let w = KvStoreWorkload::cross_shard();
        let zipf = Zipf::new(w.keys as usize, w.theta);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let op = w.next_op(&zipf, &mut rng);
            assert_eq!(op.mutations.len(), 3);
            assert!(op.conditions.is_empty());
        }
    }

    #[test]
    fn kvstore_factory_unique_txids() {
        let mut f = KvStoreWorkload::single_shard().factory(3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut ids = std::collections::HashSet::new();
        for _ in 0..100 {
            let Op::Direct { txid, .. } = f(&mut rng) else {
                panic!("kvstore factory yields Direct ops")
            };
            assert!(ids.insert(txid));
        }
    }

    #[test]
    fn smallbank_send_payment_touches_two_accounts() {
        let w = SmallBankWorkload::paper(100, 0.0);
        let zipf = Zipf::new(w.accounts, w.theta);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let op = w.next_op(&zipf, &mut rng);
            assert_eq!(op.touched_keys().len(), 2);
            assert_eq!(op.conditions.len(), 1);
        }
    }

    #[test]
    fn smallbank_genesis_matches_accounts() {
        let w = SmallBankWorkload::paper(10, 0.0);
        assert_eq!(w.genesis().len(), 20); // checking + savings each
    }

    #[test]
    fn classic_mix_produces_variety() {
        let w = SmallBankWorkload {
            accounts: 50,
            theta: 0.0,
            mix: SmallBankMix::classic(),
            initial_balance: 1000,
        };
        let zipf = Zipf::new(w.accounts, w.theta);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut widths = std::collections::HashSet::new();
        for _ in 0..200 {
            widths.insert(w.next_op(&zipf, &mut rng).touched_keys().len());
        }
        // sendPayment (2), savings/deposit/check (1), amalgamate (3).
        assert!(widths.len() >= 2, "widths {widths:?}");
    }

    #[test]
    fn skew_concentrates_account_touches() {
        let uniform = SmallBankWorkload::paper(1000, 0.0);
        let skewed = SmallBankWorkload::paper(1000, 1.5);
        let count_acc0 = |w: &SmallBankWorkload| {
            let zipf = Zipf::new(w.accounts, w.theta);
            let mut rng = SmallRng::seed_from_u64(5);
            (0..2000)
                .filter(|_| {
                    w.next_op(&zipf, &mut rng)
                        .touched_keys()
                        .iter()
                        .any(|k| k == "ck_acc0")
                })
                .count()
        };
        assert!(count_acc0(&skewed) > 10 * count_acc0(&uniform).max(1));
    }
}
