//! Zipf-distributed key selection (the skew knob of Figure 13 right).
//!
//! Table-based CDF inversion: exact, O(log n) per sample after an O(n)
//! precomputation. The paper's skew sweep uses Zipf coefficients 0..1.99
//! over account populations small enough (thousands) that the table is the
//! right tool (no rejection-inversion approximation error).

use rand::rngs::SmallRng;
use rand::Rng;

/// A Zipf(θ) sampler over `{0, 1, .., n-1}` (rank 0 most popular).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` items with exponent `theta ≥ 0`
    /// (0 = uniform).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "need at least one item");
        assert!(theta >= 0.0, "negative skew is meaningless");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: usize, samples: usize) -> Vec<usize> {
        let z = Zipf::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = vec![0usize; n];
        for _ in 0..samples {
            counts[z.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_when_theta_zero() {
        let counts = histogram(0.0, 10, 100_000);
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn skewed_prefers_low_ranks() {
        let counts = histogram(0.99, 100, 100_000);
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[99]);
        // Rank 0 share for θ=0.99, n=100 is ≈ 1/H ≈ 19%.
        let share = counts[0] as f64 / 100_000.0;
        assert!((0.15..0.25).contains(&share), "share {share}");
    }

    #[test]
    fn heavy_skew_concentrates() {
        let counts = histogram(1.99, 100, 100_000);
        let share = counts[0] as f64 / 100_000.0;
        assert!(share > 0.55, "share {share}");
    }

    #[test]
    fn ratio_matches_law() {
        // P(rank 0)/P(rank 1) = 2^θ.
        let counts = histogram(1.0, 50, 400_000);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 1.5);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    proptest::proptest! {
        #[test]
        fn samples_in_range(n in 1usize..500, theta in 0.0f64..2.0, seed: u64) {
            let z = Zipf::new(n, theta);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                proptest::prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
